//! # netsyn-suite
//!
//! Workspace-level umbrella crate for the NetSyn reproduction ("Learning
//! Fitness Functions for Machine Programming", MLSys 2021). It exists to host
//! the runnable examples in `examples/` and the cross-crate integration tests
//! in `tests/`, and re-exports the public crates for convenience:
//!
//! * [`netsyn_dsl`] — the list DSL, interpreter and generators;
//! * [`netsyn_nn`] — the from-scratch neural-network substrate;
//! * [`netsyn_fitness`] — oracle, hand-crafted and learned fitness functions;
//! * [`netsyn_ga`] — the genetic-algorithm engine with neighborhood search;
//! * [`netsyn_baselines`] — DeepCoder, PCCoder, RobustFill and PushGP;
//! * [`netsyn_core`] — the NetSyn synthesizer and the evaluation harness.
//!
//! See the repository README for a guided tour and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology.

pub use netsyn_baselines;
pub use netsyn_core;
pub use netsyn_dsl;
pub use netsyn_fitness;
pub use netsyn_ga;
pub use netsyn_nn;

#[cfg(test)]
mod tests {
    #[test]
    fn umbrella_reexports_are_usable() {
        let program: crate::netsyn_dsl::Program = "SORT, REVERSE".parse().unwrap();
        assert_eq!(program.len(), 2);
    }
}
