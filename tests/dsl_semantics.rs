//! Integration tests pinning the DSL semantics the rest of the system relies
//! on, exercised through the public API exactly as a downstream user would.

use netsyn_dsl::dce::{effective_length, eliminate_dead_code, has_dead_code, DEFAULT_INPUT_TYPES};
use netsyn_dsl::{Function, Generator, GeneratorConfig, IoSpec, Program, ProgramKind, Value};
use netsyn_fitness::metrics::{common_functions, longest_common_subsequence};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn table_1_example_from_text_round_trip() {
    // The exact program, input and output of Table 1 of the paper, going
    // through the text parser as a user would.
    let program: Program = "FILTER(>0), MAP(*2), SORT, REVERSE".parse().unwrap();
    assert_eq!(program.len(), 4);
    assert_eq!(program.kind(), Some(ProgramKind::List));
    let output = program
        .output(&[Value::List(vec![-2, 10, 3, -4, 5, 2])])
        .unwrap();
    assert_eq!(output, Value::List(vec![20, 10, 6, 4]));
    // Display → parse → Display is stable.
    assert_eq!(program.to_string().parse::<Program>().unwrap(), program);
}

#[test]
fn section_4_2_1_running_example_labels() {
    // Target {FILTER(>0), MAP(*2), SORT, REVERSE} vs candidate
    // {FILTER(>0), MAP(*2), REVERSE, DROP}: the paper quotes f_CF = 3.
    let target: Program = "FILTER(>0), MAP(*2), SORT, REVERSE".parse().unwrap();
    let candidate: Program = "FILTER(>0), MAP(*2), REVERSE, DROP".parse().unwrap();
    assert_eq!(common_functions(&candidate, &target), 3);
    assert!(longest_common_subsequence(&candidate, &target) <= 3);
}

#[test]
fn all_41_functions_are_usable_as_single_statement_programs() {
    let inputs = vec![Value::List(vec![4, -3, 0, 7, -1, 2])];
    for function in Function::ALL {
        let program = Program::new(vec![function]);
        let execution = program.run(&inputs).unwrap();
        assert_eq!(execution.steps.len(), 1);
        assert_eq!(execution.output.ty(), function.output_type());
        // A one-statement program can never contain dead code.
        assert!(!has_dead_code(&program, DEFAULT_INPUT_TYPES));
    }
}

#[test]
fn generated_tasks_are_self_consistent_and_dce_clean() {
    let mut rng = ChaCha8Rng::seed_from_u64(271);
    for length in [3usize, 5, 7] {
        let generator = Generator::new(GeneratorConfig::for_length(length));
        for _ in 0..5 {
            let task = generator.task(5, &mut rng).unwrap();
            assert_eq!(task.target_length(), length);
            assert_eq!(task.effective_target_length(), length);
            assert!(task.spec.is_satisfied_by(&task.target));
            assert_eq!(task.spec.len(), 5);
            // Dead-code elimination on a DCE-clean program is the identity.
            let optimized = eliminate_dead_code(&task.target, &task.spec.input_types());
            assert_eq!(optimized, task.target);
            assert_eq!(
                effective_length(&task.target, &task.spec.input_types()),
                length
            );
        }
    }
}

#[test]
fn specification_equivalence_is_extensional_not_syntactic() {
    // Two syntactically different programs computing the same function are
    // both "the answer" — the property NetSyn's success criterion relies on.
    let descending_a: Program = "SORT, REVERSE".parse().unwrap();
    let descending_b: Program = "MAP(*(-1)), SORT, MAP(*(-1))".parse().unwrap();
    let inputs = vec![
        vec![Value::List(vec![5, -2, 9, 0])],
        vec![Value::List(vec![1, 1, 3])],
        vec![Value::List(vec![-7, -4])],
    ];
    let spec = IoSpec::from_program(&descending_a, &inputs);
    assert!(spec.is_satisfied_by(&descending_a));
    assert!(spec.is_satisfied_by(&descending_b));
    assert_ne!(descending_a, descending_b);
}
