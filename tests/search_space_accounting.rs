//! Integration tests of the paper's central metric: the number of candidate
//! programs evaluated ("search space used") must be counted consistently by
//! every synthesizer, and better-informed fitness functions must use less of
//! it on average.

use netsyn_core::prelude::*;
use netsyn_dsl::SynthesisTask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn small_suite(length: usize, per_kind: usize, seed: u64) -> TestSuite {
    let config = SuiteConfig::small(length, per_kind);
    TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
}

#[test]
fn every_method_respects_the_budget_cap() {
    let suite = small_suite(3, 2, 1);
    let cap = 800;
    let methods: Vec<MethodSpec<'_>> = vec![
        MethodSpec::new("PushGP", |_t: &SynthesisTask| {
            Box::new(PushGp::new()) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("Edit", |_t: &SynthesisTask| {
            let mut config = NetSynConfig::small(FitnessChoice::EditDistance, 3);
            config.ga.mutation_mode = MutationMode::UniformRandom;
            Box::new(NetSyn::new(config, None)) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("DeepCoder", |t: &SynthesisTask| {
            Box::new(DeepCoder::new(ProbabilityMap::from_target(&t.target, 0.05)))
                as Box<dyn Synthesizer>
        }),
        MethodSpec::new("PCCoder", |t: &SynthesisTask| {
            Box::new(PcCoder::new(ProbabilityMap::from_target(&t.target, 0.05)))
                as Box<dyn Synthesizer>
        }),
        MethodSpec::new("RobustFill", |t: &SynthesisTask| {
            Box::new(RobustFill::new(ProbabilityMap::from_target(
                &t.target, 0.05,
            ))) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("Oracle_CF", |t: &SynthesisTask| {
            let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 3);
            Box::new(NetSyn::new(config, None).with_oracle_target(t.target.clone()))
                as Box<dyn Synthesizer>
        }),
    ];
    for method in &methods {
        let evaluation = evaluate_method(method, &suite, cap, 1, 3);
        for record in &evaluation.records {
            assert!(
                record.candidates_evaluated <= cap,
                "{} exceeded the budget: {}",
                method.name,
                record.candidates_evaluated
            );
        }
        // Aggregation invariants.
        let rates = evaluation.per_task_synthesis_rate();
        assert!(rates.iter().all(|r| (0.0..=1.0).contains(r)));
        let fractions = evaluation.per_task_search_fraction();
        assert!(fractions.iter().flatten().all(|f| (0.0..=1.0).contains(f)));
        let deciles = evaluation.search_space_deciles();
        // Deciles are monotone non-decreasing where present.
        let present: Vec<f64> = deciles.iter().flatten().copied().collect();
        assert!(present.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }
}

#[test]
fn informed_fitness_uses_less_search_space_than_uninformed() {
    // Oracle-CF-guided NetSyn against the hand-crafted edit-distance GA on
    // the same suite: the paper's headline claim, at miniature scale — the
    // oracle should synthesize at least as many programs, and on the programs
    // both synthesize it should not need more candidates on average.
    let suite = small_suite(3, 3, 9);
    let cap = 20_000;
    let oracle = MethodSpec::new("Oracle_CF", |t: &SynthesisTask| {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 3);
        Box::new(NetSyn::new(config, None).with_oracle_target(t.target.clone()))
            as Box<dyn Synthesizer>
    });
    let edit = MethodSpec::new("Edit", |_t: &SynthesisTask| {
        let mut config = NetSynConfig::small(FitnessChoice::EditDistance, 3);
        config.ga.mutation_mode = MutationMode::UniformRandom;
        Box::new(NetSyn::new(config, None)) as Box<dyn Synthesizer>
    });
    let oracle_eval = evaluate_method(&oracle, &suite, cap, 2, 13);
    let edit_eval = evaluate_method(&edit, &suite, cap, 2, 13);
    assert!(
        oracle_eval.summary().programs_synthesized >= edit_eval.summary().programs_synthesized,
        "oracle: {:?}, edit: {:?}",
        oracle_eval.summary(),
        edit_eval.summary()
    );
    // The per-task candidate counts at this miniature scale are dominated by
    // luck (an easy task can be hit by the random initial population), so the
    // cost comparison is only meaningful in aggregate at paper scale — see
    // the fig4_search_space benchmark binary and EXPERIMENTS.md. Here we only
    // require both evaluations to stay within the cap and report sane
    // fractions.
    for costs in [
        oracle_eval.per_task_search_fraction(),
        edit_eval.per_task_search_fraction(),
    ] {
        assert!(costs.iter().flatten().all(|f| (0.0..=1.0).contains(f)));
    }
    assert!(
        oracle_eval.summary().avg_synthesis_rate_percent + 1e-9
            >= edit_eval.summary().avg_synthesis_rate_percent,
        "oracle-guided NetSyn should not synthesize a smaller fraction of runs than the edit-distance GA"
    );
}

#[test]
fn table_formatting_matches_evaluation_shapes() {
    let suite = small_suite(2, 2, 17);
    let method = MethodSpec::new("Oracle_CF", |t: &SynthesisTask| {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        Box::new(NetSyn::new(config, None).with_oracle_target(t.target.clone()))
            as Box<dyn Synthesizer>
    });
    let evaluation = evaluate_method(&method, &suite, 10_000, 1, 23);
    let deciles = evaluation.search_space_deciles();
    let mut table = Table::new(
        "Table 4 shape check",
        &[
            "method", "10%", "20%", "30%", "40%", "50%", "60%", "70%", "80%", "90%", "100%",
        ],
    );
    let mut row = vec![evaluation.method.clone()];
    row.extend(
        deciles
            .iter()
            .map(|d| netsyn_core::report::format_percentage(*d)),
    );
    table.push_row(row);
    let rendered = table.to_string();
    assert!(rendered.contains("Oracle_CF"));
    let csv = table.to_csv();
    assert_eq!(csv.lines().count(), 2);
}
