//! Cross-crate integration test: the full NetSyn pipeline from corpus
//! generation, through fitness-model training, to GA-based synthesis and the
//! evaluation harness — at a tiny scale so it runs in seconds.

use netsyn_core::prelude::*;
use netsyn_dsl::SynthesisTask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn tiny_bundle(program_length: usize, seed: u64) -> Arc<ModelBundle> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Arc::new(
        ModelBundle::train(&BundleTrainingConfig::tiny(program_length), &mut rng)
            .expect("tiny bundle training succeeds"),
    )
}

#[test]
fn oracle_netsyn_synthesizes_most_of_a_tiny_suite() {
    let suite_config = SuiteConfig::small(2, 3);
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let suite = TestSuite::generate(&suite_config, &mut rng).unwrap();
    let method = MethodSpec::new("Oracle_CF", |task: &SynthesisTask| {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
            as Box<dyn Synthesizer>
    });
    let evaluation = evaluate_method(&method, &suite, 60_000, 2, 11);
    assert_eq!(evaluation.records.len(), suite.len() * 2);
    assert!(
        evaluation.percent_synthesized() >= 0.5,
        "oracle-guided NetSyn should synthesize most length-2 programs, got {:.0}%",
        evaluation.percent_synthesized() * 100.0
    );
    // Every reported solution must satisfy the specification it was
    // synthesized for; re-check through an independent path.
    for record in &evaluation.records {
        assert!(record.candidates_evaluated <= 60_000);
    }
}

#[test]
fn learned_pipeline_runs_end_to_end() {
    // Train tiny models, then drive every NetSyn variant and the neural
    // baselines through the shared Synthesizer interface on one task.
    let bundle = tiny_bundle(2, 21);
    let mut rng = ChaCha8Rng::seed_from_u64(33);
    let generator = netsyn_dsl::Generator::new(netsyn_dsl::GeneratorConfig::for_length(2));
    let task = generator.task(4, &mut rng).unwrap();
    let problem = SynthesisProblem::new(task.spec.clone(), 2);

    let synthesizers: Vec<Box<dyn Synthesizer>> = vec![
        Box::new(NetSyn::new(
            NetSynConfig::small(FitnessChoice::NeuralCommonFunctions, 2),
            Some(Arc::clone(&bundle)),
        )),
        Box::new(NetSyn::new(
            NetSynConfig::small(FitnessChoice::NeuralLongestCommonSubsequence, 2),
            Some(Arc::clone(&bundle)),
        )),
        Box::new(NetSyn::new(
            NetSynConfig::small(FitnessChoice::NeuralFunctionProbability, 2),
            Some(Arc::clone(&bundle)),
        )),
        Box::new(DeepCoder::new(LearnedProbabilityModel::new(
            bundle.fp.clone(),
        ))),
        Box::new(PcCoder::new(LearnedProbabilityModel::new(
            bundle.fp.clone(),
        ))),
        Box::new(RobustFill::new(LearnedProbabilityModel::new(
            bundle.fp.clone(),
        ))),
        Box::new(PushGp::new().with_max_generations(20)),
    ];
    for synthesizer in &synthesizers {
        let mut budget = SearchBudget::new(1_500);
        let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);
        assert_eq!(
            result.candidates_evaluated,
            budget.evaluated(),
            "{} must account every candidate against the budget",
            synthesizer.name()
        );
        assert!(result.candidates_evaluated <= 1_500);
        if let Some(solution) = &result.solution {
            assert!(
                task.spec.is_satisfied_by(solution),
                "{} reported a non-equivalent solution",
                synthesizer.name()
            );
        }
    }
}

#[test]
fn model_bundle_round_trips_through_disk_and_still_scores() {
    let bundle = tiny_bundle(2, 55);
    let dir = std::env::temp_dir().join("netsyn_suite_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("bundle.json");
    bundle.save_json(&path).unwrap();
    let loaded = ModelBundle::load_json(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let generator = netsyn_dsl::Generator::new(netsyn_dsl::GeneratorConfig::for_length(2));
    let task = generator.task(3, &mut rng).unwrap();
    let map_before = LearnedProbabilityModel::new(bundle.fp.clone()).probability_map(&task.spec);
    let map_after = LearnedProbabilityModel::new(loaded.fp.clone()).probability_map(&task.spec);
    assert_eq!(
        map_before.as_slice(),
        map_after.as_slice(),
        "weights (f32) must round-trip exactly through JSON"
    );
}
