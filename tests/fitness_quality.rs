//! Integration tests of the learned-fitness pipeline's *quality* claims at a
//! miniature scale: a trained CF model must rank candidates better than
//! chance, and the balanced dataset generators must agree with the exact
//! metrics they are labelled with.

use netsyn_dsl::{Generator, GeneratorConfig};
use netsyn_fitness::dataset::{candidate_with_cf, candidate_with_lcs, DatasetConfig};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric};
use netsyn_fitness::metrics::{common_functions, longest_common_subsequence};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessFunction, FitnessNetConfig, LearnedFitness};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn balanced_candidate_generators_match_exact_metrics_for_all_lengths() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for length in [2usize, 4, 6, 8] {
        let generator = Generator::new(GeneratorConfig::for_length(length));
        let target = generator.program(&mut rng).unwrap();
        for value in 0..=length {
            let cf_candidate = candidate_with_cf(&target, value, &mut rng);
            assert_eq!(common_functions(&cf_candidate, &target), value);
            let lcs_candidate = candidate_with_lcs(&target, value, &mut rng);
            assert_eq!(longest_common_subsequence(&lcs_candidate, &target), value);
        }
    }
}

#[test]
fn trained_cf_fitness_separates_targets_from_random_programs() {
    let length = 3;
    let mut rng = ChaCha8Rng::seed_from_u64(101);
    let mut dataset = DatasetConfig::for_length(length);
    dataset.num_target_programs = 40;
    dataset.examples_per_program = 3;
    let samples = generate_dataset(&dataset, BalanceMetric::CommonFunctions, &mut rng).unwrap();

    let mut trainer = TrainerConfig::small();
    trainer.epochs = 3;
    trainer.learning_rate = 3e-3;
    trainer.net = FitnessNetConfig {
        value_embed_dim: 8,
        encoder_hidden_dim: 12,
        function_embed_dim: 8,
        trace_hidden_dim: 12,
        example_hidden_dim: 16,
        head_hidden_dim: 16,
        output_dim: 1,
    };
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        length,
        &trainer,
        &mut rng,
    );
    let fitness = LearnedFitness::new(model);

    // On fresh tasks, the learned fitness should give the (hidden) target a
    // higher score than a completely unrelated random program, more often
    // than not. This is the weak-but-essential property the GA relies on.
    let generator = Generator::new(GeneratorConfig::for_length(length));
    let mut wins = 0usize;
    let trials = 20;
    for _ in 0..trials {
        let task = generator.task(3, &mut rng).unwrap();
        let random = candidate_with_cf(&task.target, 0, &mut rng);
        let target_score = fitness.score(&task.target, &task.spec);
        let random_score = fitness.score(&random, &task.spec);
        if target_score > random_score {
            wins += 1;
        }
    }
    assert!(
        wins * 2 > trials,
        "trained CF fitness ranked the target above a disjoint random program in only {wins}/{trials} trials"
    );
}
