//! Quickstart: synthesize a small list-manipulation program from input-output
//! examples with NetSyn's genetic algorithm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Set `NETSYN_CACHE_DIR=/some/dir` to make the fitness cache durable: a
//! second run warm-starts from the scores and trace encodings the first run
//! persisted, and reproduces the same search from disk.

use netsyn_core::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The hidden target program: keep the positive numbers, double them, and
    // sort the result (the user of a synthesizer only has the examples).
    let target: Program = "FILTER(>0), MAP(*2), SORT".parse()?;
    let spec = IoSpec::from_program(
        &target,
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
            vec![Value::List(vec![8, -8, 6, -6, 2])],
            vec![Value::List(vec![-3, -1, 12, 5])],
        ],
    );
    println!("Specification (5 input-output examples):\n{spec}\n");

    // The quickest way to see the GA at work is the output edit-distance
    // fitness, which needs no trained model. NetSyn's learned fitness
    // functions plug into exactly the same interface (see the
    // `train_fitness_nn` and `compare_baselines` examples).
    let mut config = NetSynConfig::paper_defaults(FitnessChoice::EditDistance, target.len());
    config.ga.mutation_mode = MutationMode::UniformRandom;
    config.ga.max_generations = 2_000;
    let synthesizer = NetSyn::new(config, None);

    // Opt-in durable cache: with NETSYN_CACHE_DIR set, scores and trace
    // encodings survive the process — a rerun warm-starts from disk (and a
    // damaged or foreign cache directory degrades to a cold cache, never to
    // wrong scores).
    let cache = match std::env::var_os("NETSYN_CACHE_DIR") {
        Some(dir) => {
            let cache = FitnessCache::durable(&dir)?;
            if let Some(report) = cache.load_report() {
                println!(
                    "Durable cache: {} score entries, {} trace entries loaded from {}\n",
                    report.score_entries,
                    report.trace_entries,
                    std::path::Path::new(&dir).display()
                );
            }
            cache
        }
        None => FitnessCache::new(),
    };

    let problem = SynthesisProblem::new(spec.clone(), target.len());
    let mut budget = SearchBudget::new(200_000);
    let mut rng = ChaCha8Rng::seed_from_u64(2021);
    let result = synthesizer.synthesize_cached(&problem, &mut budget, &mut rng, &cache);

    match &result.solution {
        Some(program) => {
            println!("Synthesized program : {program}");
            println!("Candidates evaluated: {}", result.candidates_evaluated);
            println!(
                "Search space used   : {:.2}% of the {}-candidate cap",
                100.0 * result.candidates_evaluated as f64 / budget.max_candidates() as f64,
                budget.max_candidates()
            );
            if let Some(generations) = result.generations {
                println!("GA generations      : {generations}");
            }
            assert!(spec.is_satisfied_by(program));
            // The synthesized program may differ syntactically from the
            // hidden target while being equivalent on the specification.
            println!("Hidden target was   : {target}");
        }
        None => {
            println!(
                "No program found within {} candidates — try a larger budget.",
                result.candidates_evaluated
            );
        }
    }
    Ok(())
}
