//! Quickstart: synthesize a small list-manipulation program from input-output
//! examples with NetSyn's genetic algorithm.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use netsyn_core::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The hidden target program: keep the positive numbers, double them, and
    // sort the result (the user of a synthesizer only has the examples).
    let target: Program = "FILTER(>0), MAP(*2), SORT".parse()?;
    let spec = IoSpec::from_program(
        &target,
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
            vec![Value::List(vec![8, -8, 6, -6, 2])],
            vec![Value::List(vec![-3, -1, 12, 5])],
        ],
    );
    println!("Specification (5 input-output examples):\n{spec}\n");

    // The quickest way to see the GA at work is the output edit-distance
    // fitness, which needs no trained model. NetSyn's learned fitness
    // functions plug into exactly the same interface (see the
    // `train_fitness_nn` and `compare_baselines` examples).
    let mut config = NetSynConfig::paper_defaults(FitnessChoice::EditDistance, target.len());
    config.ga.mutation_mode = MutationMode::UniformRandom;
    config.ga.max_generations = 2_000;
    let synthesizer = NetSyn::new(config, None);

    let problem = SynthesisProblem::new(spec.clone(), target.len());
    let mut budget = SearchBudget::new(200_000);
    let mut rng = ChaCha8Rng::seed_from_u64(2021);
    let result = synthesizer.synthesize(&problem, &mut budget, &mut rng);

    match &result.solution {
        Some(program) => {
            println!("Synthesized program : {program}");
            println!("Candidates evaluated: {}", result.candidates_evaluated);
            println!(
                "Search space used   : {:.2}% of the {}-candidate cap",
                100.0 * result.candidates_evaluated as f64 / budget.max_candidates() as f64,
                budget.max_candidates()
            );
            if let Some(generations) = result.generations {
                println!("GA generations      : {generations}");
            }
            assert!(spec.is_satisfied_by(program));
            // The synthesized program may differ syntactically from the
            // hidden target while being equivalent on the specification.
            println!("Hidden target was   : {target}");
        }
        None => {
            println!(
                "No program found within {} candidates — try a larger budget.",
                result.candidates_evaluated
            );
        }
    }
    Ok(())
}
