//! Compare NetSyn against the paper's baselines (DeepCoder, PCCoder,
//! RobustFill, PushGP and the edit-distance GA) on a small generated suite,
//! using the paper's "search space used" metric.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```
//!
//! Set `NETSYN_CACHE_DIR=/some/dir` to persist fitness scores and trace
//! encodings across runs: `evaluate_method` warm-starts every method from the
//! durable cache (shards are keyed per model fingerprint and specification,
//! so methods never alias each other's scores).

use netsyn_core::prelude::*;
use netsyn_dsl::SynthesisTask;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program_length = 3;
    let budget_cap = 15_000;
    let runs_per_task = 2;

    // A small evaluation suite: 4 singleton-output + 4 list-output programs.
    let suite_config = SuiteConfig::small(program_length, 4);
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let suite = TestSuite::generate(&suite_config, &mut rng)?;
    println!(
        "Evaluation suite: {} programs of length {}, {} IO examples each, cap {} candidates\n",
        suite.len(),
        program_length,
        suite_config.examples_per_task,
        budget_cap
    );

    // Guidance for the neural baselines: the oracle probability map stands in
    // for a trained FP model so this example stays fast; run the
    // `fig4_search_space` benchmark binary for the fully learned pipeline.
    let methods: Vec<MethodSpec<'_>> = vec![
        MethodSpec::new("PushGP", |_task: &SynthesisTask| {
            Box::new(PushGp::new()) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("Edit (GA)", move |_task: &SynthesisTask| {
            let mut config =
                NetSynConfig::paper_defaults(FitnessChoice::EditDistance, program_length);
            config.ga.mutation_mode = MutationMode::UniformRandom;
            Box::new(NetSyn::new(config, None)) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("DeepCoder", |task: &SynthesisTask| {
            let guidance = ProbabilityMap::from_target(&task.target, 0.05);
            Box::new(DeepCoder::new(guidance)) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("PCCoder", |task: &SynthesisTask| {
            let guidance = ProbabilityMap::from_target(&task.target, 0.05);
            Box::new(PcCoder::new(guidance)) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("RobustFill", |task: &SynthesisTask| {
            let guidance = ProbabilityMap::from_target(&task.target, 0.05);
            Box::new(RobustFill::new(guidance)) as Box<dyn Synthesizer>
        }),
        MethodSpec::new("NetSyn (Oracle_CF)", move |task: &SynthesisTask| {
            let config =
                NetSynConfig::paper_defaults(FitnessChoice::OracleCommonFunctions, program_length);
            Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
                as Box<dyn Synthesizer>
        }),
        MethodSpec::new("Portfolio (GA+DFS+Beam)", move |task: &SynthesisTask| {
            let config =
                NetSynConfig::paper_defaults(FitnessChoice::OracleCommonFunctions, program_length);
            let netsyn = NetSyn::new(config, None).with_oracle_target(task.target.clone());
            Box::new(PortfolioSynthesizer::new(netsyn).with_name("Portfolio (GA+DFS+Beam)"))
                as Box<dyn Synthesizer>
        }),
    ];

    let mut table = Table::new(
        "Search-space comparison (smaller is better; '-' means not all programs were synthesized)",
        &[
            "method",
            "programs synthesized",
            "median search space",
            "mean synthesis rate",
        ],
    );
    for method in &methods {
        println!("running {} ...", method.name);
        let evaluation = evaluate_method(method, &suite, budget_cap, runs_per_task, 4242);
        let deciles = evaluation.search_space_deciles();
        let median = deciles[4]
            .map(|f| format!("{:.1}%", f * 100.0))
            .unwrap_or_else(|| "-".to_string());
        let summary = evaluation.summary();
        table.push_row(vec![
            summary.method,
            format!("{}/{}", summary.programs_synthesized, suite.len()),
            median,
            format!("{:.0}%", summary.avg_synthesis_rate_percent),
        ]);
    }
    println!("\n{table}");
    Ok(())
}
