//! Demonstrates the restricted local neighborhood search (Algorithm 1): when
//! the genetic algorithm's fitness signal saturates, searching the
//! single-replacement neighborhood of the top genes recovers programs that
//! are "approximately correct" — the paper's convergence contribution.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example neighborhood_rescue
//! ```

use netsyn_dsl::{DomainId, IoSpec, Program, Value};
use netsyn_fitness::{ClosenessMetric, OracleFitness, SpecScores, TraceEncodingCache};
use netsyn_ga::{neighborhood, GaConfig, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target: Program = "FILTER(>0), MAP(*2), SORT, REVERSE".parse()?;
    let spec = IoSpec::from_program(
        &target,
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
            vec![Value::List(vec![6, -6, 11, 3])],
        ],
    );

    // 1. A candidate that is one function away from the target: the
    //    neighborhood search finds the solution directly, in at most
    //    len(gene) * (|DSL| - 1) = 4 * 40 candidate evaluations.
    let approximately_correct: Program = "FILTER(>0), MAP(*2), SUM, REVERSE".parse()?;
    let oracle = OracleFitness::new(target.clone(), ClosenessMetric::CommonFunctions);
    let mut budget = SearchBudget::new(10_000);
    let outcome = neighborhood::search(
        std::slice::from_ref(&approximately_correct),
        &spec,
        NeighborhoodStrategy::Bfs,
        DomainId::List,
        &oracle,
        &mut budget,
        &SpecScores::default(),
        &TraceEncodingCache::new(),
        None,
        None,
    );
    println!("BFS neighborhood of `{approximately_correct}`:");
    match &outcome.solution {
        Some(found) => println!(
            "  found `{found}` after {} candidate evaluations",
            outcome.candidates_evaluated
        ),
        None => println!("  no solution in the neighborhood"),
    }

    // 2. The same mechanism inside the full engine: with neighborhood search
    //    enabled the GA needs fewer candidates than with it disabled.
    println!("\nFull GA with and without neighborhood search (oracle CF fitness):");
    for (label, strategy) in [
        ("NS disabled", NeighborhoodStrategy::Disabled),
        ("NS (BFS)", NeighborhoodStrategy::Bfs),
        ("NS (DFS)", NeighborhoodStrategy::Dfs),
    ] {
        let mut config = GaConfig::paper_defaults(target.len());
        config.max_generations = 400;
        config.neighborhood = strategy;
        let engine = GeneticEngine::new(config);
        let mut budget = SearchBudget::new(150_000);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let outcome = engine.synthesize(&spec, &oracle, &mut budget, &mut rng);
        println!(
            "  {label:<12} success: {:<5} candidates: {:>7} generations: {:>4} found-by-NS: {}",
            outcome.is_success(),
            outcome.candidates_evaluated,
            outcome.generations,
            outcome.found_by_neighborhood
        );
    }
    Ok(())
}
