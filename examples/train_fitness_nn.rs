//! Train the learned fitness functions (NN-FF) on a freshly generated corpus
//! and inspect their quality: the CF confusion matrix and the FP accuracy
//! curve of Figure 7, at laptop scale.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example train_fitness_nn
//! ```

use netsyn_dsl::{Generator, GeneratorConfig};
use netsyn_fitness::dataset::{
    generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig,
};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessFunction, LearnedFitness, LearnedProbabilityModel};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program_length = 4;
    let mut rng = ChaCha8Rng::seed_from_u64(7);

    // 1. Generate a balanced corpus: for every random target program, one
    //    candidate per possible CF value so the classifier sees all labels.
    let mut dataset_config = DatasetConfig::for_length(program_length);
    dataset_config.num_target_programs = 80;
    println!(
        "Generating a CF-balanced corpus from {} target programs ...",
        dataset_config.num_target_programs
    );
    let cf_samples = generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng)?;
    println!(
        "  {} labelled (spec, candidate, trace) samples",
        cf_samples.len()
    );

    // 2. Train the CF classifier.
    let mut trainer_config = TrainerConfig::small();
    trainer_config.epochs = 4;
    println!(
        "Training the f_CF network for {} epochs ...",
        trainer_config.epochs
    );
    let cf_model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &cf_samples,
        program_length,
        &trainer_config,
        &mut rng,
    );
    for epoch in &cf_model.report.epochs {
        println!(
            "  epoch {:>2}: train loss {:.4}, validation accuracy {:.2}",
            epoch.epoch, epoch.train_loss, epoch.validation_accuracy
        );
    }
    if let Some(confusion) = &cf_model.report.confusion {
        println!("\n{confusion}\n");
    }

    // 3. Train the FP model (probability of each DSL function being in the
    //    target) on specification-only samples.
    let mut fp_config = dataset_config.clone();
    fp_config.num_target_programs = 300;
    let fp_samples = generate_fp_dataset(&fp_config, &mut rng)?;
    println!(
        "Training the f_FP network on {} specifications ...",
        fp_samples.len()
    );
    let fp_model = train_fitness_model(
        FitnessModelKind::FunctionProbability,
        &fp_samples,
        program_length,
        &trainer_config,
        &mut rng,
    );
    for epoch in &fp_model.report.epochs {
        println!(
            "  epoch {:>2}: train loss {:.4}, thresholded accuracy {:.2}",
            epoch.epoch, epoch.train_loss, epoch.validation_accuracy
        );
    }

    // 4. Use the trained models as fitness functions on a fresh task.
    let generator = Generator::new(GeneratorConfig::for_length(program_length));
    let task = generator.task(5, &mut rng)?;
    let cf_fitness = LearnedFitness::new(cf_model);
    let probability_model = LearnedProbabilityModel::new(fp_model);
    let map = probability_model.probability_map(&task.spec);

    let close_candidate = task.target.clone();
    let far_candidate = generator.random_program(&mut rng);
    println!("\nScoring candidates for a fresh synthesis task:");
    println!("  target                       : {}", task.target);
    println!(
        "  NN-CF score of the target    : {:.3} (max {})",
        cf_fitness.score(&close_candidate, &task.spec),
        cf_fitness.max_score()
    );
    println!(
        "  NN-CF score of a random gene : {:.3}",
        cf_fitness.score(&far_candidate, &task.spec)
    );
    println!(
        "  FP map mass on target functions: {:.3}",
        map.score(&task.target)
    );
    println!(
        "  FP map mass on a random gene   : {:.3}",
        map.score(&far_candidate)
    );
    Ok(())
}
