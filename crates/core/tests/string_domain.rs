//! End-to-end synthesis in the string-transformation domain: an evaluation
//! suite of string tasks, a learned fitness bundle trained on string
//! corpora, and NetSyn's GA searching the string operator vocabulary.
//!
//! The list-domain pipeline is covered by the unit tests of every crate;
//! this binary proves the second registered domain works through the same
//! harness with no list-specific assumptions left.

use netsyn_core::{
    evaluate_method, BundleTrainingConfig, FitnessChoice, MethodSpec, ModelBundle, NetSyn,
    NetSynConfig, SuiteConfig, TestSuite,
};
use netsyn_dsl::{DomainId, SynthesisTask};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn string_suite(length: usize, per_kind: usize, seed: u64) -> TestSuite {
    let mut config = SuiteConfig::for_domain(DomainId::Str, length);
    config.singleton_tasks = per_kind;
    config.list_tasks = per_kind;
    TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
}

#[test]
fn oracle_netsyn_synthesizes_string_tasks() {
    let suite = string_suite(2, 2, 21);
    assert_eq!(suite.domain, DomainId::Str);
    let method = MethodSpec::new("Oracle_CF", |task: &SynthesisTask| {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
            as Box<dyn netsyn_baselines::Synthesizer>
    });
    let evaluation = evaluate_method(&method, &suite, 50_000, 2, 7);
    assert_eq!(evaluation.records.len(), suite.len() * 2);
    assert!(
        evaluation.percent_synthesized() >= 0.5,
        "oracle-guided GA should solve most length-2 string tasks, solved {}",
        evaluation.percent_synthesized()
    );
    // Per-function rates cover exactly the string vocabulary.
    let rates = evaluation.rate_by_function(&suite);
    assert_eq!(rates.len(), DomainId::Str.vocab_len());
    for (function, _) in &rates {
        assert!(DomainId::Str.vocab().contains(function));
    }
}

#[test]
fn learned_netsyn_synthesizes_string_tasks_with_a_string_bundle() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let config = BundleTrainingConfig::tiny(2).for_domain(DomainId::Str);
    let bundle = Arc::new(ModelBundle::train(&config, &mut rng).unwrap());
    // The FP head is sized to the string vocabulary, not the list one.
    assert_eq!(bundle.fp.net.output_dim(), DomainId::Str.vocab_len());

    let suite = string_suite(2, 1, 9);
    let method = MethodSpec::new("NetSyn_CF", |_task: &SynthesisTask| {
        let mut config = NetSynConfig::small(FitnessChoice::NeuralCommonFunctions, 2);
        config.ga.population_size = 20;
        config.ga.max_generations = 60;
        Box::new(NetSyn::new(config, Some(Arc::clone(&bundle))))
            as Box<dyn netsyn_baselines::Synthesizer>
    });
    let evaluation = evaluate_method(&method, &suite, 3_000, 2, 3);
    assert_eq!(evaluation.records.len(), suite.len() * 2);
    for record in &evaluation.records {
        assert!(record.candidates_evaluated <= 3_000);
    }
    // The string vocabulary has 18 operators, so length-2 programs span a
    // search space of 324 candidates: even a barely-trained fitness model
    // must guide the GA to at least one solution within budget.
    assert!(
        evaluation.percent_synthesized() > 0.0,
        "learned-fitness GA solved no string task"
    );
}
