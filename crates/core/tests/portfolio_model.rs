//! Loom model suite for the portfolio winner election and first-solution
//! cancellation bound (see `netsyn_core::portfolio::race`).
//!
//! Invariants checked: **exactly one winner** — two strategies that both
//! solve race a `compare_exchange(usize::MAX, index)` election and the
//! loser's solution never overwrites the winner's — and **a fired token
//! bounds rival draws**: the winner snapshots the budget *before* firing
//! the token, so a rival that checks the token before each draw admits at
//! most one candidate past the snapshot.
//!
//! The protocol shapes here mirror the body of `race()` (the election and
//! cancellation sequence around its `par_chunks_mut` loop) with the
//! strategy `step` reduced to a single budget draw — the real function's
//! thread pool cannot run inside a model iteration, the protocol is what
//! is load-bearing. Seeded-bug tests remove one step each and assert the
//! checker reports the violation.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netsyn-core --test
//! portfolio_model --release`.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering};
use netsyn_ga::{CancelToken, SharedBudget};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the model checker expecting a failure; returns the
/// panic message.
fn catches(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(f);
    }));
    let payload = result.expect_err("model checker should have found a failure");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Both strategies solve and race the election: in every interleaving
/// exactly one `compare_exchange` succeeds and the winner index is one of
/// the contenders, never clobbered.
#[test]
fn winner_election_crowns_exactly_one() {
    let report = Builder::new().check(|| {
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let token = CancelToken::new();
        let elect = |winner: &AtomicUsize, index: usize| -> bool {
            winner
                .compare_exchange(usize::MAX, index, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
        };
        let rival = {
            let winner = Arc::clone(&winner);
            let token = token.clone();
            loom::thread::spawn(move || {
                let won = elect(&winner, 1);
                if won {
                    token.cancel();
                }
                won
            })
        };
        let mine = elect(&winner, 0);
        if mine {
            token.cancel();
        }
        let theirs = rival.join().unwrap();
        assert!(mine ^ theirs, "exactly one strategy must win the election");
        let crowned = winner.load(Ordering::SeqCst);
        assert_eq!(crowned, if mine { 0 } else { 1 });
        assert!(token.is_cancelled(), "the winner always fires the token");
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// A fired token admits at most one more rival draw: a draw needs its
/// guarding check to pass, rival draws are sequential, and two draws past
/// `cancel()` would put the second check after the firing — where the
/// level-triggered SeqCst token must be visible. So the budget reading the
/// winner takes right *after* firing can be exceeded by at most the one
/// in-flight draw.
#[test]
fn fired_token_admits_at_most_one_inflight_rival_draw() {
    let report = Builder::new().check(|| {
        let budget = SharedBudget::new(10);
        let at_cancellation = Arc::new(AtomicUsize::new(usize::MAX));
        let token = CancelToken::new();
        let winner = {
            let budget = budget.clone();
            let token = token.clone();
            let at_cancellation = Arc::clone(&at_cancellation);
            loom::thread::spawn(move || {
                assert!(budget.try_consume()); // the solving step's draw
                at_cancellation.store(budget.evaluated(), Ordering::SeqCst);
                token.cancel();
                budget.evaluated() // floor: all draws after this raced the fired token
            })
        };
        // Rival: mirrors the `race()` loop — token checked before every
        // step, each step draws once.
        for _ in 0..2 {
            if token.is_cancelled() {
                break;
            }
            let _ = budget.try_consume();
        }
        let post_fire_floor = winner.join().unwrap();
        let snapshot = at_cancellation.load(Ordering::SeqCst);
        assert_ne!(snapshot, usize::MAX, "winner always snapshots");
        assert!(
            budget.evaluated() <= post_fire_floor + 1,
            "rival admitted more than one draw after the token fired: \
             evaluated={} floor={}",
            budget.evaluated(),
            post_fire_floor
        );
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// Seeded bug: election by load-then-store instead of compare-exchange.
/// Both racers can observe `usize::MAX` and both believe they won — the
/// checker must find the double crown.
#[test]
fn finds_double_winner_with_load_then_store_election() {
    let message = catches(|| {
        let winner = Arc::new(AtomicUsize::new(usize::MAX));
        let elect_buggy = |winner: &AtomicUsize, index: usize| -> bool {
            // BUG (seeded): check and claim are separate operations.
            // `race()` uses compare_exchange to make them one.
            if winner.load(Ordering::SeqCst) == usize::MAX {
                winner.store(index, Ordering::SeqCst);
                true
            } else {
                false
            }
        };
        let rival = {
            let winner = Arc::clone(&winner);
            loom::thread::spawn(move || elect_buggy(&winner, 1))
        };
        let mine = elect_buggy(&winner, 0);
        let theirs = rival.join().unwrap();
        assert!(!(mine && theirs), "two strategies were both crowned winner");
    });
    assert!(
        message.contains("both crowned"),
        "expected the double-winner assertion, got: {message}"
    );
}

/// Seeded bug: the winner fires the token *before* storing the snapshot.
/// A rival can observe the fired token, finish, and the outcome reader
/// then loads an unset snapshot while the token is already cancelled —
/// the ordering `race()` documents as load-bearing.
#[test]
fn finds_unset_snapshot_when_cancel_precedes_store() {
    let message = catches(|| {
        let at_cancellation = Arc::new(AtomicUsize::new(usize::MAX));
        let token = CancelToken::new();
        let winner = {
            let token = token.clone();
            let at_cancellation = Arc::clone(&at_cancellation);
            loom::thread::spawn(move || {
                // BUG (seeded): fire first, snapshot after. `race()`
                // stores the snapshot before `cancel()` precisely so a
                // rival that sees the token also sees the snapshot.
                token.cancel();
                at_cancellation.store(7, Ordering::SeqCst);
            })
        };
        if token.is_cancelled() {
            assert_ne!(
                at_cancellation.load(Ordering::SeqCst),
                usize::MAX,
                "observed a fired token with no snapshot stored"
            );
        }
        winner.join().unwrap();
    });
    assert!(
        message.contains("no snapshot"),
        "expected the unset-snapshot assertion, got: {message}"
    );
}
