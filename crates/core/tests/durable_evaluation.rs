//! End-to-end test of the evaluation harness's `NETSYN_CACHE_DIR` opt-in:
//! `evaluate_method` persists its fitness caches and a rerun warm-starts
//! from disk with unchanged results.
//!
//! This lives in its own test binary because it sets a process-global
//! environment variable: no other test shares the process, so there is no
//! race with tests that expect the variable unset.

use netsyn_core::{
    evaluate_method, FitnessChoice, MethodEvaluation, MethodSpec, NetSyn, NetSynConfig,
    SuiteConfig, TestSuite,
};
use netsyn_dsl::SynthesisTask;
use netsyn_fitness::persist::{CACHE_DIR_ENV, SCORES_FILE};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn strip(e: &MethodEvaluation) -> Vec<(usize, usize, bool, usize)> {
    e.records
        .iter()
        .map(|r| (r.task_index, r.run_index, r.success, r.candidates_evaluated))
        .collect()
}

#[test]
fn evaluate_method_persists_and_warm_starts_from_cache_dir() {
    let dir = std::env::temp_dir().join(format!("netsyn_durable_eval_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let suite_config = SuiteConfig::small(2, 1);
    let suite = TestSuite::generate(&suite_config, &mut ChaCha8Rng::seed_from_u64(11)).unwrap();
    let make_method = || {
        MethodSpec::new("Oracle_CF", |task: &SynthesisTask| {
            let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
            Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
                as Box<dyn netsyn_baselines::Synthesizer>
        })
    };

    // Baseline without durability.
    let baseline = evaluate_method(&make_method(), &suite, 20_000, 2, 3);

    // First durable run: must leave a populated score log behind.
    std::env::set_var(CACHE_DIR_ENV, &dir);
    let cold = evaluate_method(&make_method(), &suite, 20_000, 2, 3);
    assert_eq!(
        strip(&cold),
        strip(&baseline),
        "turning durability on must not change any result"
    );
    let log = dir.join(SCORES_FILE);
    assert!(log.exists(), "evaluate_method must flush the durable cache");
    assert!(
        std::fs::metadata(&log).unwrap().len() > 0,
        "the score log must contain the evaluation's scores"
    );

    // Second durable run: warm-starts from disk, identical results.
    let warm = evaluate_method(&make_method(), &suite, 20_000, 2, 3);
    assert_eq!(
        strip(&warm),
        strip(&baseline),
        "a warm-from-disk evaluation must reproduce the cold results"
    );

    // A damaged log degrades to cold, never breaks the evaluation.
    let bytes = std::fs::read(&log).unwrap();
    std::fs::write(&log, &bytes[..bytes.len().saturating_sub(9)]).unwrap();
    let damaged = evaluate_method(&make_method(), &suite, 20_000, 2, 3);
    assert_eq!(
        strip(&damaged),
        strip(&baseline),
        "a damaged cache directory must not change any result"
    );

    std::env::remove_var(CACHE_DIR_ENV);
    let _ = std::fs::remove_dir_all(&dir);
}
