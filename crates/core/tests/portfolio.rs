//! Portfolio racing end-to-end: the heterogeneous strategy race solves
//! evaluation suites in both registered domains through the shared harness,
//! first-solution cancellation stops losers within one step, and a losing
//! strategy's panic is never swallowed.

use netsyn_core::{
    evaluate_method, race, FitnessChoice, MethodSpec, NetSyn, NetSynConfig, PortfolioSynthesizer,
    SuiteConfig, TestSuite,
};
use netsyn_dsl::{DomainId, Function, Program, SynthesisTask};
use netsyn_ga::{CancelToken, SearchStrategy, SharedBudget, StepStatus};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn suite_for(domain: DomainId, length: usize, per_kind: usize, seed: u64) -> TestSuite {
    let mut config = SuiteConfig::for_domain(domain, length);
    config.singleton_tasks = per_kind;
    config.list_tasks = per_kind;
    TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(seed)).unwrap()
}

fn portfolio_method(name: &str) -> MethodSpec<'_> {
    MethodSpec::new(name, |task: &SynthesisTask| {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, task.target.len());
        let netsyn = NetSyn::new(config, None).with_oracle_target(task.target.clone());
        Box::new(PortfolioSynthesizer::new(netsyn)) as Box<dyn netsyn_baselines::Synthesizer>
    })
}

#[test]
fn portfolio_solves_the_list_domain_smoke_suite_within_budget() {
    let suite = suite_for(DomainId::List, 2, 2, 11);
    let cap = 50_000;
    let evaluation = evaluate_method(&portfolio_method("Portfolio_Oracle_CF"), &suite, cap, 2, 7);
    assert_eq!(evaluation.records.len(), suite.len() * 2);
    for record in &evaluation.records {
        assert!(
            record.candidates_evaluated <= cap,
            "a race drew {} candidates past the {cap} cap",
            record.candidates_evaluated
        );
    }
    assert!(
        evaluation.percent_synthesized() >= 0.5,
        "the oracle-guided portfolio should solve most length-2 list tasks, solved {}",
        evaluation.percent_synthesized()
    );
}

#[test]
fn portfolio_solves_the_string_domain_smoke_suite_within_budget() {
    let suite = suite_for(DomainId::Str, 2, 2, 21);
    assert_eq!(suite.domain, DomainId::Str);
    let cap = 50_000;
    let evaluation = evaluate_method(&portfolio_method("Portfolio_Oracle_CF"), &suite, cap, 2, 3);
    assert_eq!(evaluation.records.len(), suite.len() * 2);
    for record in &evaluation.records {
        assert!(record.candidates_evaluated <= cap);
    }
    assert!(
        evaluation.percent_synthesized() >= 0.5,
        "the oracle-guided portfolio should solve most length-2 string tasks, solved {}",
        evaluation.percent_synthesized()
    );
}

/// A scripted strategy: draws `per_step` candidates each step and solves
/// after `solve_after_steps` steps (never, if `None`).
struct Scripted {
    name: &'static str,
    per_step: usize,
    solve_after_steps: Option<usize>,
    steps_taken: usize,
    evaluated: usize,
    panic_after_steps: Option<usize>,
}

impl Scripted {
    fn drone(name: &'static str, per_step: usize) -> Self {
        Scripted {
            name,
            per_step,
            solve_after_steps: None,
            steps_taken: 0,
            evaluated: 0,
            panic_after_steps: None,
        }
    }

    fn solver(name: &'static str, per_step: usize, solve_after_steps: usize) -> Self {
        Scripted {
            solve_after_steps: Some(solve_after_steps),
            ..Scripted::drone(name, per_step)
        }
    }

    fn panicker(name: &'static str, per_step: usize, panic_after_steps: usize) -> Self {
        Scripted {
            panic_after_steps: Some(panic_after_steps),
            ..Scripted::drone(name, per_step)
        }
    }
}

impl SearchStrategy for Scripted {
    fn name(&self) -> &str {
        self.name
    }

    fn step(&mut self, budget: &SharedBudget, cancel: &CancelToken) -> StepStatus {
        if cancel.is_cancelled() {
            return StepStatus::Done;
        }
        self.steps_taken += 1;
        if self.panic_after_steps == Some(self.steps_taken) {
            panic!("scripted mid-race failure");
        }
        for _ in 0..self.per_step {
            if !budget.try_consume() {
                return StepStatus::Done;
            }
            self.evaluated += 1;
        }
        if self.solve_after_steps == Some(self.steps_taken) {
            return StepStatus::Solved(Program::new(vec![Function::Sort]));
        }
        StepStatus::Continue
    }

    fn candidates_evaluated(&self) -> usize {
        self.evaluated
    }

    fn best_so_far(&self) -> Option<Program> {
        None
    }
}

#[test]
fn the_first_solution_cancels_every_loser_within_one_step() {
    // The fast solver wins on its third step; the drones would otherwise
    // grind through the whole budget.
    let mut solver = Scripted::solver("fast-beam", 10, 3);
    let mut drone_a = Scripted::drone("slow-ga", 25);
    let mut drone_b = Scripted::drone("slow-dfs", 25);
    let budget = SharedBudget::new(1_000_000);
    let cancel = CancelToken::new();
    let mut strategies: [&mut (dyn SearchStrategy + Send); 3] =
        [&mut solver, &mut drone_a, &mut drone_b];
    let outcome = race(&mut strategies, &budget, &cancel);
    assert!(cancel.is_cancelled(), "the winner fires the token");
    assert_eq!(outcome.winner.as_deref(), Some("fast-beam"));
    assert!(outcome.solution.is_some());
    // Budget accounting bounds the losers' overshoot: each rival completes
    // at most the one step it had already begun when the token fired, so
    // the final count exceeds the cancellation snapshot by at most one
    // step's draw per loser.
    let max_overshoot = 2 * 25;
    assert!(
        outcome.candidates_evaluated <= outcome.evaluated_at_cancellation + max_overshoot,
        "losers kept drawing after cancellation: {} evaluated, {} at cancellation",
        outcome.candidates_evaluated,
        outcome.evaluated_at_cancellation
    );
    assert_eq!(
        outcome.candidates_evaluated,
        outcome
            .reports
            .iter()
            .map(|r| r.candidates_evaluated)
            .sum::<usize>(),
        "the shared budget count equals the sum of per-strategy draws"
    );
    assert!(outcome.candidates_evaluated < 1_000_000);
}

#[test]
fn a_panicking_strategy_fires_the_token_and_reraises_on_the_caller() {
    let budget = SharedBudget::new(1_000_000);
    let cancel = CancelToken::new();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut panicker = Scripted::panicker("flaky", 10, 2);
        let mut drone = Scripted::drone("steady", 10);
        let mut strategies: [&mut (dyn SearchStrategy + Send); 2] = [&mut panicker, &mut drone];
        race(&mut strategies, &budget, &cancel)
    }));
    let payload = caught.expect_err("the loser's panic must reach the caller");
    let message = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_string)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(
        message.contains("scripted mid-race failure"),
        "the original payload is re-raised, got: {message}"
    );
    assert!(
        cancel.is_cancelled(),
        "a panic fires the token so rivals stop instead of racing a corpse"
    );
    // The drone observed the token: it stopped far short of the budget.
    let drone_evaluated = budget.evaluated();
    assert!(
        drone_evaluated < 1_000_000,
        "the surviving strategy must stop after the panic, drew {drone_evaluated}"
    );
}
