//! The NetSyn synthesizer: a genetic algorithm driven by a learned (or
//! oracle / hand-crafted) fitness function, with FP-guided mutation and
//! restricted local neighborhood search.

use crate::config::{FitnessChoice, NetSynConfig};
use crate::models::ModelBundle;
use netsyn_baselines::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::{
    ClosenessMetric, EditDistanceFitness, FitnessCache, FitnessFunction, LearnedFitness,
    LearnedProbabilityModel, OracleFitness, ProbabilityFitness,
};
use netsyn_ga::{GeneticEngine, MutationMode, SearchBudget};
use rand::RngCore;
use std::sync::Arc;

/// The NetSyn program synthesizer.
///
/// A `NetSyn` value is configured with a fitness choice (learned CF / LCS /
/// FP, edit distance, or oracle) and GA hyper-parameters, plus an optional
/// [`ModelBundle`] of trained networks (required for the learned choices) and
/// an optional oracle target (required for the oracle choices).
pub struct NetSyn {
    config: NetSynConfig,
    models: Option<Arc<ModelBundle>>,
    oracle_target: Option<Program>,
    name: String,
}

impl NetSyn {
    /// Creates a NetSyn instance.
    ///
    /// # Panics
    ///
    /// Panics if the fitness choice needs a trained model bundle and none is
    /// provided.
    #[must_use]
    pub fn new(config: NetSynConfig, models: Option<Arc<ModelBundle>>) -> Self {
        assert!(
            !config.fitness.needs_model() || models.is_some(),
            "fitness choice {} requires a trained model bundle",
            config.fitness
        );
        let name = config.fitness.label().to_string();
        NetSyn {
            config,
            models,
            oracle_target: None,
            name,
        }
    }

    /// Sets the hidden target program used by the oracle fitness choices.
    #[must_use]
    pub fn with_oracle_target(mut self, target: Program) -> Self {
        self.oracle_target = Some(target);
        self
    }

    /// Overrides the display name (useful for ablation rows such as
    /// `GA+fCF+NS_BFS`).
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &NetSynConfig {
        &self.config
    }

    /// The hidden oracle target, if one was set.
    pub(crate) fn oracle_target(&self) -> Option<&Program> {
        self.oracle_target.as_ref()
    }

    /// Builds the fitness function for one synthesis problem.
    ///
    /// # Panics
    ///
    /// Panics if an oracle fitness is requested without an oracle target.
    pub(crate) fn build_fitness(&self, spec: &IoSpec) -> Box<dyn FitnessFunction> {
        let program_length = self.config.ga.program_length;
        let mutation_map = if self.config.ga.mutation_mode == MutationMode::ProbabilityGuided {
            self.models
                .as_ref()
                .map(|m| LearnedProbabilityModel::new(m.fp.clone()).probability_map(spec))
        } else {
            None
        };
        match self.config.fitness {
            FitnessChoice::NeuralCommonFunctions => {
                let bundle = self.models.as_ref().expect("model bundle present");
                let mut fitness = LearnedFitness::new(bundle.cf.clone());
                if let Some(map) = mutation_map {
                    fitness = fitness.with_mutation_map(map);
                }
                Box::new(fitness)
            }
            FitnessChoice::NeuralLongestCommonSubsequence => {
                let bundle = self.models.as_ref().expect("model bundle present");
                let mut fitness = LearnedFitness::new(bundle.lcs.clone());
                if let Some(map) = mutation_map {
                    fitness = fitness.with_mutation_map(map);
                }
                Box::new(fitness)
            }
            FitnessChoice::NeuralFunctionProbability => {
                let bundle = self.models.as_ref().expect("model bundle present");
                let map = LearnedProbabilityModel::new(bundle.fp.clone()).probability_map(spec);
                Box::new(ProbabilityFitness::new(map, program_length))
            }
            FitnessChoice::EditDistance => Box::new(EditDistanceFitness::new()),
            FitnessChoice::OracleCommonFunctions => Box::new(OracleFitness::new(
                self.oracle_target
                    .clone()
                    .expect("oracle fitness requires a target program"),
                ClosenessMetric::CommonFunctions,
            )),
            FitnessChoice::OracleLongestCommonSubsequence => Box::new(OracleFitness::new(
                self.oracle_target
                    .clone()
                    .expect("oracle fitness requires a target program"),
                ClosenessMetric::LongestCommonSubsequence,
            )),
        }
    }
}

impl Synthesizer for NetSyn {
    fn name(&self) -> &str {
        &self.name
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        self.synthesize_cached(problem, budget, rng, &FitnessCache::new())
    }

    /// NetSyn threads the shared cache into the GA engine: repeated runs of
    /// the same task (the harness's `K` repetitions) reuse every fitness
    /// score computed for that specification.
    fn synthesize_cached(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
        cache: &FitnessCache,
    ) -> SynthesisResult {
        let mut ga_config = self.config.ga.clone();
        ga_config.program_length = problem.target_length;
        ga_config.domain = problem.domain;
        let engine = GeneticEngine::new(ga_config);
        let fitness = self.build_fitness(&problem.spec);
        let outcome =
            engine.synthesize_with_cache(&problem.spec, fitness.as_ref(), budget, rng, cache);
        SynthesisResult {
            solution: outcome.solution,
            candidates_evaluated: outcome.candidates_evaluated,
            generations: Some(outcome.generations),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::BundleTrainingConfig;
    use netsyn_dsl::{Function, IntPredicate, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
                vec![Value::List(vec![0, -1, 6])],
            ],
        )
    }

    #[test]
    fn oracle_netsyn_synthesizes_a_short_program() {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        let netsyn = NetSyn::new(config, None).with_oracle_target(target());
        let problem = SynthesisProblem::new(spec(), 2);
        let mut budget = SearchBudget::new(100_000);
        let result = netsyn.synthesize(&problem, &mut budget, &mut rng(1));
        assert!(result.is_success());
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
        assert!(result.generations.is_some());
        assert_eq!(netsyn.name(), "Oracle_CF");
    }

    #[test]
    fn edit_distance_netsyn_synthesizes_a_short_program() {
        let mut config = NetSynConfig::small(FitnessChoice::EditDistance, 2);
        config.ga.mutation_mode = MutationMode::UniformRandom;
        let netsyn = NetSyn::new(config, None).with_name("Edit");
        let problem = SynthesisProblem::new(spec(), 2);
        let mut budget = SearchBudget::new(100_000);
        let result = netsyn.synthesize(&problem, &mut budget, &mut rng(2));
        assert!(result.is_success());
        assert_eq!(netsyn.name(), "Edit");
    }

    #[test]
    fn learned_netsyn_runs_with_a_tiny_bundle() {
        let mut r = rng(3);
        let bundle = Arc::new(ModelBundle::train(&BundleTrainingConfig::tiny(2), &mut r).unwrap());
        for fitness in [
            FitnessChoice::NeuralCommonFunctions,
            FitnessChoice::NeuralLongestCommonSubsequence,
            FitnessChoice::NeuralFunctionProbability,
        ] {
            let mut config = NetSynConfig::small(fitness, 2);
            config.ga.population_size = 10;
            config.ga.max_generations = 5;
            let netsyn = NetSyn::new(config, Some(Arc::clone(&bundle)));
            let problem = SynthesisProblem::new(spec(), 2);
            // A small budget: we only check that the search runs and respects
            // accounting, not that the barely-trained model succeeds.
            let mut budget = SearchBudget::new(500);
            let result = netsyn.synthesize(&problem, &mut budget, &mut r);
            assert_eq!(result.candidates_evaluated, budget.evaluated());
            if let Some(solution) = &result.solution {
                assert!(spec().is_satisfied_by(solution));
            }
        }
    }

    #[test]
    #[should_panic(expected = "requires a trained model bundle")]
    fn learned_choice_without_models_panics() {
        let _ = NetSyn::new(
            NetSynConfig::small(FitnessChoice::NeuralCommonFunctions, 3),
            None,
        );
    }

    #[test]
    #[should_panic(expected = "requires a target program")]
    fn oracle_choice_without_target_panics() {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        let netsyn = NetSyn::new(config, None);
        let problem = SynthesisProblem::new(spec(), 2);
        let mut budget = SearchBudget::new(10);
        let _ = netsyn.synthesize(&problem, &mut budget, &mut rng(4));
    }
}
