//! Plain-text / CSV table rendering for experiment reports.
//!
//! The benchmark binaries print the same rows and columns the paper's tables
//! and figures report, using this small formatter.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple rectangular table with a title, column headers and string cells.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Table title (e.g. `"Table 4: search space used (length 5)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the header count.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row length must match header count"
        );
        self.rows.push(row);
    }

    /// Renders the table as CSV (headers first).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(widths.iter())
                .map(|(cell, width)| format!("{cell:>width$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        )?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

/// Formats an optional cost value as a percentage string (`"37%"`), a
/// sub-percent marker (`"<1%"`) or a dash for `None` — the convention used by
/// Table 4 of the paper.
#[must_use]
pub fn format_percentage(value: Option<f64>) -> String {
    match value {
        None => "-".to_string(),
        Some(v) if v < 0.01 => "<1%".to_string(),
        Some(v) => format!("{:.0}%", v * 100.0),
    }
}

/// Formats an optional duration in seconds as the paper's Table 3 does
/// (`"<1s"`, `"13s"`, or a dash).
#[must_use]
pub fn format_seconds(value: Option<f64>) -> String {
    match value {
        None => "-".to_string(),
        Some(v) if v < 1.0 => "<1s".to_string(),
        Some(v) => format!("{v:.0}s"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_title_headers_and_rows() {
        let mut table = Table::new("Demo", &["method", "10%", "20%"]);
        table.push_row(vec![
            "NetSyn_CF".to_string(),
            "<1%".to_string(),
            "2%".to_string(),
        ]);
        let rendered = table.to_string();
        assert!(rendered.contains("Demo"));
        assert!(rendered.contains("method"));
        assert!(rendered.contains("NetSyn_CF"));
        assert!(rendered.contains("<1%"));
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_length_panics() {
        let mut table = Table::new("Demo", &["a", "b"]);
        table.push_row(vec!["only one".to_string()]);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut table = Table::new("Demo", &["name", "value"]);
        table.push_row(vec!["a,b".to_string(), "say \"hi\"".to_string()]);
        let csv = table.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn percentage_formatting_matches_paper_conventions() {
        assert_eq!(format_percentage(None), "-");
        assert_eq!(format_percentage(Some(0.005)), "<1%");
        assert_eq!(format_percentage(Some(0.37)), "37%");
        assert_eq!(format_percentage(Some(1.0)), "100%");
    }

    #[test]
    fn seconds_formatting_matches_paper_conventions() {
        assert_eq!(format_seconds(None), "-");
        assert_eq!(format_seconds(Some(0.2)), "<1s");
        assert_eq!(format_seconds(Some(13.4)), "13s");
    }
}
