//! The portfolio orchestrator: heterogeneous search strategies racing under
//! one shared budget with first-solution cancellation.
//!
//! [`race`] steps a set of [`SearchStrategy`] values concurrently (one pool
//! worker per strategy), all drawing candidates from a single
//! [`SharedBudget`]. The first strategy to report
//! [`StepStatus::Solved`](netsyn_ga::StepStatus) fires the shared
//! [`CancelToken`]; every rival observes the token at its next step boundary
//! — between GA generations, between DFS positions, before a beam level —
//! and stops within that one unit of work. The total candidates drawn never
//! exceed the budget cap (the shared atomic counter enforces it), but the
//! admission *order* across strategies is whatever the race produces, so a
//! portfolio run is not deterministic run-to-run. Deterministic evaluation
//! paths use [`NetSyn`]'s island engine instead.
//!
//! [`PortfolioSynthesizer`] wraps a [`NetSyn`] configuration as a
//! [`Synthesizer`]: each synthesis races the GA islands, a DFS neighborhood
//! walk over random seed programs, and a guided beam search, reusing the
//! same fitness function, probability map and shared [`FitnessCache`] the
//! plain engine would use.

use crate::sync_select::{AtomicUsize, Ordering};
use crate::synthesizer::NetSyn;
use netsyn_baselines::{SynthesisProblem, SynthesisResult, Synthesizer};
use netsyn_dsl::Program;
use netsyn_fitness::{FitnessCache, FitnessFunction, ProbabilityMap};
use netsyn_ga::{
    random_seed_programs, BeamConfig, BeamSearch, CancelToken, DfsSearchStrategy, GaSearchStrategy,
    SearchBudget, SearchStrategy, SharedBudget, StepStatus,
};
use rand::RngCore;
use rayon::prelude::*;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Probability floor of the oracle-derived beam guidance map.
const ORACLE_MAP_FLOOR: f64 = 0.05;

/// Per-strategy accounting of one portfolio race.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReport {
    /// The strategy's stable name (`"ga-islands"`, `"dfs-neighborhood"`,
    /// `"beam"`, ...).
    pub name: String,
    /// Candidates this strategy drew from the shared budget.
    pub candidates_evaluated: usize,
    /// Whether this strategy found a satisfying program.
    pub solved: bool,
}

/// Result of one [`race`].
#[derive(Debug, Clone, PartialEq)]
pub struct PortfolioOutcome {
    /// The winning program, if any strategy solved the problem.
    pub solution: Option<Program>,
    /// Name of the strategy whose solution won the cancellation race.
    pub winner: Option<String>,
    /// Total candidates drawn from the shared budget by all strategies.
    pub candidates_evaluated: usize,
    /// The shared-budget reading at the moment the winner fired the token
    /// (equal to [`PortfolioOutcome::candidates_evaluated`] when no one
    /// solved). The difference between the two bounds the work losers did
    /// after the solution existed: at most one step per rival.
    pub evaluated_at_cancellation: usize,
    /// One report per strategy, in the order they were passed to [`race`].
    pub reports: Vec<StrategyReport>,
}

struct Slot<'s> {
    index: usize,
    strategy: &'s mut (dyn SearchStrategy + Send),
    solution: Option<Program>,
}

/// Races `strategies` to the first solution under one shared budget.
///
/// Each strategy runs on its own pool worker, stepping until it solves, runs
/// out of work, or observes `cancel`. The first solver fires `cancel` (and
/// any external holder of the token may fire it too, stopping the whole
/// race). When several strategies solve concurrently — each stepped into a
/// solution before observing the token — the one that won the atomic
/// compare-exchange is the winner; the others' solutions still appear in
/// their [`StrategyReport`]s.
///
/// # Panics
///
/// If a strategy panics mid-race, the token is fired so every rival stops,
/// and the panic payload (the lowest-indexed one, if several) is re-raised
/// on the caller once all workers have stopped — a losing strategy's panic
/// is never silently swallowed.
pub fn race(
    strategies: &mut [&mut (dyn SearchStrategy + Send)],
    budget: &SharedBudget,
    cancel: &CancelToken,
) -> PortfolioOutcome {
    let winner = AtomicUsize::new(usize::MAX);
    let at_cancellation = AtomicUsize::new(usize::MAX);
    let panics: Mutex<Vec<(usize, Box<dyn std::any::Any + Send>)>> = Mutex::new(Vec::new());
    let mut slots: Vec<Slot<'_>> = strategies
        .iter_mut()
        .enumerate()
        .map(|(index, strategy)| Slot {
            index,
            strategy: &mut **strategy,
            solution: None,
        })
        .collect();
    slots.par_chunks_mut(1).for_each(|chunk| {
        let slot = &mut chunk[0];
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            if cancel.is_cancelled() {
                break;
            }
            match slot.strategy.step(budget, cancel) {
                StepStatus::Solved(program) => {
                    if winner
                        .compare_exchange(
                            usize::MAX,
                            slot.index,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        // Snapshot before firing so rivals that observe the
                        // token always see the snapshot as well.
                        at_cancellation.store(budget.evaluated(), Ordering::SeqCst);
                        cancel.cancel();
                    }
                    slot.solution = Some(program);
                    break;
                }
                StepStatus::Continue => {}
                StepStatus::Done => break,
            }
        }));
        if let Err(payload) = outcome {
            cancel.cancel();
            panics
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push((slot.index, payload));
        }
    });
    let mut panics = panics
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if !panics.is_empty() {
        panics.sort_by_key(|(index, _)| *index);
        resume_unwind(panics.swap_remove(0).1);
    }
    let reports: Vec<StrategyReport> = slots
        .iter()
        .map(|slot| StrategyReport {
            name: slot.strategy.name().to_string(),
            candidates_evaluated: slot.strategy.candidates_evaluated(),
            solved: slot.solution.is_some(),
        })
        .collect();
    let candidates_evaluated = budget.evaluated();
    let winner_index = winner.load(Ordering::SeqCst);
    let (solution, winner) = match slots.iter_mut().find(|slot| slot.index == winner_index) {
        Some(slot) => (slot.solution.take(), Some(slot.strategy.name().to_string())),
        None => (None, None),
    };
    let evaluated_at_cancellation = match at_cancellation.load(Ordering::SeqCst) {
        usize::MAX => candidates_evaluated,
        snapshot => snapshot,
    };
    PortfolioOutcome {
        solution,
        winner,
        candidates_evaluated,
        evaluated_at_cancellation,
        reports,
    }
}

/// A [`Synthesizer`] racing NetSyn's GA islands against a DFS neighborhood
/// walk and a guided beam search, under one shared budget with
/// first-solution cancellation.
pub struct PortfolioSynthesizer {
    netsyn: NetSyn,
    dfs_seed_count: usize,
    beam: BeamConfig,
    name: String,
}

impl PortfolioSynthesizer {
    /// Wraps a [`NetSyn`] configuration as a racing portfolio.
    #[must_use]
    pub fn new(netsyn: NetSyn) -> Self {
        let name = format!("Portfolio_{}", netsyn.name());
        PortfolioSynthesizer {
            netsyn,
            dfs_seed_count: 4,
            beam: BeamConfig::default(),
            name,
        }
    }

    /// Overrides the display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Overrides the number of random seed programs the DFS strategy walks.
    #[must_use]
    pub fn with_dfs_seed_count(mut self, count: usize) -> Self {
        self.dfs_seed_count = count.max(1);
        self
    }

    /// Overrides the beam width schedule.
    #[must_use]
    pub fn with_beam_config(mut self, beam: BeamConfig) -> Self {
        self.beam = beam;
        self
    }

    /// The beam's guidance map: the fitness function's own probability map
    /// when it has one (the learned FP model), else a map sharpened toward
    /// the oracle target, else uniform over the domain vocabulary.
    fn beam_map(
        &self,
        problem: &SynthesisProblem,
        fitness: &dyn FitnessFunction,
    ) -> ProbabilityMap {
        fitness
            .probability_map(&problem.spec)
            .or_else(|| {
                self.netsyn.oracle_target().map(|target| {
                    ProbabilityMap::from_target_in(problem.domain, target, ORACLE_MAP_FLOOR)
                })
            })
            .unwrap_or_else(|| ProbabilityMap::uniform_for(problem.domain))
    }
}

impl Synthesizer for PortfolioSynthesizer {
    fn name(&self) -> &str {
        &self.name
    }

    fn synthesize(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
    ) -> SynthesisResult {
        self.synthesize_cached(problem, budget, rng, &FitnessCache::new())
    }

    fn synthesize_cached(
        &self,
        problem: &SynthesisProblem,
        budget: &mut SearchBudget,
        rng: &mut dyn RngCore,
        cache: &FitnessCache,
    ) -> SynthesisResult {
        let mut ga_config = self.netsyn.config().ga.clone();
        ga_config.program_length = problem.target_length;
        ga_config.domain = problem.domain;
        let fitness = self.netsyn.build_fitness(&problem.spec);
        let map = self.beam_map(problem, fitness.as_ref());
        let ga_seed = rng.next_u64();
        let dfs_seed = rng.next_u64();
        let seeds = random_seed_programs(&ga_config, &problem.spec, self.dfs_seed_count, dfs_seed);
        let mut ga = GaSearchStrategy::new(&ga_config, &problem.spec, &fitness, cache, ga_seed);
        let mut dfs = DfsSearchStrategy::new(&ga_config, &problem.spec, &fitness, cache, seeds);
        let mut beam = BeamSearch::new(
            &problem.spec,
            problem.domain,
            problem.target_length,
            map,
            self.beam,
        );
        let mut strategies: [&mut (dyn SearchStrategy + Send); 3] = [&mut ga, &mut dfs, &mut beam];
        let shared = SharedBudget::new(budget.remaining());
        let cancel = CancelToken::new();
        let outcome = race(&mut strategies, &shared, &cancel);
        let charged = budget.try_consume_many(outcome.candidates_evaluated);
        debug_assert_eq!(
            charged, outcome.candidates_evaluated,
            "the shared budget was sliced from the master's remainder, so the master \
             must be able to absorb every candidate the race drew"
        );
        SynthesisResult {
            solution: outcome.solution,
            candidates_evaluated: outcome.candidates_evaluated,
            generations: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FitnessChoice, NetSynConfig};
    use netsyn_dsl::{Function, IntPredicate, IoSpec, Value};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn portfolio_solves_the_oracle_smoke_problem_within_budget() {
        let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
        let netsyn = NetSyn::new(config, None).with_oracle_target(target());
        let portfolio = PortfolioSynthesizer::new(netsyn);
        assert_eq!(portfolio.name(), "Portfolio_Oracle_CF");
        let problem = SynthesisProblem::new(spec(), 2);
        let cap = 150_000;
        let mut budget = SearchBudget::new(cap);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let result = portfolio.synthesize(&problem, &mut budget, &mut rng);
        assert!(result.is_success(), "some strategy finds the 2-step target");
        assert!(spec().is_satisfied_by(&result.solution.unwrap()));
        assert!(result.candidates_evaluated <= cap);
        assert_eq!(result.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn empty_race_returns_an_empty_outcome() {
        let budget = SharedBudget::new(100);
        let cancel = CancelToken::new();
        let outcome = race(&mut [], &budget, &cancel);
        assert_eq!(outcome.solution, None);
        assert_eq!(outcome.winner, None);
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(outcome.evaluated_at_cancellation, 0);
        assert!(outcome.reports.is_empty());
    }
}
