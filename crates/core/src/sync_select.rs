//! `cfg(loom)`-switched atomics for the portfolio's winner election.
//!
//! Under `--cfg loom` (the CI `model-check` job) the winner slot and
//! evaluation snapshot run on model-aware atomics, so
//! `tests/portfolio_model.rs` can exhaustively schedule the
//! first-solution-wins election; outside a model run (and in all normal
//! builds) these are the std atomics with identical behavior.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicUsize, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicUsize, Ordering};
