//! Bundles of trained fitness models (CF, LCS, FP) for a program length,
//! with training and disk caching helpers.

use netsyn_dsl::{DomainId, DslError};
use netsyn_fitness::dataset::{
    generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig,
};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::TrainedFitnessModel;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// The three trained fitness networks NetSyn can use for one program length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelBundle {
    /// Program length the bundle was trained for.
    pub program_length: usize,
    /// Common-functions classifier.
    pub cf: TrainedFitnessModel,
    /// Longest-common-subsequence classifier.
    pub lcs: TrainedFitnessModel,
    /// Function-probability (FP) model.
    pub fp: TrainedFitnessModel,
}

/// Configuration of bundle training: corpus size and trainer settings shared
/// by the three models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BundleTrainingConfig {
    /// Corpus generation parameters.
    pub dataset: DatasetConfig,
    /// Training-loop parameters.
    pub trainer: TrainerConfig,
}

impl BundleTrainingConfig {
    /// A small configuration that trains a usable bundle in roughly a minute
    /// of CPU time for length-5 programs. The paper uses 4.2 million training
    /// programs; see EXPERIMENTS.md for the scaling discussion.
    #[must_use]
    pub fn small(program_length: usize) -> Self {
        let mut dataset = DatasetConfig::for_length(program_length);
        dataset.num_target_programs = 150;
        dataset.examples_per_program = 5;
        let mut trainer = TrainerConfig::small();
        trainer.epochs = 4;
        BundleTrainingConfig { dataset, trainer }
    }

    /// A tiny configuration for unit tests (seconds of CPU time).
    #[must_use]
    pub fn tiny(program_length: usize) -> Self {
        let mut config = BundleTrainingConfig::small(program_length);
        config.dataset.num_target_programs = 10;
        config.dataset.examples_per_program = 2;
        config.trainer.epochs = 1;
        config.trainer.net = netsyn_fitness::FitnessNetConfig {
            value_embed_dim: 4,
            encoder_hidden_dim: 6,
            function_embed_dim: 4,
            trace_hidden_dim: 6,
            example_hidden_dim: 8,
            head_hidden_dim: 8,
            output_dim: 1,
        };
        config
    }

    /// Retargets corpus generation and token encoding at `domain`, keeping
    /// the two in sync (a bundle trained on one domain's vocabulary is only
    /// meaningful for specs and candidates from that same domain).
    #[must_use]
    pub fn for_domain(mut self, domain: DomainId) -> Self {
        self.dataset.generator.domain = domain;
        self.dataset.generator.input_types = domain.default_input_types().to_vec();
        self.trainer.encoding = netsyn_fitness::EncodingConfig::for_domain(domain);
        self
    }
}

impl ModelBundle {
    /// Trains CF, LCS and FP models from freshly generated corpora.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::GenerationExhausted`] if corpus generation fails.
    pub fn train<R: Rng + ?Sized>(
        config: &BundleTrainingConfig,
        rng: &mut R,
    ) -> Result<Self, DslError> {
        let length = config.dataset.program_length;
        let cf_samples = generate_dataset(&config.dataset, BalanceMetric::CommonFunctions, rng)?;
        let cf = train_fitness_model(
            FitnessModelKind::CommonFunctions,
            &cf_samples,
            length,
            &config.trainer,
            rng,
        );
        let lcs_samples = generate_dataset(
            &config.dataset,
            BalanceMetric::LongestCommonSubsequence,
            rng,
        )?;
        let lcs = train_fitness_model(
            FitnessModelKind::LongestCommonSubsequence,
            &lcs_samples,
            length,
            &config.trainer,
            rng,
        );
        let mut fp_dataset = config.dataset.clone();
        // The FP corpus needs only one sample per target; reuse the same
        // number of targets as the classifiers for comparable coverage.
        fp_dataset.num_target_programs = config.dataset.num_target_programs
            * (config.dataset.program_length + 1)
            * config.dataset.candidates_per_value;
        let fp_samples = generate_fp_dataset(&fp_dataset, rng)?;
        let fp = train_fitness_model(
            FitnessModelKind::FunctionProbability,
            &fp_samples,
            length,
            &config.trainer,
            rng,
        );
        Ok(ModelBundle {
            program_length: length,
            cf,
            lcs,
            fp,
        })
    }

    /// Serializes the bundle to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a bundle previously written with [`ModelBundle::save_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load_json<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }

    /// Loads the bundle from `path` if it exists and parses, otherwise trains
    /// a new one with `config` and saves it to `path`.
    ///
    /// A cached file that no longer parses (for example one written by an
    /// older build with a different bundle schema) is treated as absent: the
    /// bundle is retrained from `rng` and the stale file is overwritten, so a
    /// schema change never wedges a cache directory.
    ///
    /// # Errors
    ///
    /// Returns an error if training or file IO fails.
    pub fn load_or_train<P: AsRef<Path>, R: Rng + ?Sized>(
        path: P,
        config: &BundleTrainingConfig,
        rng: &mut R,
    ) -> std::io::Result<Self> {
        let path = path.as_ref();
        if path.exists() {
            match Self::load_json(path) {
                Ok(bundle) => return Ok(bundle),
                Err(err) => {
                    eprintln!(
                        "netsyn: cached model bundle {} is unreadable ({err}); retraining",
                        path.display()
                    );
                }
            }
        }
        let bundle = Self::train(config, rng).map_err(std::io::Error::other)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        bundle.save_json(path)?;
        Ok(bundle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn trains_a_tiny_bundle() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let bundle = ModelBundle::train(&BundleTrainingConfig::tiny(3), &mut rng).unwrap();
        assert_eq!(bundle.program_length, 3);
        assert_eq!(bundle.cf.kind, FitnessModelKind::CommonFunctions);
        assert_eq!(bundle.lcs.kind, FitnessModelKind::LongestCommonSubsequence);
        assert_eq!(bundle.fp.kind, FitnessModelKind::FunctionProbability);
        assert_eq!(bundle.cf.net.output_dim(), 4);
        assert_eq!(bundle.fp.net.output_dim(), 41);
    }

    #[test]
    fn load_or_train_round_trips_through_disk() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let dir = std::env::temp_dir().join("netsyn_core_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle_len3.json");
        std::fs::remove_file(&path).ok();
        let config = BundleTrainingConfig::tiny(3);
        let trained = ModelBundle::load_or_train(&path, &config, &mut rng).unwrap();
        assert!(path.exists());
        let loaded = ModelBundle::load_or_train(&path, &config, &mut rng).unwrap();
        // Network weights are f32 and round-trip exactly through JSON; the
        // f64 training-history statistics may lose their last digit, so the
        // comparison is on the models themselves.
        assert_eq!(trained.program_length, loaded.program_length);
        assert_eq!(trained.cf.net, loaded.cf.net);
        assert_eq!(trained.lcs.net, loaded.lcs.net);
        assert_eq!(trained.fp.net, loaded.fp.net);
        assert_eq!(trained.fp.kind, loaded.fp.kind);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_or_train_retrains_over_a_stale_bundle_file() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let dir = std::env::temp_dir().join("netsyn_core_stale_bundle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle_len2.json");
        std::fs::write(&path, r#"{"schema": "from an older build"}"#).unwrap();
        let config = BundleTrainingConfig::tiny(2);
        let bundle = ModelBundle::load_or_train(&path, &config, &mut rng).unwrap();
        assert_eq!(bundle.program_length, 2);
        // The stale file was overwritten with a parseable bundle.
        let reloaded = ModelBundle::load_json(&path).unwrap();
        assert_eq!(reloaded.program_length, 2);
        std::fs::remove_file(&path).ok();
    }
}
