//! NetSyn configuration: which fitness function drives the genetic
//! algorithm, and the GA hyper-parameters.

use netsyn_ga::GaConfig;
use serde::{Deserialize, Serialize};

/// The fitness function a NetSyn instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FitnessChoice {
    /// Learned neural predictor of the number of common functions
    /// (`NetSyn_CF`).
    NeuralCommonFunctions,
    /// Learned neural predictor of the longest common subsequence
    /// (`NetSyn_LCS`).
    NeuralLongestCommonSubsequence,
    /// Learned per-function probability map (`NetSyn_FP`).
    NeuralFunctionProbability,
    /// Hand-crafted output edit-distance fitness (`f_Edit`).
    EditDistance,
    /// Oracle CF fitness (requires the hidden target program).
    OracleCommonFunctions,
    /// Oracle LCS fitness (requires the hidden target program).
    OracleLongestCommonSubsequence,
}

impl FitnessChoice {
    /// Display label used in reports, matching the paper's naming.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FitnessChoice::NeuralCommonFunctions => "NetSyn_CF",
            FitnessChoice::NeuralLongestCommonSubsequence => "NetSyn_LCS",
            FitnessChoice::NeuralFunctionProbability => "NetSyn_FP",
            FitnessChoice::EditDistance => "Edit",
            FitnessChoice::OracleCommonFunctions => "Oracle_CF",
            FitnessChoice::OracleLongestCommonSubsequence => "Oracle_LCS",
        }
    }

    /// Whether this choice requires a trained neural model.
    #[must_use]
    pub fn needs_model(self) -> bool {
        matches!(
            self,
            FitnessChoice::NeuralCommonFunctions
                | FitnessChoice::NeuralLongestCommonSubsequence
                | FitnessChoice::NeuralFunctionProbability
        )
    }

    /// Whether this choice requires knowledge of the hidden target program.
    #[must_use]
    pub fn needs_oracle_target(self) -> bool {
        matches!(
            self,
            FitnessChoice::OracleCommonFunctions | FitnessChoice::OracleLongestCommonSubsequence
        )
    }
}

impl std::fmt::Display for FitnessChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Full configuration of a NetSyn synthesizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetSynConfig {
    /// Which fitness function drives the search.
    pub fitness: FitnessChoice,
    /// Genetic-algorithm hyper-parameters (population, rates, neighborhood
    /// search, mutation mode, generation cap).
    pub ga: GaConfig,
}

impl NetSynConfig {
    /// The paper's default NetSyn configuration for a given fitness choice
    /// and program length: GA defaults from Appendix B, BFS neighborhood
    /// search and FP-guided mutation.
    #[must_use]
    pub fn paper_defaults(fitness: FitnessChoice, program_length: usize) -> Self {
        let mut ga = GaConfig::paper_defaults(program_length);
        ga.mutation_mode = netsyn_ga::MutationMode::ProbabilityGuided;
        NetSynConfig { fitness, ga }
    }

    /// A scaled-down configuration for tests and examples.
    #[must_use]
    pub fn small(fitness: FitnessChoice, program_length: usize) -> Self {
        NetSynConfig {
            fitness,
            ga: GaConfig::small(program_length),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(FitnessChoice::NeuralCommonFunctions.label(), "NetSyn_CF");
        assert_eq!(
            FitnessChoice::NeuralLongestCommonSubsequence.to_string(),
            "NetSyn_LCS"
        );
        assert_eq!(
            FitnessChoice::NeuralFunctionProbability.label(),
            "NetSyn_FP"
        );
        assert_eq!(FitnessChoice::EditDistance.label(), "Edit");
        assert_eq!(FitnessChoice::OracleCommonFunctions.label(), "Oracle_CF");
    }

    #[test]
    fn model_and_oracle_requirements() {
        assert!(FitnessChoice::NeuralCommonFunctions.needs_model());
        assert!(FitnessChoice::NeuralFunctionProbability.needs_model());
        assert!(!FitnessChoice::EditDistance.needs_model());
        assert!(!FitnessChoice::OracleCommonFunctions.needs_model());
        assert!(FitnessChoice::OracleLongestCommonSubsequence.needs_oracle_target());
        assert!(!FitnessChoice::NeuralCommonFunctions.needs_oracle_target());
    }

    #[test]
    fn paper_defaults_use_guided_mutation_and_bfs() {
        let config = NetSynConfig::paper_defaults(FitnessChoice::NeuralCommonFunctions, 5);
        assert_eq!(
            config.ga.mutation_mode,
            netsyn_ga::MutationMode::ProbabilityGuided
        );
        assert_eq!(config.ga.neighborhood, netsyn_ga::NeighborhoodStrategy::Bfs);
        assert_eq!(config.ga.population_size, 100);
    }

    #[test]
    fn serde_round_trip() {
        let config = NetSynConfig::small(FitnessChoice::EditDistance, 7);
        let json = serde_json::to_string(&config).unwrap();
        let back: NetSynConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }
}
