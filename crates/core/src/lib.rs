//! # netsyn-core
//!
//! NetSyn — genetic-algorithm program synthesis with *learned* fitness
//! functions — as described in "Learning Fitness Functions for Machine
//! Programming" (MLSys 2021), together with the evaluation harness that
//! regenerates the paper's tables and figures.
//!
//! The crate wires together the workspace's substrates:
//!
//! * [`netsyn_dsl`] — the list DSL, interpreter and program generators;
//! * [`netsyn_nn`] / [`netsyn_fitness`] — the learned CF / LCS / FP fitness
//!   functions and their training pipeline;
//! * [`netsyn_ga`] — the genetic algorithm with FP-guided mutation and
//!   restricted local neighborhood search;
//! * [`netsyn_baselines`] — DeepCoder, PCCoder, RobustFill and PushGP on the
//!   same DSL and budget accounting.
//!
//! The central type is [`NetSyn`], which implements the shared
//! [`Synthesizer`](netsyn_baselines::Synthesizer) trait. The [`evaluation`]
//! module runs any set of synthesizers over a generated [`TestSuite`] and
//! aggregates the paper's metrics.
//!
//! ## Example
//!
//! ```
//! use netsyn_core::{FitnessChoice, NetSyn, NetSynConfig};
//! use netsyn_baselines::{SynthesisProblem, Synthesizer};
//! use netsyn_dsl::{IoSpec, Program, Value};
//! use netsyn_ga::SearchBudget;
//! use rand::SeedableRng;
//!
//! // Hidden target: keep the positive values and sort them.
//! let target: Program = "FILTER(>0), SORT".parse()?;
//! let spec = IoSpec::from_program(&target, &[
//!     vec![Value::List(vec![3, -1, 7, 0, 2])],
//!     vec![Value::List(vec![-4, 9, 1])],
//!     vec![Value::List(vec![5, 5, -2, 8])],
//! ]);
//!
//! // The oracle configuration needs no trained models.
//! let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
//! let netsyn = NetSyn::new(config, None).with_oracle_target(target);
//! let mut budget = SearchBudget::new(100_000);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let result = netsyn.synthesize(&SynthesisProblem::new(spec.clone(), 2), &mut budget, &mut rng);
//! assert!(result.is_success());
//! assert!(spec.is_satisfied_by(&result.solution.unwrap()));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod config;
pub mod evaluation;
mod models;
pub mod portfolio;
pub mod report;
mod suite;
pub(crate) mod sync_select;
mod synthesizer;

pub use config::{FitnessChoice, NetSynConfig};
pub use evaluation::{evaluate_method, MethodEvaluation, MethodSpec, MethodSummary, RunRecord};
pub use models::{BundleTrainingConfig, ModelBundle};
pub use portfolio::{race, PortfolioOutcome, PortfolioSynthesizer, StrategyReport};
pub use report::Table;
pub use suite::{SuiteConfig, TestSuite};
pub use synthesizer::NetSyn;

/// Convenience re-exports for downstream binaries and examples.
pub mod prelude {
    pub use crate::{
        evaluate_method, BundleTrainingConfig, FitnessChoice, MethodEvaluation, MethodSpec,
        ModelBundle, NetSyn, NetSynConfig, PortfolioSynthesizer, SuiteConfig, Table, TestSuite,
    };
    pub use netsyn_baselines::{
        DeepCoder, PcCoder, PushGp, RobustFill, SynthesisProblem, SynthesisResult, Synthesizer,
        UniformGuidance,
    };
    pub use netsyn_dsl::{Function, IoSpec, Program, ProgramKind, SynthesisTask, Value};
    pub use netsyn_fitness::{
        ClosenessMetric, EditDistanceFitness, FitnessCache, FitnessFunction,
        LearnedProbabilityModel, OracleFitness, ProbabilityMap,
    };
    pub use netsyn_ga::{
        GaConfig, GeneticEngine, MutationMode, NeighborhoodStrategy, SearchBudget,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NetSyn>();
        assert_send_sync::<ModelBundle>();
        assert_send_sync::<TestSuite>();
        assert_send_sync::<MethodEvaluation>();
    }
}
