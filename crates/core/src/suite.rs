//! Evaluation-suite generation.
//!
//! The paper evaluates on 100 randomly generated programs per length (5, 7
//! and 10): 50 producing a singleton integer and 50 producing a list, each
//! with `m = 5` input-output examples.

use netsyn_dsl::{DomainId, DslError, Generator, GeneratorConfig, ProgramKind, SynthesisTask};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of evaluation-suite generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Program length of every task in the suite.
    pub program_length: usize,
    /// Number of singleton-output tasks.
    pub singleton_tasks: usize,
    /// Number of list-output tasks.
    pub list_tasks: usize,
    /// Input-output examples per task (`m`).
    pub examples_per_task: usize,
    /// Random generation parameters.
    pub generator: GeneratorConfig,
}

impl SuiteConfig {
    /// The paper's suite for a given length: 50 singleton + 50 list programs,
    /// 5 examples each.
    #[must_use]
    pub fn paper(program_length: usize) -> Self {
        SuiteConfig {
            program_length,
            singleton_tasks: 50,
            list_tasks: 50,
            examples_per_task: 5,
            generator: GeneratorConfig::for_length(program_length),
        }
    }

    /// A scaled-down suite for quick experiments.
    #[must_use]
    pub fn small(program_length: usize, tasks_per_kind: usize) -> Self {
        SuiteConfig {
            singleton_tasks: tasks_per_kind,
            list_tasks: tasks_per_kind,
            ..SuiteConfig::paper(program_length)
        }
    }

    /// The paper-shaped suite drawn from an explicit operator-vocabulary
    /// domain instead of the default list DSL.
    #[must_use]
    pub fn for_domain(domain: DomainId, program_length: usize) -> Self {
        SuiteConfig {
            generator: GeneratorConfig::for_domain(domain, program_length),
            ..SuiteConfig::paper(program_length)
        }
    }
}

/// An evaluation suite: a list of synthesis tasks with known hidden targets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TestSuite {
    /// Program length shared by all tasks.
    pub program_length: usize,
    /// The operator-vocabulary domain every task's target is drawn from.
    pub domain: DomainId,
    /// The tasks, singleton-output tasks first.
    pub tasks: Vec<SynthesisTask>,
}

impl TestSuite {
    /// Generates a suite according to `config`.
    ///
    /// # Errors
    ///
    /// Returns [`DslError::GenerationExhausted`] if program generation cannot
    /// satisfy the constraints.
    pub fn generate<R: Rng + ?Sized>(config: &SuiteConfig, rng: &mut R) -> Result<Self, DslError> {
        let mut tasks = Vec::with_capacity(config.singleton_tasks + config.list_tasks);
        for (kind, count) in [
            (ProgramKind::Singleton, config.singleton_tasks),
            (ProgramKind::List, config.list_tasks),
        ] {
            let mut generator_config = config.generator.clone();
            generator_config.program_length = config.program_length;
            generator_config.required_kind = Some(kind);
            let generator = Generator::new(generator_config);
            for _ in 0..count {
                tasks.push(generator.task(config.examples_per_task, rng)?);
            }
        }
        Ok(TestSuite {
            program_length: config.program_length,
            domain: config.generator.domain,
            tasks,
        })
    }

    /// Number of tasks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the suite is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Tasks of the given output kind.
    #[must_use]
    pub fn tasks_of_kind(&self, kind: ProgramKind) -> Vec<&SynthesisTask> {
        self.tasks
            .iter()
            .filter(|t| t.kind() == Some(kind))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn generates_the_requested_split() {
        let config = SuiteConfig::small(4, 3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let suite = TestSuite::generate(&config, &mut rng).unwrap();
        assert_eq!(suite.len(), 6);
        assert!(!suite.is_empty());
        assert_eq!(suite.tasks_of_kind(ProgramKind::Singleton).len(), 3);
        assert_eq!(suite.tasks_of_kind(ProgramKind::List).len(), 3);
        for task in &suite.tasks {
            assert_eq!(task.target_length(), 4);
            assert_eq!(task.spec.len(), 5);
            assert!(task.spec.is_satisfied_by(&task.target));
        }
    }

    #[test]
    fn paper_config_sizes() {
        let config = SuiteConfig::paper(5);
        assert_eq!(config.singleton_tasks, 50);
        assert_eq!(config.list_tasks, 50);
        assert_eq!(config.examples_per_task, 5);
    }

    #[test]
    fn string_domain_suite_generates_both_kinds() {
        let mut config = SuiteConfig::for_domain(DomainId::Str, 3);
        config.singleton_tasks = 2;
        config.list_tasks = 2;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let suite = TestSuite::generate(&config, &mut rng).unwrap();
        assert_eq!(suite.domain, DomainId::Str);
        assert_eq!(suite.len(), 4);
        assert_eq!(suite.tasks_of_kind(ProgramKind::Singleton).len(), 2);
        assert_eq!(suite.tasks_of_kind(ProgramKind::List).len(), 2);
        for task in &suite.tasks {
            for function in task.target.functions() {
                assert!(DomainId::Str.vocab().contains(function));
            }
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let config = SuiteConfig::small(5, 2);
        let a = TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        let b = TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(9)).unwrap();
        assert_eq!(a, b);
    }
}
