//! The evaluation harness: runs synthesizers over a test suite with a shared
//! candidate budget and aggregates the statistics the paper reports (search
//! space used, synthesis time, synthesis-rate distributions, per-kind and
//! per-function rates, and ablation summaries).

use crate::suite::TestSuite;
use netsyn_baselines::{SynthesisProblem, Synthesizer};
use netsyn_dsl::{Function, ProgramKind, SynthesisTask};
use netsyn_fitness::FitnessCache;
use netsyn_ga::SearchBudget;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// One synthesis attempt (one task, one repetition).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Index of the task in the suite.
    pub task_index: usize,
    /// Repetition index (`0..runs_per_task`).
    pub run_index: usize,
    /// Whether a program satisfying the specification was found.
    pub success: bool,
    /// Candidate programs evaluated during the attempt.
    pub candidates_evaluated: usize,
    /// Wall-clock duration of the attempt in seconds.
    pub wall_time_secs: f64,
    /// GA generations used (for generation-based approaches).
    pub generations: Option<usize>,
}

/// Builds one synthesizer for a given task.
pub type SynthesizerFactory<'a> = Box<dyn Fn(&SynthesisTask) -> Box<dyn Synthesizer> + Sync + 'a>;

/// A factory producing one synthesizer per task, so that oracle-based
/// configurations can be given the task's hidden target.
pub struct MethodSpec<'a> {
    /// Display name of the method (used in reports).
    pub name: String,
    /// Builds the synthesizer for a task.
    pub factory: SynthesizerFactory<'a>,
}

impl<'a> MethodSpec<'a> {
    /// Creates a method specification.
    #[must_use]
    pub fn new<F>(name: impl Into<String>, factory: F) -> Self
    where
        F: Fn(&SynthesisTask) -> Box<dyn Synthesizer> + Sync + 'a,
    {
        MethodSpec {
            name: name.into(),
            factory: Box::new(factory),
        }
    }
}

/// All runs of one method over a suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodEvaluation {
    /// Method display name.
    pub method: String,
    /// Candidate cap per attempt.
    pub budget_cap: usize,
    /// Repetitions per task (`K`).
    pub runs_per_task: usize,
    /// Number of tasks in the suite.
    pub task_count: usize,
    /// One record per (task, repetition).
    pub records: Vec<RunRecord>,
}

/// Runs `method` on every task of `suite`, `runs_per_task` times each, with a
/// fresh budget of `budget_cap` candidates per attempt. Attempts run in
/// parallel; each attempt gets a deterministic RNG derived from `base_seed`,
/// the task index and the repetition index.
///
/// Every repetition of a task shares one spec-keyed [`FitnessCache`]
/// (`netsyn_fitness::FitnessCache`): fitness scores are pure, bit-identical
/// functions of `(candidate, spec)`, so a candidate scored in run 0 is never
/// re-scored in runs `1..K` — the repeated-measurement design of the paper's
/// evaluation gets the cross-generation cache for free, without changing any
/// per-run search trajectory. The same handle carries the per-model
/// trace-value encoding shards (`FitnessCache::trace_shard`): trace values
/// encoded by any generation of any repetition are served from the memo in
/// every later batched scoring call — including the DFS neighborhood
/// search — instead of re-running the step encoder.
///
/// This fan-out is the workload the work-stealing pool is built for: the
/// task×run attempts run genuinely concurrently (`NETSYN_POOL_THREADS`
/// controls the pool; see the `rayon` shim docs), each attempt's batched
/// scoring calls nest into the pooled NN kernels and parallelize instead of
/// running inline, and repetitions of one task share their cache shard
/// safely — under the striped `SpecScores` claim protocol, concurrent
/// attempts wait for each other's bit-identical value rather than
/// recompute it (duplicated scoring survives only in the rare
/// stolen-job-on-a-claimant's-stack collision, where blocking could
/// deadlock — see `netsyn_fitness::cache::resolve_score`), so results and
/// per-run trajectories are independent of the thread count.
///
/// Setting `NETSYN_CACHE_DIR` makes the cache **durable**: scores and trace
/// encodings persisted by earlier processes are loaded at startup (warm
/// start), new ones are flushed back periodically and at the end of the
/// evaluation, and a restarted harness reproduces byte-identical search
/// trajectories from disk. Durability is strictly opt-in and fails toward
/// cold — an unreadable directory or damaged log degrades to the in-memory
/// behavior above with a warning, never to wrong scores. Shards embed the
/// fitness model's weight fingerprint, so one directory can safely serve
/// different checkpoints and methods.
#[must_use]
pub fn evaluate_method(
    method: &MethodSpec<'_>,
    suite: &TestSuite,
    budget_cap: usize,
    runs_per_task: usize,
    base_seed: u64,
) -> MethodEvaluation {
    let durable = durable_cache_from_env();
    let caches: Vec<FitnessCache> = (0..suite.tasks.len())
        .map(|_| FitnessCache::new())
        .collect();
    let pairs: Vec<(usize, usize)> = (0..suite.tasks.len())
        .flat_map(|task| (0..runs_per_task).map(move |run| (task, run)))
        .collect();
    let records: Vec<RunRecord> = pairs
        .par_iter()
        .map(|&(task_index, run_index)| {
            let task = &suite.tasks[task_index];
            let synthesizer = (method.factory)(task);
            let problem = SynthesisProblem::with_domain(
                task.spec.clone(),
                task.target_length(),
                suite.domain,
            );
            let mut budget = SearchBudget::new(budget_cap);
            let mut rng = ChaCha8Rng::seed_from_u64(
                base_seed
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add((task_index as u64) << 20)
                    .wrapping_add(run_index as u64),
            );
            // One durable cache serves every task (shards are keyed by
            // model fingerprint + spec, so tasks never alias); otherwise
            // each task keeps its own in-memory cache.
            let cache = durable.as_ref().unwrap_or(&caches[task_index]);
            // netsyn-lint: allow(wall-clock) — wall-time is reported in RunRecord only; it never feeds search decisions or serialized comparisons
            let start = Instant::now();
            let result = synthesizer.synthesize_cached(&problem, &mut budget, &mut rng, cache);
            let wall_time_secs = start.elapsed().as_secs_f64();
            RunRecord {
                task_index,
                run_index,
                success: result.is_success(),
                candidates_evaluated: result.candidates_evaluated,
                wall_time_secs,
                generations: result.generations,
            }
        })
        .collect();
    if let Some(cache) = &durable {
        // Final synchronous flush so a clean exit persists everything the
        // periodic background flushes did not reach.
        let _ = cache.flush();
    }
    MethodEvaluation {
        method: method.name.clone(),
        budget_cap,
        runs_per_task,
        task_count: suite.tasks.len(),
        records,
    }
}

/// Opens the durable fitness cache named by the `NETSYN_CACHE_DIR`
/// environment variable, or `None` when the variable is unset or the
/// directory cannot be created (a warning is printed and the evaluation
/// proceeds with in-memory caches — durability never gates correctness).
fn durable_cache_from_env() -> Option<FitnessCache> {
    let dir = std::env::var_os(netsyn_fitness::persist::CACHE_DIR_ENV)?;
    match FitnessCache::durable(&dir) {
        Ok(cache) => {
            if let Some(report) = cache.load_report() {
                eprintln!(
                    "netsyn: durable cache at {}: {} score entries, {} trace entries loaded",
                    std::path::Path::new(&dir).display(),
                    report.score_entries,
                    report.trace_entries,
                );
            }
            Some(cache)
        }
        Err(err) => {
            eprintln!(
                "netsyn: cannot open cache directory {}: {err}; continuing without durability",
                std::path::Path::new(&dir).display(),
            );
            None
        }
    }
}

/// A Table 2 style summary row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MethodSummary {
    /// Method display name.
    pub method: String,
    /// Number of tasks synthesized in at least one repetition.
    pub programs_synthesized: usize,
    /// Average GA generations over successful attempts.
    pub avg_generations: f64,
    /// Average per-task synthesis rate (percentage of repetitions that
    /// succeed), over all tasks.
    pub avg_synthesis_rate_percent: f64,
}

impl MethodEvaluation {
    fn task_records(&self, task_index: usize) -> impl Iterator<Item = &RunRecord> {
        self.records
            .iter()
            .filter(move |r| r.task_index == task_index)
    }

    /// Per-task synthesis rate: the fraction of repetitions that succeeded
    /// (the data behind the violin plots of Figure 4(d)–(f)).
    #[must_use]
    pub fn per_task_synthesis_rate(&self) -> Vec<f64> {
        (0..self.task_count)
            .map(|task| {
                let records: Vec<&RunRecord> = self.task_records(task).collect();
                if records.is_empty() {
                    return 0.0;
                }
                records.iter().filter(|r| r.success).count() as f64 / records.len() as f64
            })
            .collect()
    }

    /// Whether each task was synthesized in at least one repetition.
    #[must_use]
    pub fn per_task_synthesized(&self) -> Vec<bool> {
        (0..self.task_count)
            .map(|task| self.task_records(task).any(|r| r.success))
            .collect()
    }

    /// Per-task mean value of `extract` over *successful* repetitions
    /// (`None` for tasks never synthesized).
    fn per_task_mean<F: Fn(&RunRecord) -> f64>(&self, extract: F) -> Vec<Option<f64>> {
        (0..self.task_count)
            .map(|task| {
                let values: Vec<f64> = self
                    .task_records(task)
                    .filter(|r| r.success)
                    .map(&extract)
                    .collect();
                if values.is_empty() {
                    None
                } else {
                    Some(values.iter().sum::<f64>() / values.len() as f64)
                }
            })
            .collect()
    }

    /// Per-task mean search-space use (fraction of the budget cap) over
    /// successful repetitions.
    #[must_use]
    pub fn per_task_search_fraction(&self) -> Vec<Option<f64>> {
        let cap = self.budget_cap.max(1) as f64;
        self.per_task_mean(|r| r.candidates_evaluated as f64 / cap)
    }

    /// Per-task mean synthesis time in seconds over successful repetitions.
    #[must_use]
    pub fn per_task_time_secs(&self) -> Vec<Option<f64>> {
        self.per_task_mean(|r| r.wall_time_secs)
    }

    /// Fraction of tasks synthesized in at least one repetition.
    #[must_use]
    pub fn percent_synthesized(&self) -> f64 {
        if self.task_count == 0 {
            return 0.0;
        }
        self.per_task_synthesized().iter().filter(|&&s| s).count() as f64 / self.task_count as f64
    }

    /// The sorted per-task curve behind Figure 4(a)–(c) / (g)–(i): entry `i`
    /// is the cost (search fraction or seconds) of the `i`-th cheapest
    /// synthesized task; the curve terminates where tasks stop being
    /// synthesized.
    #[must_use]
    pub fn sorted_cost_curve(&self, costs: &[Option<f64>]) -> Vec<f64> {
        let mut values: Vec<f64> = costs.iter().filter_map(|c| *c).collect();
        // total_cmp: a NaN cost takes a deterministic extreme position
        // (positive NaN after +inf, negative before -inf) instead of
        // nondeterministically interleaving with real costs.
        values.sort_by(f64::total_cmp);
        values
    }

    /// Decile summary of a per-task cost vector: for each decile `d` (10%,
    /// 20%, …, 100% of the suite), the cost needed to synthesize that
    /// fraction of tasks, or `None` when the method never synthesized that
    /// many tasks (the dashes in Tables 3 and 4).
    #[must_use]
    pub fn deciles(&self, costs: &[Option<f64>]) -> Vec<Option<f64>> {
        let sorted = self.sorted_cost_curve(costs);
        (1..=10)
            .map(|decile| {
                let needed = (decile as f64 / 10.0 * self.task_count as f64).ceil() as usize;
                if needed == 0 || needed > sorted.len() {
                    None
                } else {
                    Some(sorted[needed - 1])
                }
            })
            .collect()
    }

    /// Search-space deciles (Table 4 row, as fractions of the cap).
    #[must_use]
    pub fn search_space_deciles(&self) -> Vec<Option<f64>> {
        self.deciles(&self.per_task_search_fraction())
    }

    /// Synthesis-time deciles in seconds (Table 3 row).
    #[must_use]
    pub fn time_deciles(&self) -> Vec<Option<f64>> {
        self.deciles(&self.per_task_time_secs())
    }

    /// Synthesis rate split by program kind (Figure 5): the average per-task
    /// synthesis rate over singleton tasks and over list tasks.
    #[must_use]
    pub fn rate_by_kind(&self, suite: &TestSuite) -> (f64, f64) {
        let rates = self.per_task_synthesis_rate();
        let mut singleton = Vec::new();
        let mut list = Vec::new();
        for (task, rate) in suite.tasks.iter().zip(rates.iter()) {
            match task.kind() {
                Some(ProgramKind::Singleton) => singleton.push(*rate),
                Some(ProgramKind::List) => list.push(*rate),
                None => {}
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        (mean(&singleton), mean(&list))
    }

    /// Average synthesis rate of tasks containing each function of the
    /// suite's domain vocabulary (Figure 6). Functions that appear in no task
    /// report `None`.
    #[must_use]
    pub fn rate_by_function(&self, suite: &TestSuite) -> Vec<(Function, Option<f64>)> {
        let rates = self.per_task_synthesis_rate();
        suite
            .domain
            .vocab()
            .iter()
            .map(|&function| {
                let task_rates: Vec<f64> = suite
                    .tasks
                    .iter()
                    .zip(rates.iter())
                    .filter(|(task, _)| task.target.functions().contains(&function))
                    .map(|(_, rate)| *rate)
                    .collect();
                let value = if task_rates.is_empty() {
                    None
                } else {
                    Some(task_rates.iter().sum::<f64>() / task_rates.len() as f64)
                };
                (function, value)
            })
            .collect()
    }

    /// Table 2 style summary: programs synthesized, average generations of
    /// successful attempts, and average synthesis rate.
    #[must_use]
    pub fn summary(&self) -> MethodSummary {
        let successful_generations: Vec<f64> = self
            .records
            .iter()
            .filter(|r| r.success)
            .filter_map(|r| r.generations.map(|g| g as f64))
            .collect();
        let avg_generations = if successful_generations.is_empty() {
            0.0
        } else {
            successful_generations.iter().sum::<f64>() / successful_generations.len() as f64
        };
        let rates = self.per_task_synthesis_rate();
        let avg_rate = if rates.is_empty() {
            0.0
        } else {
            rates.iter().sum::<f64>() / rates.len() as f64
        };
        MethodSummary {
            method: self.method.clone(),
            programs_synthesized: self.per_task_synthesized().iter().filter(|&&s| s).count(),
            avg_generations,
            avg_synthesis_rate_percent: avg_rate * 100.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{FitnessChoice, NetSynConfig};
    use crate::suite::SuiteConfig;
    use crate::synthesizer::NetSyn;
    use netsyn_baselines::SynthesisResult;
    use netsyn_dsl::Program;
    use rand::RngCore;

    fn tiny_suite(length: usize, per_kind: usize) -> TestSuite {
        let config = SuiteConfig::small(length, per_kind);
        TestSuite::generate(&config, &mut ChaCha8Rng::seed_from_u64(11)).unwrap()
    }

    #[test]
    fn evaluate_oracle_netsyn_on_a_tiny_suite() {
        let suite = tiny_suite(2, 2);
        let method = MethodSpec::new("Oracle_CF", |task: &SynthesisTask| {
            let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
            Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
                as Box<dyn Synthesizer>
        });
        let evaluation = evaluate_method(&method, &suite, 50_000, 2, 7);
        assert_eq!(evaluation.records.len(), suite.len() * 2);
        assert_eq!(evaluation.task_count, suite.len());
        // The oracle fitness on length-2 programs should synthesize most of
        // the suite.
        assert!(evaluation.percent_synthesized() >= 0.5);
        let summary = evaluation.summary();
        assert_eq!(summary.method, "Oracle_CF");
        assert!(summary.programs_synthesized >= suite.len() / 2);
        assert!(summary.avg_synthesis_rate_percent > 0.0);
        // Aggregations have the right shapes.
        assert_eq!(evaluation.per_task_synthesis_rate().len(), suite.len());
        assert_eq!(evaluation.search_space_deciles().len(), 10);
        assert_eq!(evaluation.time_deciles().len(), 10);
        let (singleton_rate, list_rate) = evaluation.rate_by_kind(&suite);
        assert!((0.0..=1.0).contains(&singleton_rate));
        assert!((0.0..=1.0).contains(&list_rate));
        assert_eq!(evaluation.rate_by_function(&suite).len(), 41);
    }

    #[test]
    fn evaluation_is_deterministic_up_to_timing() {
        let suite = tiny_suite(2, 1);
        let make_method = || {
            MethodSpec::new("Oracle_CF", |task: &SynthesisTask| {
                let config = NetSynConfig::small(FitnessChoice::OracleCommonFunctions, 2);
                Box::new(NetSyn::new(config, None).with_oracle_target(task.target.clone()))
                    as Box<dyn Synthesizer>
            })
        };
        let a = evaluate_method(&make_method(), &suite, 20_000, 2, 3);
        let b = evaluate_method(&make_method(), &suite, 20_000, 2, 3);
        let strip = |e: &MethodEvaluation| {
            e.records
                .iter()
                .map(|r| (r.task_index, r.run_index, r.success, r.candidates_evaluated))
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn deciles_report_none_past_the_synthesized_fraction() {
        // A fake method that always fails: every decile must be None and the
        // summary must report zero synthesized programs.
        struct AlwaysFails;
        impl Synthesizer for AlwaysFails {
            fn name(&self) -> &str {
                "never"
            }
            fn synthesize(
                &self,
                _problem: &SynthesisProblem,
                budget: &mut SearchBudget,
                _rng: &mut dyn RngCore,
            ) -> SynthesisResult {
                budget.try_consume();
                SynthesisResult::not_found(1)
            }
        }
        let suite = tiny_suite(2, 1);
        let method = MethodSpec::new("never", |_task: &SynthesisTask| {
            Box::new(AlwaysFails) as Box<dyn Synthesizer>
        });
        let evaluation = evaluate_method(&method, &suite, 100, 1, 5);
        assert!(evaluation
            .search_space_deciles()
            .iter()
            .all(Option::is_none));
        assert!(evaluation.time_deciles().iter().all(Option::is_none));
        assert_eq!(evaluation.summary().programs_synthesized, 0);
        assert_eq!(evaluation.percent_synthesized(), 0.0);
        let _ = Program::default();
    }
}
