//! Loom model suite for [`SharedBudget`] and [`CancelToken`].
//!
//! Invariants checked: **the budget cap is never exceeded** however racing
//! strategies interleave their draws — admission is a single CAS loop, so
//! the sum of admitted candidates across threads equals exactly
//! `min(cap, attempts)` — and **a fired cancel token never admits a later
//! draw** in a strategy that checks the token before each draw.
//!
//! The seeded-bug test rebuilds admission as the classic racy
//! read-check-write and asserts the checker finds the cap overshoot.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netsyn-ga --test
//! budget_model --release`.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering};
use netsyn_ga::{CancelToken, SharedBudget};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the model checker expecting a failure; returns the
/// panic message.
fn catches(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(f);
    }));
    let payload = result.expect_err("model checker should have found a failure");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Two strategies draw two candidates each from a cap of three. In every
/// interleaving exactly three draws are admitted and `evaluated` never
/// passes the cap.
#[test]
fn shared_budget_never_exceeds_the_cap() {
    let report = Builder::new().check(|| {
        let budget = SharedBudget::new(3);
        let racer = {
            let budget = budget.clone();
            loom::thread::spawn(move || {
                let mut admitted = 0usize;
                for _ in 0..2 {
                    if budget.try_consume() {
                        admitted += 1;
                    }
                    assert!(budget.evaluated() <= 3, "cap exceeded");
                }
                admitted
            })
        };
        let mut admitted = 0usize;
        for _ in 0..2 {
            if budget.try_consume() {
                admitted += 1;
            }
            assert!(budget.evaluated() <= 3, "cap exceeded");
        }
        admitted += racer.join().unwrap();
        assert_eq!(admitted, 3, "exactly cap-many draws are admitted");
        assert_eq!(budget.evaluated(), 3);
        assert!(budget.is_exhausted());
        assert!(!budget.try_consume());
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// Seeded bug: admission as load → check → store on a shared counter. Two
/// racers through the read-check-write window both admit the last slot —
/// the checker must find the overshoot.
#[test]
fn finds_cap_overshoot_with_racy_read_check_write() {
    let message = catches(|| {
        let evaluated = Arc::new(AtomicUsize::new(0));
        let cap = 1usize;
        let try_consume_buggy = move |evaluated: &AtomicUsize| -> bool {
            // BUG (seeded): non-atomic admission. `SharedBudget` uses a
            // fetch_update CAS loop precisely to close this window.
            let n = evaluated.load(Ordering::SeqCst);
            if n < cap {
                evaluated.store(n + 1, Ordering::SeqCst);
                true
            } else {
                false
            }
        };
        let racer = {
            let evaluated = Arc::clone(&evaluated);
            loom::thread::spawn(move || try_consume_buggy(&evaluated))
        };
        let mine = try_consume_buggy(&evaluated);
        let theirs = racer.join().unwrap();
        let admitted = usize::from(mine) + usize::from(theirs);
        assert!(admitted <= cap, "budget admitted more than the cap");
    });
    assert!(
        message.contains("more than the cap"),
        "expected the overshoot assertion, got: {message}"
    );
}

/// First-solution cancellation: the winner fires the token after its own
/// final draw; a loser that checks the token before *each* draw admits at
/// most one more candidate after the snapshot the winner observed.
#[test]
fn fired_token_admits_at_most_one_inflight_draw() {
    let report = Builder::new().check(|| {
        let budget = SharedBudget::new(10);
        let token = CancelToken::new();
        let winner = {
            let budget = budget.clone();
            let token = token.clone();
            loom::thread::spawn(move || {
                assert!(budget.try_consume());
                let at_cancellation = budget.evaluated();
                token.cancel();
                at_cancellation
            })
        };
        // Loser: token check guards every draw, so at most one draw can
        // be in flight when the token fires.
        let mut drawn_after_check = 0usize;
        for _ in 0..2 {
            if token.is_cancelled() {
                break;
            }
            if budget.try_consume() {
                drawn_after_check += 1;
            }
        }
        let at_cancellation = winner.join().unwrap();
        assert!(
            budget.evaluated() <= at_cancellation + drawn_after_check.min(1) + 1,
            "a checked loser admits at most one draw past the winner's snapshot"
        );
        assert!(token.is_cancelled());
    });
    assert!(report.complete, "schedule space must be fully explored");
}

/// Seeded bug: a loser that only checks the token every second draw. The
/// checker must find the interleaving where two draws land after the
/// token fired — the bound the per-draw check is there to enforce.
#[test]
fn finds_extra_draws_when_token_check_is_amortized() {
    let message = catches(|| {
        let drained = Arc::new(AtomicUsize::new(0));
        let token = CancelToken::new();
        let winner = {
            let token = token.clone();
            loom::thread::spawn(move || {
                token.cancel();
            })
        };
        // BUG (seeded): one token check admits a *batch* of two draws, so
        // both can land after cancellation.
        if !token.is_cancelled() {
            drained.fetch_add(1, Ordering::SeqCst);
            drained.fetch_add(1, Ordering::SeqCst);
        }
        winner.join().unwrap();
        if token.is_cancelled() {
            assert!(
                drained.load(Ordering::SeqCst) <= 1,
                "amortized token check admitted a whole batch after cancel"
            );
        }
    });
    assert!(
        message.contains("after cancel"),
        "expected the batched-draw assertion, got: {message}"
    );
}
