//! Warm-vs-cold determinism of the persistent reuse layers.
//!
//! The encoding/inference caches added under the batched hot path — the
//! cross-generation [`TraceEncodingCache`], the neighborhood search's use of
//! the [`SpecScores`] memo, and the cached weight transposes inside
//! `netsyn_nn` — are all pure memoization of bit-identical computations, so
//! a warm cache must never change a search trajectory. These tests pin that
//! down end to end with a real learned fitness driving the full engine
//! (generation loop + DFS neighborhood search): the [`GaOutcome`] of a warm
//! repeat run is bit-identical to the cold run, down to the serialized
//! bytes of the experiment output.
//!
//! CI runs this file under both `NETSYN_SIMD` modes, so the guarantee holds
//! on the vectorized and the scalar kernels alike.
//!
//! The thread-count determinism matrix extends the contract to the
//! work-stealing pool: the serialized `GaOutcome` must be byte-identical
//! for `NETSYN_POOL_THREADS ∈ {1, 2, 8}` × `NETSYN_SIMD ∈ {0, 1}`. The
//! pool size is fixed at first use per process, so the matrix re-runs this
//! test binary as a subprocess per cell (see
//! `ga_outcome_bytes_identical_across_thread_counts_and_simd_modes`).

use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Program, Value};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{FitnessCache, FitnessFunction, FitnessNetConfig, LearnedFitness};
use netsyn_ga::{GaConfig, GaOutcome, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn target() -> Program {
    Program::new(vec![
        Function::Filter(IntPredicate::Positive),
        Function::Map(MapOp::Mul2),
        Function::Sort,
    ])
}

fn spec() -> IoSpec {
    IoSpec::from_program(
        &target(),
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
        ],
    )
}

fn trained_fitness() -> LearnedFitness {
    let mut r = rng(11);
    let mut dataset_config = DatasetConfig::for_length(3);
    dataset_config.num_target_programs = 6;
    dataset_config.examples_per_program = 2;
    let samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut r).unwrap();
    let mut trainer_config = TrainerConfig::small();
    trainer_config.net = FitnessNetConfig {
        value_embed_dim: 4,
        encoder_hidden_dim: 6,
        function_embed_dim: 4,
        trace_hidden_dim: 6,
        example_hidden_dim: 8,
        head_hidden_dim: 8,
        output_dim: 1,
    };
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        3,
        &trainer_config,
        &mut r,
    );
    LearnedFitness::new(model)
}

/// A small engine with the DFS neighborhood search enabled and a tight
/// saturation window, so warm runs exercise the neighborhood's memo-aware
/// scoring path as well as the generation loop.
fn engine() -> GeneticEngine {
    let mut config = GaConfig::small(3);
    config.max_generations = 8;
    config.population_size = 16;
    config.saturation_window = 2;
    config.neighborhood = NeighborhoodStrategy::Dfs;
    GeneticEngine::new(config)
}

fn run(fitness: &LearnedFitness, cache: &FitnessCache, seed: u64) -> GaOutcome {
    let mut budget = SearchBudget::new(3_000);
    engine().synthesize_with_cache(&spec(), fitness, &mut budget, &mut rng(seed), cache)
}

#[test]
fn warm_run_is_bit_identical_to_cold_including_serialized_bytes() {
    let fitness = trained_fitness();
    let shared = FitnessCache::new();

    // Cold: everything — scores, trace-value encodings — computed fresh.
    let cold = run(&fitness, &shared, 5);
    let traces = shared.trace_shard(&fitness.cache_key());
    let cold_encodes = traces.encode_count();
    assert!(
        cold_encodes > 0,
        "the cold run must have encoded trace values through the shard"
    );

    // Warm: same task, same seed, shared cache. Solution, histories and
    // candidates_evaluated must be bit-identical (GaOutcome derives
    // PartialEq over all of them), and the serialized experiment output
    // must match byte for byte.
    let warm = run(&fitness, &shared, 5);
    assert_eq!(warm, cold, "a warm cache must not change the trajectory");
    assert_eq!(
        serde_json::to_string(&warm).unwrap(),
        serde_json::to_string(&cold).unwrap(),
        "experiment output must be byte-identical"
    );
    assert_eq!(
        traces.encode_count(),
        cold_encodes,
        "an identical warm run re-encodes no trace value"
    );

    // A fresh, private cache reproduces the same outcome: warm caches only
    // skip work, they never inject state.
    let private = run(&fitness, &FitnessCache::new(), 5);
    assert_eq!(private, cold);
}

#[test]
fn warm_trace_shard_reduces_encoding_work_across_different_runs() {
    let fitness = trained_fitness();

    // Two *different* runs of the same task against a shared cache: the
    // second run rediscovers many trace values, so it encodes fewer than a
    // cold run of the same seed does.
    let shared = FitnessCache::new();
    let _ = run(&fitness, &shared, 5);
    let traces = shared.trace_shard(&fitness.cache_key());
    let after_first = traces.encode_count();
    let _ = run(&fitness, &shared, 6);
    let second_encodes = traces.encode_count() - after_first;

    let cold = FitnessCache::new();
    let cold_outcome = run(&fitness, &cold, 6);
    let cold_encodes = cold.trace_shard(&fitness.cache_key()).encode_count();
    assert!(
        second_encodes < cold_encodes,
        "a warm trace shard must reuse recurring values across runs: \
         {second_encodes} fresh encodes vs {cold_encodes} cold"
    );

    // And sharing the shard still leaves the different-seed trajectory
    // untouched.
    let shared_again = FitnessCache::new();
    let _ = run(&fitness, &shared_again, 5);
    let warm_outcome = run(&fitness, &shared_again, 6);
    assert_eq!(warm_outcome, cold_outcome);
}

/// Marker prefix the matrix parent greps out of the child's stdout.
const OUTCOME_MARKER: &str = "GA_OUTCOME_BYTES:";

/// Subprocess entry point of the thread-count matrix: under
/// `NETSYN_DETERMINISM_CHILD=1` (set only by the parent test below) this
/// runs a cold synthesis plus a warm repeat on a shared cache — so the
/// claim/publish scoring path, the striped trace shard and the DFS
/// neighborhood memo are all exercised under whatever pool the environment
/// configured — and prints the serialized cold outcome. In a normal test
/// run (env unset) it is a no-op.
#[test]
fn determinism_matrix_child_emits_outcome() {
    if std::env::var("NETSYN_DETERMINISM_CHILD").is_err() {
        return;
    }
    let fitness = trained_fitness();
    let shared = FitnessCache::new();
    let cold = run(&fitness, &shared, 5);
    let warm = run(&fitness, &shared, 5);
    assert_eq!(warm, cold, "warm repeat must match under this pool size");
    println!(
        "{OUTCOME_MARKER}{}",
        serde_json::to_string(&cold).expect("outcome serializes")
    );
}

/// The satellite determinism matrix: byte-identical serialized [`GaOutcome`]
/// for `NETSYN_POOL_THREADS=1,2,8` × `NETSYN_SIMD=0,1`.
///
/// Thread-count independence holds because every parallel reduction lands
/// scores by candidate index and every kernel keeps a fixed per-element op
/// order; SIMD-mode independence holds by the PR-3 bitwise-libm contract.
/// Each cell runs in a subprocess because the pool size and kernel family
/// are fixed at first use per process.
#[test]
fn ga_outcome_bytes_identical_across_thread_counts_and_simd_modes() {
    // The matrix pins NETSYN_POOL_THREADS and NETSYN_SIMD explicitly in
    // every child, so its coverage is identical whatever the parent's
    // environment; CI sets this variable in its re-run-the-suite-under-
    // forced-env steps so the six subprocesses execute once per CI pass,
    // not once per step.
    if std::env::var("NETSYN_SKIP_DETERMINISM_MATRIX").is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut outcomes: Vec<(String, String)> = Vec::new();
    for threads in ["1", "2", "8"] {
        for simd in ["0", "1"] {
            let output = std::process::Command::new(&exe)
                .args([
                    "--exact",
                    "determinism_matrix_child_emits_outcome",
                    "--nocapture",
                    "--test-threads=1",
                ])
                .env("NETSYN_DETERMINISM_CHILD", "1")
                .env("NETSYN_POOL_THREADS", threads)
                .env("NETSYN_SIMD", simd)
                .output()
                .expect("spawn matrix child");
            assert!(
                output.status.success(),
                "matrix child (threads={threads}, simd={simd}) failed:\n{}",
                String::from_utf8_lossy(&output.stderr)
            );
            let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
            // The marker may share its line with libtest's "test name ..."
            // prefix (printed without a newline under --nocapture), so split
            // on the marker rather than expecting it at line start.
            let bytes = stdout
                .lines()
                .find_map(|line| {
                    line.find(OUTCOME_MARKER)
                        .map(|at| line[at + OUTCOME_MARKER.len()..].to_string())
                })
                .unwrap_or_else(|| {
                    panic!("child (threads={threads}, simd={simd}) printed no outcome:\n{stdout}")
                });
            outcomes.push((format!("threads={threads} simd={simd}"), bytes));
        }
    }
    let (ref baseline_cell, ref baseline) = outcomes[0];
    for (cell, bytes) in &outcomes[1..] {
        assert_eq!(
            bytes, baseline,
            "serialized GaOutcome must be byte-identical across the pool/kernel \
             matrix ({cell} differs from {baseline_cell})"
        );
    }
}

/// Serialized pre-refactor `GaOutcome` of the matrix workload, captured from
/// the panmictic engine as of PR 8 (NETSYN_POOL_THREADS=1, verified
/// byte-identical under both SIMD modes at capture time).
const GOLDEN_K1: &str = include_str!("golden/ga_outcome_k1.json");

/// The K=1 island engine must reproduce the pre-refactor engine exactly:
/// the serialized outcome of the matrix workload is pinned byte-for-byte to
/// the golden fixture captured before the island refactor. Any change to
/// the K=1 draw order, budget accounting, history recording or neighborhood
/// hand-off shows up here as a byte diff.
#[test]
fn k1_outcome_matches_the_pre_refactor_golden_bytes() {
    if std::env::var("NETSYN_ISLANDS").is_ok() {
        // The island matrix re-runs this binary with K>1; the golden pin
        // only applies to the default single-island engine.
        return;
    }
    let fitness = trained_fitness();
    let outcome = run(&fitness, &FitnessCache::new(), 5);
    assert_eq!(
        serde_json::to_string(&outcome).expect("outcome serializes"),
        GOLDEN_K1.trim_end(),
        "K=1 must stay byte-identical to the pre-refactor golden outcome"
    );
}

/// The island determinism matrix: serialized [`GaOutcome`] byte-identical
/// across `NETSYN_POOL_THREADS ∈ {1, 8}` × `NETSYN_SIMD ∈ {0, 1}` for every
/// island count `K ∈ {1, 2, 4}`, with the K=1 cells additionally pinned to
/// the pre-refactor golden bytes.
///
/// K-independence is *not* expected (different K means different RNG
/// streams and budget slices by design); what the island layer guarantees
/// is that for a fixed K, the outcome is a pure function of
/// `(config, spec, fitness, seed)` — islands evolve on their own RNG
/// streams and budget slices, and every merge (migration, solution pick,
/// history fold) is index-ordered. Each cell runs in a subprocess because
/// the pool size and kernel family are fixed at first use per process.
#[test]
fn ga_outcome_bytes_identical_across_island_pool_simd_matrix() {
    if std::env::var("NETSYN_SKIP_ISLAND_MATRIX").is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    for islands in ["1", "2", "4"] {
        let mut outcomes: Vec<(String, String)> = Vec::new();
        for threads in ["1", "8"] {
            for simd in ["0", "1"] {
                let output = std::process::Command::new(&exe)
                    .args([
                        "--exact",
                        "determinism_matrix_child_emits_outcome",
                        "--nocapture",
                        "--test-threads=1",
                    ])
                    .env("NETSYN_DETERMINISM_CHILD", "1")
                    .env("NETSYN_ISLANDS", islands)
                    .env("NETSYN_POOL_THREADS", threads)
                    .env("NETSYN_SIMD", simd)
                    .output()
                    .expect("spawn island matrix child");
                assert!(
                    output.status.success(),
                    "island matrix child (islands={islands}, threads={threads}, \
                     simd={simd}) failed:\n{}",
                    String::from_utf8_lossy(&output.stderr)
                );
                let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
                let bytes = stdout
                    .lines()
                    .find_map(|line| {
                        line.find(OUTCOME_MARKER)
                            .map(|at| line[at + OUTCOME_MARKER.len()..].to_string())
                    })
                    .unwrap_or_else(|| {
                        panic!(
                            "child (islands={islands}, threads={threads}, simd={simd}) \
                             printed no outcome:\n{stdout}"
                        )
                    });
                outcomes.push((format!("threads={threads} simd={simd}"), bytes));
            }
        }
        let (ref baseline_cell, ref baseline) = outcomes[0];
        for (cell, bytes) in &outcomes[1..] {
            assert_eq!(
                bytes, baseline,
                "serialized GaOutcome must be byte-identical across the pool/kernel \
                 matrix at K={islands} ({cell} differs from {baseline_cell})"
            );
        }
        if islands == "1" {
            assert_eq!(
                baseline,
                GOLDEN_K1.trim_end(),
                "the K=1 matrix baseline must equal the pre-refactor golden bytes"
            );
        }
    }
}

/// Subprocess entry point of the restart matrix: under
/// `NETSYN_RESTART_CHILD=cold|warm` (set only by the parent test below) this
/// opens the **durable** cache named by `NETSYN_CACHE_DIR`, runs the same
/// synthesis as the determinism matrix, and prints the serialized outcome.
///
/// The `cold` phase asserts it starts from an empty shard and flushes its
/// scores and trace encodings to disk on the way out; the `warm` phase — a
/// fresh process, i.e. a real restart — asserts the shard and trace
/// encodings came back from disk and that the run re-encodes nothing. In a
/// normal test run (env unset) it is a no-op.
#[test]
fn restart_matrix_child_emits_outcome() {
    let Ok(phase) = std::env::var("NETSYN_RESTART_CHILD") else {
        return;
    };
    let dir = std::env::var_os("NETSYN_CACHE_DIR").expect("parent sets NETSYN_CACHE_DIR");
    let fitness = trained_fitness();
    let cache = FitnessCache::durable(&dir).expect("open durable cache");
    let memo = cache.shard(&fitness.cache_key(), &spec());
    let traces = cache.trace_shard(&fitness.cache_key());
    match phase.as_str() {
        "cold" => {
            assert!(memo.is_empty(), "cold phase must start from an empty shard");
            assert!(traces.is_empty(), "cold phase must start with no encodings");
        }
        "warm" => {
            assert!(
                !memo.is_empty(),
                "warm phase must load scores persisted by the cold process"
            );
            assert!(
                !traces.is_empty(),
                "warm phase must load trace encodings persisted by the cold process"
            );
            assert_eq!(
                traces.encode_count(),
                0,
                "entries loaded from disk must not count as fresh encodes"
            );
        }
        other => panic!("unknown restart phase {other:?}"),
    }
    let outcome = run(&fitness, &cache, 5);
    if phase == "warm" {
        assert_eq!(
            traces.encode_count(),
            0,
            "a warm-from-disk run must re-encode no trace value"
        );
    }
    let stats = cache.flush().expect("durable cache flushes");
    if phase == "cold" {
        assert!(
            stats.score_entries > 0,
            "cold phase must persist the scores it computed"
        );
    }
    println!(
        "{OUTCOME_MARKER}{}",
        serde_json::to_string(&outcome).expect("outcome serializes")
    );
}

/// Runs one restart-matrix child process and returns the serialized outcome
/// it printed.
fn restart_child(exe: &std::path::Path, dir: &std::path::Path, phase: &str, simd: &str) -> String {
    let output = std::process::Command::new(exe)
        .args([
            "--exact",
            "restart_matrix_child_emits_outcome",
            "--nocapture",
            "--test-threads=1",
        ])
        .env("NETSYN_RESTART_CHILD", phase)
        .env("NETSYN_CACHE_DIR", dir)
        .env("NETSYN_SIMD", simd)
        .output()
        .expect("spawn restart child");
    assert!(
        output.status.success(),
        "restart child (phase={phase}, simd={simd}) failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
    stdout
        .lines()
        .find_map(|line| {
            line.find(OUTCOME_MARKER)
                .map(|at| line[at + OUTCOME_MARKER.len()..].to_string())
        })
        .unwrap_or_else(|| {
            panic!("child (phase={phase}, simd={simd}) printed no outcome:\n{stdout}")
        })
}

/// The durable-tier restart matrix: run → flush to disk → **restart the
/// process** → warm-start from disk, under `NETSYN_SIMD=0,1`. All four
/// serialized [`GaOutcome`]s (cold and warm, each SIMD mode) must be
/// byte-identical: a warm-from-disk cache only skips work — scores and
/// trace-encoding hidden states round-trip through the record logs as raw
/// bit patterns, so the restarted search trajectory cannot drift.
#[test]
fn ga_outcome_bytes_identical_across_process_restarts() {
    if std::env::var("NETSYN_SKIP_RESTART_MATRIX").is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut outcomes: Vec<(String, String)> = Vec::new();
    for simd in ["0", "1"] {
        let dir = std::env::temp_dir().join(format!(
            "netsyn_restart_matrix_{}_simd{simd}",
            std::process::id()
        ));
        // Stale directory from a crashed earlier run: start clean so the
        // cold-phase emptiness assertion holds.
        let _ = std::fs::remove_dir_all(&dir);
        for phase in ["cold", "warm"] {
            let bytes = restart_child(&exe, &dir, phase, simd);
            outcomes.push((format!("phase={phase} simd={simd}"), bytes));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let (ref baseline_cell, ref baseline) = outcomes[0];
    for (cell, bytes) in &outcomes[1..] {
        assert_eq!(
            bytes, baseline,
            "serialized GaOutcome must be byte-identical across process restarts \
             and kernel families ({cell} differs from {baseline_cell})"
        );
    }
}
