//! Strict parsing of the `NETSYN_ISLANDS` environment override.
//!
//! A valid value (integer `>= 1`) overrides `GaConfig::islands` at engine
//! construction; an invalid value is rejected with one warning line on
//! stderr naming the rejected value and the configured fallback — never
//! silently swallowed. Each case runs in a subprocess because the
//! warn-once guard and the environment are process-global.

use netsyn_ga::{GaConfig, GeneticEngine};

/// Subprocess entry point: under `NETSYN_ISLANDS_CHILD=1` (set only by the
/// parents below) this constructs an engine and prints the resolved island
/// count.
#[test]
fn islands_env_child_reports_resolved_count() {
    if std::env::var("NETSYN_ISLANDS_CHILD").is_err() {
        return;
    }
    let engine = GeneticEngine::new(GaConfig::small(3));
    println!("RESOLVED_ISLANDS:{}", engine.config().islands);
}

fn run_child(islands_env: Option<&str>) -> (usize, String) {
    let exe = std::env::current_exe().expect("test binary path");
    let mut command = std::process::Command::new(&exe);
    command
        .args([
            "--exact",
            "islands_env_child_reports_resolved_count",
            "--nocapture",
        ])
        .env("NETSYN_ISLANDS_CHILD", "1");
    match islands_env {
        Some(value) => command.env("NETSYN_ISLANDS", value),
        None => command.env_remove("NETSYN_ISLANDS"),
    };
    let output = command.output().expect("spawn islands env child");
    assert!(
        output.status.success(),
        "child failed:\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
    let resolved = stdout
        .lines()
        .find_map(|line| {
            line.find("RESOLVED_ISLANDS:")
                .map(|at| line[at + "RESOLVED_ISLANDS:".len()..].trim().parse())
        })
        .expect("child prints the resolved count")
        .expect("resolved count parses");
    (
        resolved,
        String::from_utf8_lossy(&output.stderr).to_string(),
    )
}

#[test]
fn valid_islands_env_overrides_the_config_silently() {
    let (resolved, stderr) = run_child(Some("4"));
    assert_eq!(resolved, 4, "a valid NETSYN_ISLANDS must win over config");
    assert!(
        !stderr.contains("NETSYN_ISLANDS"),
        "a valid override must not warn; stderr:\n{stderr}"
    );
}

#[test]
fn unset_islands_env_keeps_the_configured_count() {
    let (resolved, stderr) = run_child(None);
    assert_eq!(resolved, 1, "GaConfig::small defaults to one island");
    assert!(!stderr.contains("NETSYN_ISLANDS"));
}

#[test]
fn invalid_islands_env_warns_and_keeps_the_config() {
    let (resolved, stderr) = run_child(Some("three"));
    assert_eq!(
        resolved, 1,
        "an invalid override must fall back to the configured count"
    );
    assert!(
        stderr.contains("invalid NETSYN_ISLANDS") && stderr.contains("three"),
        "the warning must name the rejected value; stderr:\n{stderr}"
    );
    assert!(
        stderr.contains("configured island count"),
        "the warning must name the fallback; stderr:\n{stderr}"
    );
}

#[test]
fn zero_islands_env_warns_and_keeps_the_config() {
    let (resolved, stderr) = run_child(Some("0"));
    assert_eq!(resolved, 1);
    assert!(stderr.contains("invalid NETSYN_ISLANDS"));
}
