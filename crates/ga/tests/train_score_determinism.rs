//! Train-then-score determinism of the batched SIMD training path.
//!
//! The trainer now drives whole minibatches through the batched backward
//! kernels (`FitnessNet::forward_batch_train` / `backward_batch`). These
//! tests pin the end-to-end consequence: a checkpoint trained on the batched
//! path is byte-identical to one trained on the scalar per-sample reference
//! loop, and a full GA synthesis scored with that checkpoint produces a
//! byte-identical serialized [`GaOutcome`] across worker-pool sizes
//! (`NETSYN_POOL_THREADS ∈ {1, 8}`). The pool size is fixed at first use per
//! process, so the matrix re-runs this test binary as a subprocess per cell,
//! following the pattern of `warm_cache_determinism.rs`.
//!
//! CI runs this file under both `NETSYN_SIMD` modes, extending the guarantee
//! to the vectorized and scalar kernel families alike.

use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Program, Value};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{
    train_fitness_model, train_fitness_model_reference, FitnessModelKind, TrainedFitnessModel,
    TrainerConfig,
};
use netsyn_fitness::{FitnessCache, FitnessNetConfig, LearnedFitness};
use netsyn_ga::{GaConfig, GaOutcome, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn target() -> Program {
    Program::new(vec![
        Function::Filter(IntPredicate::Positive),
        Function::Map(MapOp::Mul2),
        Function::Sort,
    ])
}

fn spec() -> IoSpec {
    IoSpec::from_program(
        &target(),
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
        ],
    )
}

fn trainer_config() -> TrainerConfig {
    let mut config = TrainerConfig::small();
    config.net = FitnessNetConfig {
        value_embed_dim: 4,
        encoder_hidden_dim: 6,
        function_embed_dim: 4,
        trace_hidden_dim: 6,
        example_hidden_dim: 8,
        head_hidden_dim: 8,
        output_dim: 1,
    };
    config.epochs = 2;
    config.batch_size = 8;
    config
}

/// Trains a CF model on the batched minibatch path.
fn train_batched() -> TrainedFitnessModel {
    let mut r = rng(23);
    let mut dataset_config = DatasetConfig::for_length(3);
    dataset_config.num_target_programs = 6;
    dataset_config.examples_per_program = 2;
    let samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut r).unwrap();
    train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        3,
        &trainer_config(),
        &mut r,
    )
}

/// Trains the identical model on the scalar per-sample reference loop.
fn train_reference() -> TrainedFitnessModel {
    let mut r = rng(23);
    let mut dataset_config = DatasetConfig::for_length(3);
    dataset_config.num_target_programs = 6;
    dataset_config.examples_per_program = 2;
    let samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut r).unwrap();
    train_fitness_model_reference(
        FitnessModelKind::CommonFunctions,
        &samples,
        3,
        &trainer_config(),
        &mut r,
    )
}

fn synthesize(model: TrainedFitnessModel) -> GaOutcome {
    let mut config = GaConfig::small(3);
    config.max_generations = 8;
    config.population_size = 16;
    config.saturation_window = 2;
    config.neighborhood = NeighborhoodStrategy::Dfs;
    let fitness = LearnedFitness::new(model);
    let mut budget = SearchBudget::new(3_000);
    GeneticEngine::new(config).synthesize_with_cache(
        &spec(),
        &fitness,
        &mut budget,
        &mut rng(5),
        &FitnessCache::new(),
    )
}

/// Marker prefix the matrix parent greps out of the child's stdout.
const OUTCOME_MARKER: &str = "TRAIN_SCORE_OUTCOME_BYTES:";

/// Subprocess entry point: under `NETSYN_TRAIN_SCORE_CHILD=1` (set only by
/// the parent matrix below) this trains a checkpoint on the batched path,
/// certifies it byte-identical to the reference-trained one *under this
/// process's pool/kernel environment*, scores a full synthesis with it, and
/// prints the serialized outcome. In a normal test run (env unset) it is a
/// no-op.
#[test]
fn train_score_child_emits_outcome() {
    if std::env::var("NETSYN_TRAIN_SCORE_CHILD").is_err() {
        return;
    }
    let batched = train_batched();
    let reference = train_reference();
    assert_eq!(
        serde_json::to_string(&batched).expect("model serializes"),
        serde_json::to_string(&reference).expect("model serializes"),
        "batched-trained checkpoint must be byte-identical to the reference"
    );
    let outcome = synthesize(batched);
    println!(
        "{OUTCOME_MARKER}{}",
        serde_json::to_string(&outcome).expect("outcome serializes")
    );
}

/// The train-then-score matrix: a checkpoint trained on the batched SIMD
/// path yields a byte-identical serialized [`GaOutcome`] for
/// `NETSYN_POOL_THREADS ∈ {1, 8}`.
#[test]
fn batched_trained_checkpoint_scores_identically_across_pool_sizes() {
    if std::env::var("NETSYN_SKIP_DETERMINISM_MATRIX").is_ok() {
        return;
    }
    let exe = std::env::current_exe().expect("test binary path");
    let mut outcomes: Vec<(String, String)> = Vec::new();
    for threads in ["1", "8"] {
        let output = std::process::Command::new(&exe)
            .args([
                "--exact",
                "train_score_child_emits_outcome",
                "--nocapture",
                "--test-threads=1",
            ])
            .env("NETSYN_TRAIN_SCORE_CHILD", "1")
            .env("NETSYN_POOL_THREADS", threads)
            .output()
            .expect("spawn train/score child");
        assert!(
            output.status.success(),
            "train/score child (threads={threads}) failed:\n{}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8(output.stdout).expect("child stdout is utf-8");
        // The marker may share its line with libtest's "test name ..." prefix
        // (printed without a newline under --nocapture), so split on the
        // marker rather than expecting it at line start.
        let bytes = stdout
            .lines()
            .find_map(|line| {
                line.find(OUTCOME_MARKER)
                    .map(|at| line[at + OUTCOME_MARKER.len()..].to_string())
            })
            .unwrap_or_else(|| panic!("child (threads={threads}) printed no outcome:\n{stdout}"));
        outcomes.push((format!("threads={threads}"), bytes));
    }
    let (ref baseline_cell, ref baseline) = outcomes[0];
    for (cell, bytes) in &outcomes[1..] {
        assert_eq!(
            bytes, baseline,
            "serialized GaOutcome from a batched-trained checkpoint must be \
             byte-identical across pool sizes ({cell} differs from {baseline_cell})"
        );
    }
}
