//! Integration tests for the cross-generation fitness cache and the
//! spec-encoded-once guarantee:
//!
//! * a counting test double proves the engine drives one spec encoding per
//!   `synthesize` call through the `SpecEncodingCache` layer, and the real
//!   `LearnedFitness` confirms it end to end;
//! * a counting fitness proves a shared `FitnessCache` serves a repeated
//!   run of the same task entirely from cached scores (and that a warm
//!   cache leaves the search trajectory untouched).

use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Program, Value};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{
    EncodingConfig, FitnessCache, FitnessFunction, FitnessNetConfig, LearnedFitness,
    SpecEncodingCache,
};
use netsyn_ga::{GaConfig, GeneticEngine, NeighborhoodStrategy, SearchBudget};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicUsize, Ordering};

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn target() -> Program {
    Program::new(vec![
        Function::Filter(IntPredicate::Positive),
        Function::Map(MapOp::Mul2),
        Function::Sort,
    ])
}

fn spec() -> IoSpec {
    IoSpec::from_program(
        &target(),
        &[
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -5, 7, 2])],
            vec![Value::List(vec![4, 4, -1, 0, 9])],
        ],
    )
}

/// A test double standing in for a learned fitness: it routes every call
/// through a [`SpecEncodingCache`] exactly like `LearnedFitness` does, and
/// counts how many candidates it was actually asked to score.
struct CountingFitness {
    encoding: EncodingConfig,
    spec_cache: SpecEncodingCache,
    scored: AtomicUsize,
}

impl CountingFitness {
    fn new() -> Self {
        CountingFitness {
            encoding: EncodingConfig::new(),
            spec_cache: SpecEncodingCache::new(),
            scored: AtomicUsize::new(0),
        }
    }

    fn scored(&self) -> usize {
        self.scored.load(Ordering::Relaxed)
    }
}

impl FitnessFunction for CountingFitness {
    fn name(&self) -> &str {
        "counting"
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        let _shared = self.spec_cache.get_or_encode(&self.encoding, spec);
        self.scored.fetch_add(1, Ordering::Relaxed);
        // Deterministic, non-constant, program-only score.
        (candidate.len() % 4) as f64 + 0.5
    }

    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        let _shared = self.spec_cache.get_or_encode(&self.encoding, spec);
        self.scored.fetch_add(candidates.len(), Ordering::Relaxed);
        candidates
            .iter()
            .map(|candidate| (candidate.len() % 4) as f64 + 0.5)
            .collect()
    }

    fn max_score(&self) -> f64 {
        4.5
    }
}

fn engine() -> GeneticEngine {
    let mut config = GaConfig::small(3);
    config.max_generations = 12;
    config.population_size = 24;
    config.neighborhood = NeighborhoodStrategy::Disabled;
    GeneticEngine::new(config)
}

#[test]
fn spec_is_encoded_exactly_once_per_synthesize() {
    let fitness = CountingFitness::new();
    let mut budget = SearchBudget::new(5_000);
    let _ = engine().synthesize(&spec(), &fitness, &mut budget, &mut rng(3));
    assert!(
        fitness.scored() > 0,
        "the engine must have scored something"
    );
    assert_eq!(
        fitness.spec_cache.encode_count(),
        1,
        "one synthesize call must encode its specification exactly once"
    );
}

#[test]
fn learned_fitness_encodes_the_spec_once_per_synthesize() {
    let mut r = rng(11);
    let mut dataset_config = DatasetConfig::for_length(3);
    dataset_config.num_target_programs = 6;
    dataset_config.examples_per_program = 2;
    let samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut r).unwrap();
    let mut trainer_config = TrainerConfig::small();
    trainer_config.net = FitnessNetConfig {
        value_embed_dim: 4,
        encoder_hidden_dim: 6,
        function_embed_dim: 4,
        trace_hidden_dim: 6,
        example_hidden_dim: 8,
        head_hidden_dim: 8,
        output_dim: 1,
    };
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        3,
        &trainer_config,
        &mut r,
    );
    let fitness = LearnedFitness::new(model);
    assert_eq!(fitness.spec_encode_count(), 0);
    let mut budget = SearchBudget::new(2_000);
    let outcome = engine().synthesize(&spec(), &fitness, &mut budget, &mut r);
    assert!(outcome.generations > 1, "the GA must have iterated");
    assert_eq!(
        fitness.spec_encode_count(),
        1,
        "a multi-generation run must encode the spec exactly once"
    );
}

#[test]
fn shared_cache_serves_repeated_runs_without_rescoring() {
    let fitness = CountingFitness::new();
    let cache = FitnessCache::new();
    let engine = engine();

    let mut budget = SearchBudget::new(5_000);
    let cold = engine.synthesize_with_cache(&spec(), &fitness, &mut budget, &mut rng(7), &cache);
    let cold_scored = fitness.scored();
    assert!(cold_scored > 0);

    // Same seed, same spec, shared cache: the identical candidate stream is
    // served entirely from the cache and the trajectory is unchanged.
    let mut budget = SearchBudget::new(5_000);
    let warm = engine.synthesize_with_cache(&spec(), &fitness, &mut budget, &mut rng(7), &cache);
    assert_eq!(
        fitness.scored(),
        cold_scored,
        "a warm cache must not re-score any candidate of an identical run"
    );
    assert_eq!(warm, cold, "a warm cache must not change the trajectory");

    // A different seed rediscovers many programs: some cache hits, not all.
    let mut budget = SearchBudget::new(5_000);
    let _ = engine.synthesize_with_cache(&spec(), &fitness, &mut budget, &mut rng(8), &cache);
    let third_scored = fitness.scored() - cold_scored;
    assert!(
        third_scored < cold_scored,
        "a different run of the same task should still hit the cache: \
         {third_scored} newly scored vs {cold_scored} in the cold run"
    );
}

#[test]
fn private_caches_keep_synthesize_deterministic() {
    let fitness = CountingFitness::new();
    let engine = engine();
    let mut budget_a = SearchBudget::new(4_000);
    let mut budget_b = SearchBudget::new(4_000);
    let a = engine.synthesize(&spec(), &fitness, &mut budget_a, &mut rng(9));
    let scored_after_a = fitness.scored();
    let b = engine.synthesize(&spec(), &fitness, &mut budget_b, &mut rng(9));
    assert_eq!(a, b);
    // Plain synthesize uses a fresh private cache: the second run re-scores.
    assert_eq!(fitness.scored(), 2 * scored_after_a);
}
