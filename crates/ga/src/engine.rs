//! The genetic-algorithm engine: population initialization, fitness-ranked
//! evolution with elitism, crossover and (optionally FP-guided) mutation,
//! dead-code-aware offspring generation, saturation-triggered neighborhood
//! search and search-space accounting.

use crate::budget::SearchBudget;
use crate::config::{GaConfig, NeighborhoodStrategy};
use crate::crossover;
use crate::gene::{Gene, Population};
use crate::mutation;
use crate::neighborhood;
use crate::saturation::SaturationDetector;
use crate::selection;
use netsyn_dsl::dce::has_dead_code;
use netsyn_dsl::{IoSpec, Program, Type};
use netsyn_fitness::cache::{resolve_batch, SpecScores};
use netsyn_fitness::{FitnessCache, FitnessFunction, ProbabilityMap, TraceEncodingCache};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Result of one synthesis attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaOutcome {
    /// The program satisfying the specification, if one was found.
    pub solution: Option<Program>,
    /// Number of completed generations.
    pub generations: usize,
    /// Number of candidate programs evaluated (the paper's search-space
    /// metric), including initial population, offspring and neighborhood
    /// candidates.
    pub candidates_evaluated: usize,
    /// Whether the solution was discovered by the neighborhood search rather
    /// than the evolutionary loop.
    pub found_by_neighborhood: bool,
    /// Average population fitness per generation.
    pub average_fitness_history: Vec<f64>,
    /// Best population fitness per generation.
    pub best_fitness_history: Vec<f64>,
}

impl GaOutcome {
    /// Whether a solution was found.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.solution.is_some()
    }
}

/// The genetic-algorithm engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneticEngine {
    config: GaConfig,
}

impl GeneticEngine {
    /// Creates an engine from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`GaConfig::validate`]).
    #[must_use]
    pub fn new(config: GaConfig) -> Self {
        config.validate();
        GeneticEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the evolutionary search for a program equivalent to the target
    /// described by `spec`, using `fitness` to rank candidates and drawing
    /// every candidate evaluation from `budget`.
    ///
    /// Scores are memoized for the duration of the call (duplicate offspring
    /// are never re-scored); use [`GeneticEngine::synthesize_with_cache`] to
    /// share that memo across repeated runs of the same specification.
    pub fn synthesize<F, R>(
        &self,
        spec: &IoSpec,
        fitness: &F,
        budget: &mut SearchBudget,
        rng: &mut R,
    ) -> GaOutcome
    where
        F: FitnessFunction + ?Sized,
        R: Rng + ?Sized,
    {
        self.synthesize_with_cache(spec, fitness, budget, rng, &FitnessCache::new())
    }

    /// [`GeneticEngine::synthesize`] with an externally owned
    /// [`FitnessCache`].
    ///
    /// The engine reads and fills the cache's `(fitness cache key, spec)`
    /// shard:
    /// any candidate scored by a previous run of the same task is served
    /// from the cache instead of re-scored. Because every
    /// [`FitnessFunction::score_batch`] implementation is bit-identical to
    /// the per-candidate path, cached scores equal recomputed scores
    /// exactly, so a warm cache never changes the search trajectory — it
    /// only skips fitness evaluations. The evaluation harness threads one
    /// cache per task through its `K` repetitions; iterative synthesis
    /// loops that re-attempt a fixed specification benefit the same way.
    pub fn synthesize_with_cache<F, R>(
        &self,
        spec: &IoSpec,
        fitness: &F,
        budget: &mut SearchBudget,
        rng: &mut R,
        cache: &FitnessCache,
    ) -> GaOutcome
    where
        F: FitnessFunction + ?Sized,
        R: Rng + ?Sized,
    {
        let input_types = if spec.is_empty() {
            self.config.domain.default_input_types().to_vec()
        } else {
            spec.input_types()
        };
        let probability_map = fitness.probability_map(spec);
        // Fitness memo keyed by program: duplicate offspring (reproduction
        // copies, re-discovered programs) are never re-scored. The shard is
        // spec-keyed, so entries stay valid across runs of the same task.
        let memo = cache.shard(&fitness.cache_key(), spec);
        // Trace-value encoding shard: every batched scoring call — the
        // per-generation population pass and the DFS neighborhood search —
        // reuses the step-encoder hidden states of values already seen in
        // earlier generations or earlier runs sharing the cache.
        let traces = cache.trace_shard(&fitness.cache_key());
        let mut detector = SaturationDetector::new(self.config.saturation_window);
        let mut average_history = Vec::new();
        let mut best_history = Vec::new();
        let start_evaluated = budget.evaluated();

        // Initial population of random, dead-code-free genes.
        let mut population = Population::default();
        for _ in 0..self.config.population_size {
            let program = self.random_program(&input_types, rng);
            if !budget.try_consume() {
                return self.outcome(
                    None,
                    0,
                    budget.evaluated() - start_evaluated,
                    false,
                    average_history,
                    best_history,
                );
            }
            if spec.is_satisfied_by(&program) {
                return self.outcome(
                    Some(program),
                    0,
                    budget.evaluated() - start_evaluated,
                    false,
                    average_history,
                    best_history,
                );
            }
            population.genes_mut().push(Gene::new(program));
        }

        for generation in 1..=self.config.max_generations {
            Self::evaluate_population(&mut population, fitness, spec, &memo, &traces);
            // One durable-flush tick per generation: a no-op for in-memory
            // caches, an occasional async append for durable ones.
            cache.maybe_periodic_flush();
            let average = population.average_fitness();
            let best = population.best_fitness().unwrap_or(0.0);
            average_history.push(average);
            best_history.push(best);
            detector.record(average);

            // Saturation-triggered restricted local neighborhood search.
            if detector.is_saturated() && self.config.neighborhood != NeighborhoodStrategy::Disabled
            {
                let top: Vec<Program> = population
                    .top_genes(self.config.neighborhood_top_n)
                    .into_iter()
                    .map(|g| g.program)
                    .collect();
                let ns = neighborhood::search(
                    &top,
                    spec,
                    self.config.neighborhood,
                    self.config.domain,
                    fitness,
                    budget,
                    &memo,
                    &traces,
                    Some(cache),
                );
                detector.reset();
                if let Some(solution) = ns.solution {
                    return self.outcome(
                        Some(solution),
                        generation,
                        budget.evaluated() - start_evaluated,
                        true,
                        average_history,
                        best_history,
                    );
                }
                if budget.is_exhausted() {
                    return self.outcome(
                        None,
                        generation,
                        budget.evaluated() - start_evaluated,
                        false,
                        average_history,
                        best_history,
                    );
                }
            }

            // Breed the next generation.
            match self.breed(
                &population,
                spec,
                &input_types,
                probability_map.as_ref(),
                budget,
                rng,
            ) {
                BreedResult::Solution(program) => {
                    return self.outcome(
                        Some(program),
                        generation,
                        budget.evaluated() - start_evaluated,
                        false,
                        average_history,
                        best_history,
                    );
                }
                BreedResult::Exhausted => {
                    return self.outcome(
                        None,
                        generation,
                        budget.evaluated() - start_evaluated,
                        false,
                        average_history,
                        best_history,
                    );
                }
                BreedResult::Next(next) => population = next,
            }
        }

        self.outcome(
            None,
            self.config.max_generations,
            budget.evaluated() - start_evaluated,
            false,
            average_history,
            best_history,
        )
    }

    fn outcome(
        &self,
        solution: Option<Program>,
        generations: usize,
        candidates_evaluated: usize,
        found_by_neighborhood: bool,
        average_fitness_history: Vec<f64>,
        best_fitness_history: Vec<f64>,
    ) -> GaOutcome {
        GaOutcome {
            solution,
            generations,
            candidates_evaluated,
            found_by_neighborhood,
            average_fitness_history,
            best_fitness_history,
        }
    }

    /// Evaluates the fitness of every not-yet-scored gene.
    ///
    /// Previously-seen programs — from earlier generations *or* earlier runs
    /// sharing the cache shard — are served from `memo`; the remaining
    /// *unique* programs are scored with a single
    /// [`FitnessFunction::score_batch_cached`] call (reusing the trace-value
    /// encodings memoized in `traces`), so a learned fitness runs one
    /// batched network pass per generation instead of one forward pass per
    /// gene. Scores land by candidate index, independent of scheduling:
    /// each distinct program resolves to exactly one `f64`, and genes are
    /// filled from those per-index slots, so the ranking — and the whole
    /// trajectory — is identical however many threads the pool runs.
    ///
    /// No shard lock is held while scoring, and concurrent runs of the same
    /// task avoid scoring the same program twice: this run *claims* its
    /// unscored programs first (`SpecScores::claim_many`); programs another
    /// run is already scoring are awaited instead of recomputed (except in
    /// the rare no-block recompute escape documented on
    /// `netsyn_fitness::cache::resolve_score`), and a claimant that panics
    /// abandons its claims so waiters re-claim rather than hang. Cached,
    /// awaited and freshly computed scores are all bit-identical by the
    /// batched-scoring contract, so the trajectory is unaffected either
    /// way. See [`netsyn_fitness::cache::resolve_batch`].
    fn evaluate_population<F>(
        population: &mut Population,
        fitness: &F,
        spec: &IoSpec,
        memo: &SpecScores,
        traces: &TraceEncodingCache,
    ) where
        F: FitnessFunction + ?Sized,
    {
        // Distinct programs still needing a score, in first-seen order.
        let mut needed: Vec<Program> = Vec::new();
        let mut index_of: HashMap<Program, usize> = HashMap::new();
        for gene in population.genes() {
            if gene.fitness.is_none() && !index_of.contains_key(&gene.program) {
                index_of.insert(gene.program.clone(), needed.len());
                needed.push(gene.program.clone());
            }
        }
        if needed.is_empty() {
            return;
        }
        let resolved = resolve_batch(memo, &needed, |batch| {
            fitness.score_batch_cached(batch, spec, traces)
        });
        for gene in population.genes_mut().iter_mut() {
            if gene.fitness.is_none() {
                gene.fitness = Some(resolved[index_of[&gene.program]]);
            }
        }
    }

    /// Samples a random program of the configured length without dead code
    /// (best effort within `dead_code_retries`).
    fn random_program<R: Rng + ?Sized>(&self, input_types: &[Type], rng: &mut R) -> Program {
        let mut last = self.unconstrained_random_program(rng);
        for _ in 0..self.config.dead_code_retries {
            if !has_dead_code(&last, input_types) {
                return last;
            }
            last = self.unconstrained_random_program(rng);
        }
        last
    }

    fn unconstrained_random_program<R: Rng + ?Sized>(&self, rng: &mut R) -> Program {
        let vocab = self.config.domain.vocab();
        (0..self.config.program_length)
            .map(|_| vocab[rng.gen_range(0..vocab.len())])
            .collect()
    }

    fn breed<R: Rng + ?Sized>(
        &self,
        population: &Population,
        spec: &IoSpec,
        input_types: &[Type],
        probability_map: Option<&ProbabilityMap>,
        budget: &mut SearchBudget,
        rng: &mut R,
    ) -> BreedResult {
        let weights = population.fitness_weights();
        let mut next: Vec<Gene> = population.top_genes(self.config.elite_count);
        while next.len() < self.config.population_size {
            let draw: f64 = rng.gen();
            if draw < self.config.crossover_rate {
                let offspring = self.crossover_offspring(population, &weights, input_types, rng);
                if !budget.try_consume() {
                    return BreedResult::Exhausted;
                }
                if spec.is_satisfied_by(&offspring) {
                    return BreedResult::Solution(offspring);
                }
                next.push(Gene::new(offspring));
            } else if draw < self.config.crossover_rate + self.config.mutation_rate {
                let offspring = self.mutation_offspring(
                    population,
                    &weights,
                    input_types,
                    probability_map,
                    rng,
                );
                if !budget.try_consume() {
                    return BreedResult::Exhausted;
                }
                if spec.is_satisfied_by(&offspring) {
                    return BreedResult::Solution(offspring);
                }
                next.push(Gene::new(offspring));
            } else {
                // Reproduction: copy a selected gene unchanged (not a new
                // candidate program, so it does not consume search budget).
                let index = selection::roulette_wheel(&weights, rng);
                next.push(population.genes()[index].clone());
            }
        }
        BreedResult::Next(Population::new(next))
    }

    fn crossover_offspring<R: Rng + ?Sized>(
        &self,
        population: &Population,
        weights: &[f64],
        input_types: &[Type],
        rng: &mut R,
    ) -> Program {
        let mut last = {
            let (a, b) = selection::roulette_wheel_pair(weights, rng);
            crossover::single_point(
                &population.genes()[a].program,
                &population.genes()[b].program,
                rng,
            )
        };
        for _ in 0..self.config.dead_code_retries {
            if !has_dead_code(&last, input_types) {
                return last;
            }
            let (a, b) = selection::roulette_wheel_pair(weights, rng);
            last = crossover::single_point(
                &population.genes()[a].program,
                &population.genes()[b].program,
                rng,
            );
        }
        last
    }

    fn mutation_offspring<R: Rng + ?Sized>(
        &self,
        population: &Population,
        weights: &[f64],
        input_types: &[Type],
        probability_map: Option<&ProbabilityMap>,
        rng: &mut R,
    ) -> Program {
        let index = selection::roulette_wheel(weights, rng);
        let parent = &population.genes()[index].program;
        let mut last = mutation::point_mutation(
            parent,
            self.config.mutation_mode,
            probability_map,
            self.config.domain,
            rng,
        );
        for _ in 0..self.config.dead_code_retries {
            if !has_dead_code(&last, input_types) {
                return last;
            }
            last = mutation::point_mutation(
                parent,
                self.config.mutation_mode,
                probability_map,
                self.config.domain,
                rng,
            );
        }
        last
    }
}

enum BreedResult {
    Solution(Program),
    Exhausted,
    Next(Population),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MutationMode;
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};
    use netsyn_fitness::{ClosenessMetric, EditDistanceFitness, OracleFitness};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
                vec![Value::List(vec![-3, -6, 12])],
                vec![Value::List(vec![8, 1, -2, 6, 3])],
            ],
        )
    }

    #[test]
    fn oracle_guided_search_finds_a_length_three_target() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(200_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(1));
        assert!(outcome.is_success(), "outcome: {outcome:?}");
        let solution = outcome.solution.unwrap();
        assert!(spec().is_satisfied_by(&solution));
        assert_eq!(outcome.candidates_evaluated, budget.evaluated());
        assert!(outcome.candidates_evaluated <= 200_000);
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let oracle = OracleFitness::new(target(), ClosenessMetric::LongestCommonSubsequence);
        let mut budget_a = SearchBudget::new(100_000);
        let mut budget_b = SearchBudget::new(100_000);
        let a = engine.synthesize(&spec(), &oracle, &mut budget_a, &mut rng(7));
        let b = engine.synthesize(&spec(), &oracle, &mut budget_b, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn budget_exhaustion_terminates_the_search() {
        let engine = GeneticEngine::new(GaConfig::small(5));
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(150);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(2));
        assert!(budget.is_exhausted() || outcome.is_success());
        assert!(outcome.candidates_evaluated <= 150);
    }

    #[test]
    fn zero_budget_returns_immediately() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(0);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(3));
        assert!(!outcome.is_success());
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(outcome.generations, 0);
    }

    #[test]
    fn max_generations_bounds_the_search() {
        let mut config = GaConfig::small(5);
        config.max_generations = 3;
        config.neighborhood = NeighborhoodStrategy::Disabled;
        let engine = GeneticEngine::new(config);
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(1_000_000);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(4));
        assert!(outcome.generations <= 3);
        assert_eq!(outcome.average_fitness_history.len(), outcome.generations);
        assert_eq!(outcome.best_fitness_history.len(), outcome.generations);
    }

    #[test]
    fn fitness_histories_are_recorded_and_bounded() {
        let mut config = GaConfig::small(3);
        config.max_generations = 10;
        config.neighborhood = NeighborhoodStrategy::Disabled;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(100_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(5));
        for (&avg, &best) in outcome
            .average_fitness_history
            .iter()
            .zip(outcome.best_fitness_history.iter())
        {
            assert!(avg <= best + 1e-9);
            assert!(best <= oracle.max_score() + 1e-9);
            assert!(avg >= 0.0);
        }
    }

    #[test]
    fn probability_guided_mutation_uses_the_fitness_map() {
        let mut config = GaConfig::small(3);
        config.mutation_mode = MutationMode::ProbabilityGuided;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(200_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(6));
        assert!(outcome.is_success());
    }

    #[test]
    fn neighborhood_search_rescues_a_stagnant_population() {
        // With an uninformative fitness (constant), the GA cannot make
        // progress; the saturation detector fires and the BFS neighborhood
        // of the top genes is searched. Use a length-1 target so that the
        // neighborhood of *any* gene contains the solution.
        struct Constant;
        impl FitnessFunction for Constant {
            fn name(&self) -> &str {
                "constant"
            }
            fn score(&self, _candidate: &Program, _spec: &IoSpec) -> f64 {
                1.0
            }
            fn max_score(&self) -> f64 {
                1.0
            }
        }
        let tiny_target = Program::new(vec![Function::Sort]);
        let tiny_spec = IoSpec::from_program(
            &tiny_target,
            &[
                vec![Value::List(vec![3, 1, 2])],
                vec![Value::List(vec![9, -4, 0, 2])],
                vec![Value::List(vec![5, 5, 1])],
            ],
        );
        let mut config = GaConfig::small(1);
        config.population_size = 5;
        config.elite_count = 1;
        config.saturation_window = 2;
        config.max_generations = 50;
        let engine = GeneticEngine::new(config);
        let mut budget = SearchBudget::new(100_000);
        let outcome = engine.synthesize(&tiny_spec, &Constant, &mut budget, &mut rng(8));
        assert!(outcome.is_success());
    }
}
