//! The genetic-algorithm engine: the public synthesis entry point over the
//! island layer.
//!
//! The evolution itself — population initialization, fitness-ranked breeding
//! with elitism, crossover and (optionally FP-guided) mutation, dead-code-
//! aware offspring generation and the saturation-triggered neighborhood
//! search — lives in [`crate::island`]. The engine decides how a synthesis
//! call maps onto islands:
//!
//! * `islands == 1` (the default): one island driven directly by the
//!   caller's RNG and budget. This is draw-for-draw identical to the
//!   historical panmictic engine; the serialized [`GaOutcome`] is pinned
//!   byte-for-byte by golden-bytes tests.
//! * `islands > 1`: the budget is partitioned into fixed per-island slices,
//!   each island evolves on its own RNG stream seeded from the caller's RNG
//!   in index order, and elites migrate around a ring on a fixed generation
//!   schedule. Islands run on separate pool workers between migration
//!   points; all merges are index-ordered, so the outcome is a pure
//!   function of `(config, spec, fitness, seed)` — independent of
//!   `NETSYN_POOL_THREADS` and `NETSYN_SIMD`.
//!
//! The `NETSYN_ISLANDS` environment variable overrides the configured
//! island count at engine construction (strictly parsed; an invalid value
//! warns once on stderr and is ignored).

use crate::budget::SearchBudget;
use crate::config::GaConfig;
use crate::island::{self, SynthesisContext};
use netsyn_dsl::{IoSpec, Program};
use netsyn_fitness::{FitnessCache, FitnessFunction};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Result of one synthesis attempt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaOutcome {
    /// The program satisfying the specification, if one was found.
    pub solution: Option<Program>,
    /// Number of completed generations. For a multi-island run this is the
    /// maximum over islands (generations advance in lockstep between
    /// migration points, so it is also the global generation count).
    pub generations: usize,
    /// Number of candidate programs evaluated (the paper's search-space
    /// metric), including initial population, offspring and neighborhood
    /// candidates, summed over all islands.
    pub candidates_evaluated: usize,
    /// Whether the solution was discovered by the neighborhood search rather
    /// than the evolutionary loop.
    pub found_by_neighborhood: bool,
    /// Average population fitness per generation. For a multi-island run,
    /// the mean over the islands still evolving at that generation.
    pub average_fitness_history: Vec<f64>,
    /// Best population fitness per generation (maximum over islands).
    pub best_fitness_history: Vec<f64>,
}

impl GaOutcome {
    /// Whether a solution was found.
    #[must_use]
    pub fn is_success(&self) -> bool {
        self.solution.is_some()
    }
}

/// The genetic-algorithm engine.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneticEngine {
    config: GaConfig,
}

impl GeneticEngine {
    /// Creates an engine from a validated configuration.
    ///
    /// The `NETSYN_ISLANDS` environment variable, when set to a valid
    /// integer `>= 1`, overrides `config.islands`; an invalid value emits
    /// one warning naming the rejected value and the configured fallback.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see [`GaConfig::validate`]).
    #[must_use]
    pub fn new(mut config: GaConfig) -> Self {
        if let Some(islands) = island::islands_from_env() {
            config.islands = islands;
        }
        config.validate();
        GeneticEngine { config }
    }

    /// The engine's configuration.
    #[must_use]
    pub fn config(&self) -> &GaConfig {
        &self.config
    }

    /// Runs the evolutionary search for a program equivalent to the target
    /// described by `spec`, using `fitness` to rank candidates and drawing
    /// every candidate evaluation from `budget`.
    ///
    /// Scores are memoized for the duration of the call (duplicate offspring
    /// are never re-scored); use [`GeneticEngine::synthesize_with_cache`] to
    /// share that memo across repeated runs of the same specification.
    pub fn synthesize<F, R>(
        &self,
        spec: &IoSpec,
        fitness: &F,
        budget: &mut SearchBudget,
        rng: &mut R,
    ) -> GaOutcome
    where
        F: FitnessFunction + ?Sized,
        R: Rng + ?Sized,
    {
        self.synthesize_with_cache(spec, fitness, budget, rng, &FitnessCache::new())
    }

    /// [`GeneticEngine::synthesize`] with an externally owned
    /// [`FitnessCache`].
    ///
    /// The engine reads and fills the cache's `(fitness cache key, spec)`
    /// shard:
    /// any candidate scored by a previous run of the same task is served
    /// from the cache instead of re-scored. Because every
    /// [`FitnessFunction::score_batch`] implementation is bit-identical to
    /// the per-candidate path, cached scores equal recomputed scores
    /// exactly, so a warm cache never changes the search trajectory — it
    /// only skips fitness evaluations. The evaluation harness threads one
    /// cache per task through its `K` repetitions; iterative synthesis
    /// loops that re-attempt a fixed specification benefit the same way.
    /// All islands of one call share the same shard, so a program scored on
    /// one island is never re-scored on another.
    pub fn synthesize_with_cache<F, R>(
        &self,
        spec: &IoSpec,
        fitness: &F,
        budget: &mut SearchBudget,
        rng: &mut R,
        cache: &FitnessCache,
    ) -> GaOutcome
    where
        F: FitnessFunction + ?Sized,
        R: Rng + ?Sized,
    {
        let ctx = SynthesisContext::new(&self.config, spec, fitness, cache, None);
        if self.config.islands == 1 {
            island::synthesize_single(&ctx, budget, rng)
        } else {
            island::synthesize_islands(&ctx, self.config.islands, budget, rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MutationMode, NeighborhoodStrategy};
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};
    use netsyn_fitness::{ClosenessMetric, EditDistanceFitness, OracleFitness};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
                vec![Value::List(vec![-3, -6, 12])],
                vec![Value::List(vec![8, 1, -2, 6, 3])],
            ],
        )
    }

    #[test]
    fn oracle_guided_search_finds_a_length_three_target() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(200_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(1));
        assert!(outcome.is_success(), "outcome: {outcome:?}");
        let solution = outcome.solution.unwrap();
        assert!(spec().is_satisfied_by(&solution));
        assert_eq!(outcome.candidates_evaluated, budget.evaluated());
        assert!(outcome.candidates_evaluated <= 200_000);
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let oracle = OracleFitness::new(target(), ClosenessMetric::LongestCommonSubsequence);
        let mut budget_a = SearchBudget::new(100_000);
        let mut budget_b = SearchBudget::new(100_000);
        let a = engine.synthesize(&spec(), &oracle, &mut budget_a, &mut rng(7));
        let b = engine.synthesize(&spec(), &oracle, &mut budget_b, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn budget_exhaustion_terminates_the_search() {
        let engine = GeneticEngine::new(GaConfig::small(5));
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(150);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(2));
        assert!(budget.is_exhausted() || outcome.is_success());
        assert!(outcome.candidates_evaluated <= 150);
    }

    #[test]
    fn zero_budget_returns_immediately() {
        let engine = GeneticEngine::new(GaConfig::small(3));
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(0);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(3));
        assert!(!outcome.is_success());
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(outcome.generations, 0);
    }

    #[test]
    fn max_generations_bounds_the_search() {
        let mut config = GaConfig::small(5);
        config.max_generations = 3;
        config.neighborhood = NeighborhoodStrategy::Disabled;
        let engine = GeneticEngine::new(config);
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(1_000_000);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(4));
        assert!(outcome.generations <= 3);
        assert_eq!(outcome.average_fitness_history.len(), outcome.generations);
        assert_eq!(outcome.best_fitness_history.len(), outcome.generations);
    }

    #[test]
    fn fitness_histories_are_recorded_and_bounded() {
        let mut config = GaConfig::small(3);
        config.max_generations = 10;
        config.neighborhood = NeighborhoodStrategy::Disabled;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(100_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(5));
        for (&avg, &best) in outcome
            .average_fitness_history
            .iter()
            .zip(outcome.best_fitness_history.iter())
        {
            assert!(avg <= best + 1e-9);
            assert!(best <= oracle.max_score() + 1e-9);
            assert!(avg >= 0.0);
        }
    }

    #[test]
    fn probability_guided_mutation_uses_the_fitness_map() {
        let mut config = GaConfig::small(3);
        config.mutation_mode = MutationMode::ProbabilityGuided;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(200_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(6));
        assert!(outcome.is_success());
    }

    #[test]
    fn neighborhood_search_rescues_a_stagnant_population() {
        // With an uninformative fitness (constant), the GA cannot make
        // progress; the saturation detector fires and the BFS neighborhood
        // of the top genes is searched. Use a length-1 target so that the
        // neighborhood of *any* gene contains the solution.
        struct Constant;
        impl FitnessFunction for Constant {
            fn name(&self) -> &str {
                "constant"
            }
            fn score(&self, _candidate: &Program, _spec: &IoSpec) -> f64 {
                1.0
            }
            fn max_score(&self) -> f64 {
                1.0
            }
        }
        let tiny_target = Program::new(vec![Function::Sort]);
        let tiny_spec = IoSpec::from_program(
            &tiny_target,
            &[
                vec![Value::List(vec![3, 1, 2])],
                vec![Value::List(vec![9, -4, 0, 2])],
                vec![Value::List(vec![5, 5, 1])],
            ],
        );
        let mut config = GaConfig::small(1);
        config.population_size = 5;
        config.elite_count = 1;
        config.saturation_window = 2;
        config.max_generations = 50;
        let engine = GeneticEngine::new(config);
        let mut budget = SearchBudget::new(100_000);
        let outcome = engine.synthesize(&tiny_spec, &Constant, &mut budget, &mut rng(8));
        assert!(outcome.is_success());
    }

    #[test]
    fn island_sharded_search_is_deterministic_and_charges_the_master_budget() {
        let mut config = GaConfig::small(3);
        config.islands = 3;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::LongestCommonSubsequence);
        let mut budget_a = SearchBudget::new(60_000);
        let mut budget_b = SearchBudget::new(60_000);
        let a = engine.synthesize(&spec(), &oracle, &mut budget_a, &mut rng(7));
        let b = engine.synthesize(&spec(), &oracle, &mut budget_b, &mut rng(7));
        assert_eq!(a, b);
        assert_eq!(a.candidates_evaluated, budget_a.evaluated());
        assert!(budget_a.evaluated() <= 60_000);
    }

    #[test]
    fn island_sharded_search_finds_the_target() {
        let mut config = GaConfig::small(3);
        config.islands = 2;
        let engine = GeneticEngine::new(config);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(200_000);
        let outcome = engine.synthesize(&spec(), &oracle, &mut budget, &mut rng(1));
        assert!(outcome.is_success(), "outcome: {outcome:?}");
        assert!(spec().is_satisfied_by(&outcome.solution.unwrap()));
        assert_eq!(outcome.candidates_evaluated, budget.evaluated());
    }

    #[test]
    fn island_sharded_zero_budget_returns_immediately() {
        let mut config = GaConfig::small(3);
        config.islands = 4;
        let engine = GeneticEngine::new(config);
        let fitness = EditDistanceFitness::new();
        let mut budget = SearchBudget::new(0);
        let outcome = engine.synthesize(&spec(), &fitness, &mut budget, &mut rng(3));
        assert!(!outcome.is_success());
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(outcome.generations, 0);
    }
}
