//! # netsyn-ga
//!
//! The genetic-algorithm engine of the NetSyn reproduction ("Learning Fitness
//! Functions for Machine Programming", MLSys 2021).
//!
//! Candidate programs are value-encoded genes (one DSL function per
//! position). Each generation, genes are ranked by a pluggable
//! [`FitnessFunction`](netsyn_fitness::FitnessFunction), the top genes are
//! carried over unchanged, and the rest of the pool is refilled by
//! Roulette-Wheel-selected crossover, (optionally FP-guided) point mutation
//! and reproduction. Offspring containing dead code are regenerated so the
//! effective program length matches the target length. When the population's
//! average fitness saturates, the restricted local neighborhood of the top
//! genes is searched exhaustively (BFS or DFS flavored, Algorithm 1 of the
//! paper). Every candidate evaluation is drawn from a [`SearchBudget`] so the
//! paper's "search space used" metric is directly measurable.
//!
//! ## Example
//!
//! ```
//! use netsyn_dsl::{IoSpec, Program, Value};
//! use netsyn_fitness::{ClosenessMetric, OracleFitness};
//! use netsyn_ga::{GaConfig, GeneticEngine, SearchBudget};
//! use rand::SeedableRng;
//!
//! let target: Program = "FILTER(>0), MAP(*2), SORT".parse()?;
//! let spec = IoSpec::from_program(&target, &[
//!     vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
//!     vec![Value::List(vec![1, -5, 7, 2])],
//! ]);
//! let engine = GeneticEngine::new(GaConfig::small(3));
//! let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
//! let mut budget = SearchBudget::new(100_000);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let outcome = engine.synthesize(&spec, &oracle, &mut budget, &mut rng);
//! assert!(outcome.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod budget;
mod config;
pub mod crossover;
mod engine;
mod gene;
pub mod mutation;
pub mod neighborhood;
mod saturation;
pub mod selection;

pub use budget::SearchBudget;
pub use config::{GaConfig, MutationMode, NeighborhoodStrategy};
pub use engine::{GaOutcome, GeneticEngine};
pub use gene::{Gene, Population};
pub use neighborhood::NeighborhoodOutcome;
pub use saturation::SaturationDetector;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GaConfig>();
        assert_send_sync::<GeneticEngine>();
        assert_send_sync::<GaOutcome>();
        assert_send_sync::<SearchBudget>();
        assert_send_sync::<Population>();
    }
}
