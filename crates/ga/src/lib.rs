//! # netsyn-ga
//!
//! The search core of the NetSyn reproduction ("Learning Fitness Functions
//! for Machine Programming", MLSys 2021): an island-model genetic algorithm
//! plus the steppable search strategies a portfolio orchestrator can race
//! against it.
//!
//! ## Three layers
//!
//! **Island layer** ([`GeneticEngine`] over `island`). Candidate programs
//! are value-encoded genes (one DSL function per position). Each synthesis
//! shards into `K = GaConfig::islands` island populations (overridable via
//! the `NETSYN_ISLANDS` environment variable). Within an island, each
//! generation ranks genes by a pluggable
//! [`FitnessFunction`](netsyn_fitness::FitnessFunction), carries the top
//! genes over unchanged, and refills the pool by Roulette-Wheel-selected
//! crossover, (optionally FP-guided) point mutation and reproduction;
//! offspring containing dead code are regenerated. When an island's average
//! fitness saturates, the restricted local neighborhood of its top genes is
//! searched (BFS or DFS flavored, Algorithm 1 of the paper). Every candidate
//! evaluation is drawn from a [`SearchBudget`] so the paper's "search space
//! used" metric is directly measurable.
//!
//! **Strategy layer** ([`SearchStrategy`]). A uniform step/budget/
//! best-so-far interface over heterogeneous searches: [`GaSearchStrategy`]
//! (one generation across all islands per step), [`DfsSearchStrategy`] (one
//! DFS `(gene, position)` neighborhood per step) and [`BeamSearch`] (one
//! guided beam depth level per step, lifted out of the PCCoder baseline).
//! Strategies draw from a [`SharedBudget`] — an atomic counter whose cap is
//! never exceeded however a race interleaves.
//!
//! **Portfolio orchestration** lives above this crate (in `netsyn-core`):
//! strategies race on separate pool workers under one shared budget with
//! cooperative first-solution cancellation via [`CancelToken`].
//!
//! ## Determinism contract
//!
//! Serialized [`GaOutcome`]s are byte-identical for a fixed
//! `(config, spec, fitness, seed)` at **any** `K` × `NETSYN_POOL_THREADS` ×
//! `NETSYN_SIMD` combination, because nothing an island computes ever
//! depends on scheduling:
//!
//! * `K = 1` drives a single island with the caller's RNG and budget —
//!   draw-for-draw identical to the historical panmictic engine (pinned by
//!   golden bytes in `tests/warm_cache_determinism.rs`).
//! * `K > 1` seeds one RNG stream per island from the caller's RNG in index
//!   order and partitions the budget into fixed per-island slices up front
//!   (`total/K` each, the first `total%K` getting one extra; never
//!   rebalanced).
//! * Islands evolve epochs of `migration_interval` generations on separate
//!   pool workers, then synchronize: island `i` sends clones of its
//!   `migration_size` fittest genes to `(i+1) % K`, replacing the
//!   receiver's worst-ranked genes. Emigrants are snapshotted from every
//!   island before any island is mutated and merges apply in island-index
//!   order.
//! * The solved island with the lowest index wins; merged histories are
//!   index-ordered folds (mean/max per generation).
//! * Islands share the striped `SpecScores`/`TraceEncodingCache` shards, so
//!   a program scored on one island is never re-scored on another — safe
//!   because batched scores are bit-identical to per-candidate scores
//!   whichever worker computes them first.
//!
//! Portfolio races are the deliberate exception: rival strategies admit
//! candidates from one [`SharedBudget`] first-come first-served, so the
//! *winner* may vary run to run while the budget cap and the validity of
//! any reported solution never do.
//!
//! ## Cancellation semantics
//!
//! A [`CancelToken`] is level-triggered and purely cooperative: the island
//! loop checks it between generations, the DFS search between positions,
//! the beam between depth levels — so a fired token stops every strategy
//! within one step's worth of work, and no cache shard or claim guard is
//! ever left inconsistent.
//!
//! ## Example
//!
//! ```
//! use netsyn_dsl::{IoSpec, Program, Value};
//! use netsyn_fitness::{ClosenessMetric, OracleFitness};
//! use netsyn_ga::{GaConfig, GeneticEngine, SearchBudget};
//! use rand::SeedableRng;
//!
//! let target: Program = "FILTER(>0), MAP(*2), SORT".parse()?;
//! let spec = IoSpec::from_program(&target, &[
//!     vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
//!     vec![Value::List(vec![1, -5, 7, 2])],
//! ]);
//! let engine = GeneticEngine::new(GaConfig::small(3));
//! let oracle = OracleFitness::new(target, ClosenessMetric::CommonFunctions);
//! let mut budget = SearchBudget::new(100_000);
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let outcome = engine.synthesize(&spec, &oracle, &mut budget, &mut rng);
//! assert!(outcome.is_success());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod beam;
mod budget;
mod cancel;
mod config;
pub mod crossover;
mod engine;
mod gene;
mod island;
pub mod mutation;
pub mod neighborhood;
mod saturation;
pub mod selection;
mod strategy;
pub(crate) mod sync_select;

pub use beam::{guided_partial_score, BeamConfig, BeamSearch, BeamStep};
pub use budget::{BudgetSource, SearchBudget, SharedBudget};
pub use cancel::CancelToken;
pub use config::{GaConfig, MutationMode, NeighborhoodStrategy};
pub use engine::{GaOutcome, GeneticEngine};
pub use gene::{Gene, Population};
pub use neighborhood::NeighborhoodOutcome;
pub use saturation::SaturationDetector;
pub use strategy::{
    random_seed_programs, DfsSearchStrategy, GaSearchStrategy, SearchStrategy, StepStatus,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GaConfig>();
        assert_send_sync::<GeneticEngine>();
        assert_send_sync::<GaOutcome>();
        assert_send_sync::<SearchBudget>();
        assert_send_sync::<SharedBudget>();
        assert_send_sync::<CancelToken>();
        assert_send_sync::<Population>();
    }
}
