//! Cooperative cancellation for racing search strategies.
//!
//! A [`CancelToken`] is a cloneable flag the portfolio orchestrator hands to
//! every strategy in a race. The first strategy to find a solution fires the
//! token; the others observe it at their next check point — the engine checks
//! between generations, the DFS neighborhood search between positions, the
//! beam search between expansions — and stop within that one unit of work.
//! Cancellation is purely cooperative: nothing is interrupted mid-kernel, so
//! cache shards and claim guards are always left in a consistent state.

use crate::sync_select::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable, thread-safe cancellation flag.
///
/// Clones share one flag; once fired it stays fired. The token is
/// level-triggered — checking it is cheap (one atomic load), so search loops
/// check it at every step boundary.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    cancelled: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates an un-fired token.
    #[must_use]
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token. Idempotent.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether the token has been fired.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_observe_the_same_flag() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert!(!clone.is_cancelled());
        token.cancel();
        assert!(clone.is_cancelled());
        // Idempotent.
        clone.cancel();
        assert!(token.is_cancelled());
    }
}
