//! Single-point crossover of value-encoded genes.

use netsyn_dsl::Program;
use rand::Rng;

/// Produces a child program by single-point crossover: the child takes the
/// prefix of `a` up to a random cut point and the suffix of `b` from the same
/// point. Because every function sequence is a valid program, the result
/// never needs validation or repair.
///
/// # Panics
///
/// Panics if the parents are empty or have different lengths (the engine
/// always evolves fixed-length genes).
pub fn single_point<R: Rng + ?Sized>(a: &Program, b: &Program, rng: &mut R) -> Program {
    assert!(!a.is_empty() && !b.is_empty(), "parents must be non-empty");
    assert_eq!(a.len(), b.len(), "parents must have the same length");
    if a.len() == 1 {
        // No internal cut point exists; return one parent at random.
        return if rng.gen_bool(0.5) {
            a.clone()
        } else {
            b.clone()
        };
    }
    let cut = rng.gen_range(1..a.len());
    let mut functions = a.functions()[..cut].to_vec();
    functions.extend_from_slice(&b.functions()[cut..]);
    Program::new(functions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn parent_a() -> Program {
        Program::new(vec![
            Function::Sort,
            Function::Sort,
            Function::Sort,
            Function::Sort,
        ])
    }

    fn parent_b() -> Program {
        Program::new(vec![
            Function::Reverse,
            Function::Reverse,
            Function::Reverse,
            Function::Reverse,
        ])
    }

    #[test]
    fn child_has_prefix_of_a_and_suffix_of_b() {
        let mut r = rng(1);
        for _ in 0..50 {
            let child = single_point(&parent_a(), &parent_b(), &mut r);
            assert_eq!(child.len(), 4);
            // There is exactly one switch point from SORT to REVERSE.
            let functions = child.functions();
            let cut = functions
                .iter()
                .position(|&f| f == Function::Reverse)
                .expect("suffix always contains at least one REVERSE");
            assert!(cut >= 1, "prefix contains at least one element of parent A");
            assert!(functions[..cut].iter().all(|&f| f == Function::Sort));
            assert!(functions[cut..].iter().all(|&f| f == Function::Reverse));
        }
    }

    #[test]
    fn all_cut_points_are_eventually_used() {
        let mut r = rng(2);
        let mut cut_points = std::collections::HashSet::new();
        for _ in 0..200 {
            let child = single_point(&parent_a(), &parent_b(), &mut r);
            let cut = child
                .functions()
                .iter()
                .position(|&f| f == Function::Reverse)
                .unwrap();
            cut_points.insert(cut);
        }
        assert_eq!(cut_points, [1usize, 2, 3].into_iter().collect());
    }

    #[test]
    fn single_statement_parents_return_one_parent() {
        let a = Program::new(vec![Function::Sort]);
        let b = Program::new(vec![Function::Reverse]);
        let mut r = rng(3);
        for _ in 0..20 {
            let child = single_point(&a, &b, &mut r);
            assert!(child == a || child == b);
        }
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let a = Program::new(vec![Function::Sort]);
        let b = parent_b();
        let _ = single_point(&a, &b, &mut rng(4));
    }
}
