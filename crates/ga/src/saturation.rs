//! Saturation detection: decides when the evolutionary process has stopped
//! improving and local neighborhood search should be tried.
//!
//! Following Section 4.2.2, let `µ_{l-w+1,l}` be the average fitness of the
//! last `w` generations and `µ_{1,l-w}` the average over all earlier
//! generations. Neighborhood search is invoked when
//! `µ_{l-w+1,l} <= µ_{1,l-w}` — the search has not produced improved genes for
//! the last `w` generations.

use serde::{Deserialize, Serialize};

/// Tracks per-generation average fitness and reports saturation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationDetector {
    window: usize,
    history: Vec<f64>,
}

impl SaturationDetector {
    /// Creates a detector with sliding window `w`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "window must be positive");
        SaturationDetector {
            window,
            history: Vec::new(),
        }
    }

    /// Records the average fitness of the latest generation.
    pub fn record(&mut self, average_fitness: f64) {
        self.history.push(average_fitness);
    }

    /// Number of generations recorded so far.
    #[must_use]
    pub fn generations(&self) -> usize {
        self.history.len()
    }

    /// The recorded per-generation averages.
    #[must_use]
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// Whether the fitness signal has saturated: the mean of the last `w`
    /// recorded generations is no better than the mean of all generations
    /// before them. Returns `false` until more than `w` generations have been
    /// recorded (there is no "before" to compare against).
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        let l = self.history.len();
        if l <= self.window {
            return false;
        }
        let split = l - self.window;
        let older = &self.history[..split];
        let recent = &self.history[split..];
        let older_mean = older.iter().sum::<f64>() / older.len() as f64;
        let recent_mean = recent.iter().sum::<f64>() / recent.len() as f64;
        recent_mean <= older_mean
    }

    /// Clears the history. The engine calls this after a neighborhood search
    /// so the next saturation decision starts fresh.
    pub fn reset(&mut self) {
        self.history.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_saturation_before_window_fills() {
        let mut detector = SaturationDetector::new(3);
        for value in [1.0, 1.0, 1.0] {
            detector.record(value);
        }
        assert!(!detector.is_saturated());
        assert_eq!(detector.generations(), 3);
    }

    #[test]
    fn improving_fitness_is_not_saturated() {
        let mut detector = SaturationDetector::new(3);
        for value in [1.0, 2.0, 3.0, 4.0, 5.0, 6.0] {
            detector.record(value);
        }
        assert!(!detector.is_saturated());
    }

    #[test]
    fn flat_fitness_is_saturated() {
        let mut detector = SaturationDetector::new(3);
        for value in [2.0, 2.0, 2.0, 2.0, 2.0] {
            detector.record(value);
        }
        assert!(detector.is_saturated());
    }

    #[test]
    fn declining_fitness_is_saturated() {
        let mut detector = SaturationDetector::new(2);
        for value in [3.0, 3.0, 2.5, 2.0] {
            detector.record(value);
        }
        assert!(detector.is_saturated());
    }

    #[test]
    fn recovery_after_reset() {
        let mut detector = SaturationDetector::new(2);
        for value in [2.0, 2.0, 2.0, 2.0] {
            detector.record(value);
        }
        assert!(detector.is_saturated());
        detector.reset();
        assert_eq!(detector.generations(), 0);
        assert!(!detector.is_saturated());
        for value in [2.0, 3.0, 4.0] {
            detector.record(value);
        }
        assert!(!detector.is_saturated());
    }

    #[test]
    fn history_is_accessible() {
        let mut detector = SaturationDetector::new(2);
        detector.record(1.5);
        detector.record(2.5);
        assert_eq!(detector.history(), &[1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = SaturationDetector::new(0);
    }
}
