//! `cfg(loom)`-switched atomics for [`crate::SharedBudget`] and
//! [`crate::CancelToken`].
//!
//! Under `--cfg loom` (the CI `model-check` job) the budget's CAS cap and
//! the cancellation flag run on model-aware atomics, so `tests/budget_model.rs`
//! can exhaustively schedule concurrent `try_consume`/`cancel` races;
//! outside a model run (and in all normal builds) these are the std
//! atomics with identical behavior.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
