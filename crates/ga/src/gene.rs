//! Genes and populations.

use netsyn_dsl::Program;
use serde::{Deserialize, Serialize};

/// A gene: a candidate program together with its cached fitness score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gene {
    /// The candidate program (value-encoded: one DSL function per position).
    pub program: Program,
    /// Cached fitness score, `None` until evaluated.
    pub fitness: Option<f64>,
}

impl Gene {
    /// Creates an unevaluated gene.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Gene {
            program,
            fitness: None,
        }
    }

    /// The gene's fitness, or 0.0 if it has not been evaluated yet.
    #[must_use]
    pub fn fitness_or_zero(&self) -> f64 {
        self.fitness.unwrap_or(0.0)
    }
}

/// A population of genes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Population {
    genes: Vec<Gene>,
}

impl Population {
    /// Creates a population from genes.
    #[must_use]
    pub fn new(genes: Vec<Gene>) -> Self {
        Population { genes }
    }

    /// Number of genes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Read access to the genes.
    #[must_use]
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// Mutable access to the genes.
    pub fn genes_mut(&mut self) -> &mut Vec<Gene> {
        &mut self.genes
    }

    /// Average fitness of the evaluated genes (0.0 if none are evaluated).
    #[must_use]
    pub fn average_fitness(&self) -> f64 {
        let evaluated: Vec<f64> = self.genes.iter().filter_map(|g| g.fitness).collect();
        if evaluated.is_empty() {
            return 0.0;
        }
        evaluated.iter().sum::<f64>() / evaluated.len() as f64
    }

    /// Best (highest) fitness among evaluated genes.
    #[must_use]
    pub fn best_fitness(&self) -> Option<f64> {
        self.genes
            .iter()
            .filter_map(|g| g.fitness)
            .max_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Indices of the `n` highest-fitness genes, best first.
    #[must_use]
    pub fn top_indices(&self, n: usize) -> Vec<usize> {
        let mut indices: Vec<usize> = (0..self.genes.len()).collect();
        indices.sort_by(|&a, &b| {
            self.genes[b]
                .fitness_or_zero()
                .partial_cmp(&self.genes[a].fitness_or_zero())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        indices.truncate(n);
        indices
    }

    /// The `n` highest-fitness genes, best first (cloned).
    #[must_use]
    pub fn top_genes(&self, n: usize) -> Vec<Gene> {
        self.top_indices(n)
            .into_iter()
            .map(|i| self.genes[i].clone())
            .collect()
    }

    /// The fitness scores of all genes in order (unevaluated genes count as
    /// 0.0) — the weights used by Roulette-Wheel selection.
    #[must_use]
    pub fn fitness_weights(&self) -> Vec<f64> {
        self.genes.iter().map(Gene::fitness_or_zero).collect()
    }
}

impl FromIterator<Gene> for Population {
    fn from_iter<T: IntoIterator<Item = Gene>>(iter: T) -> Self {
        Population::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    fn gene_with_fitness(f: Function, fitness: f64) -> Gene {
        let mut gene = Gene::new(Program::new(vec![f]));
        gene.fitness = Some(fitness);
        gene
    }

    #[test]
    fn new_gene_is_unevaluated() {
        let gene = Gene::new(Program::new(vec![Function::Sort]));
        assert_eq!(gene.fitness, None);
        assert_eq!(gene.fitness_or_zero(), 0.0);
    }

    #[test]
    fn population_statistics() {
        let population = Population::new(vec![
            gene_with_fitness(Function::Sort, 1.0),
            gene_with_fitness(Function::Head, 3.0),
            gene_with_fitness(Function::Sum, 2.0),
        ]);
        assert_eq!(population.len(), 3);
        assert!(!population.is_empty());
        assert_eq!(population.average_fitness(), 2.0);
        assert_eq!(population.best_fitness(), Some(3.0));
        assert_eq!(population.fitness_weights(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_population_statistics() {
        let population = Population::default();
        assert!(population.is_empty());
        assert_eq!(population.average_fitness(), 0.0);
        assert_eq!(population.best_fitness(), None);
        assert!(population.top_indices(3).is_empty());
    }

    #[test]
    fn top_indices_orders_by_fitness() {
        let population = Population::new(vec![
            gene_with_fitness(Function::Sort, 1.0),
            gene_with_fitness(Function::Head, 3.0),
            gene_with_fitness(Function::Sum, 2.0),
            Gene::new(Program::new(vec![Function::Last])),
        ]);
        assert_eq!(population.top_indices(2), vec![1, 2]);
        let top = population.top_genes(3);
        assert_eq!(top[0].program, Program::new(vec![Function::Head]));
        assert_eq!(top.len(), 3);
        // Requesting more than available returns everything.
        assert_eq!(population.top_indices(10).len(), 4);
    }

    #[test]
    fn collect_into_population() {
        let population: Population = (0..5)
            .map(|_| Gene::new(Program::new(vec![Function::Sort])))
            .collect();
        assert_eq!(population.len(), 5);
    }
}
