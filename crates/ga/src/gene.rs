//! Genes and populations.

use netsyn_dsl::Program;
use serde::{Deserialize, Serialize};

/// A gene: a candidate program together with its cached fitness score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gene {
    /// The candidate program (value-encoded: one DSL function per position).
    pub program: Program,
    /// Cached fitness score, `None` until evaluated.
    pub fitness: Option<f64>,
}

impl Gene {
    /// Creates an unevaluated gene.
    #[must_use]
    pub fn new(program: Program) -> Self {
        Gene {
            program,
            fitness: None,
        }
    }

    /// The gene's fitness, or 0.0 if it has not been evaluated yet.
    #[must_use]
    pub fn fitness_or_zero(&self) -> f64 {
        self.fitness.unwrap_or(0.0)
    }
}

/// Ascending score comparison with a total, loud NaN policy: **any** NaN
/// compares greater than every real value, whatever its sign bit (x86-64
/// invalid operations like `0.0/0.0` produce sign-bit-set NaNs, which
/// `f64::total_cmp` would bury below `-inf`). Equal-NaN and real-vs-real
/// cases defer to the usual IEEE order.
fn score_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        // netsyn-lint: allow(partial-cmp-unwrap) — the match arms above dispatch every NaN combination, so both operands are non-NaN here
        (false, false) => a.partial_cmp(&b).expect("both scores are non-NaN"),
    }
}

/// A population of genes.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Population {
    genes: Vec<Gene>,
}

impl Population {
    /// Creates a population from genes.
    #[must_use]
    pub fn new(genes: Vec<Gene>) -> Self {
        Population { genes }
    }

    /// Number of genes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.genes.len()
    }

    /// Whether the population is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.genes.is_empty()
    }

    /// Read access to the genes.
    #[must_use]
    pub fn genes(&self) -> &[Gene] {
        &self.genes
    }

    /// Mutable access to the genes.
    pub fn genes_mut(&mut self) -> &mut Vec<Gene> {
        &mut self.genes
    }

    /// Average fitness of the evaluated genes (0.0 if none are evaluated).
    #[must_use]
    pub fn average_fitness(&self) -> f64 {
        let evaluated: Vec<f64> = self.genes.iter().filter_map(|g| g.fitness).collect();
        if evaluated.is_empty() {
            return 0.0;
        }
        evaluated.iter().sum::<f64>() / evaluated.len() as f64
    }

    /// Best (highest) fitness among evaluated genes.
    ///
    /// Any NaN — regardless of sign bit, which runtime-generated NaNs on
    /// x86-64 typically have set — ranks above every real value, so a
    /// corrupted score surfaces as the reported best instead of silently
    /// scrambling the comparison (`partial_cmp` + `Equal` made the winner
    /// depend on iteration order).
    #[must_use]
    pub fn best_fitness(&self) -> Option<f64> {
        self.genes
            .iter()
            .filter_map(|g| g.fitness)
            .max_by(|a, b| score_cmp(*a, *b))
    }

    /// Indices of the `n` highest-fitness genes, best first.
    ///
    /// Evaluated genes are ranked by score descending with any NaN (either
    /// sign) first, so a poisoned score is loud rather than randomly
    /// placed; **unevaluated genes rank strictly last**. The old
    /// `fitness_or_zero`-based sort placed unevaluated genes above any
    /// evaluated gene with negative fitness, which let never-scored
    /// candidates shoulder real ones out of elite/neighborhood selection
    /// under regression/two-tier models (their scores can go negative).
    /// Ties keep input order (the sort is stable).
    #[must_use]
    pub fn top_indices(&self, n: usize) -> Vec<usize> {
        use std::cmp::Ordering;
        let mut indices: Vec<usize> = (0..self.genes.len()).collect();
        indices.sort_by(
            |&a, &b| match (&self.genes[a].fitness, &self.genes[b].fitness) {
                (Some(fa), Some(fb)) => score_cmp(*fb, *fa),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => Ordering::Equal,
            },
        );
        indices.truncate(n);
        indices
    }

    /// The `n` highest-fitness genes, best first (cloned).
    #[must_use]
    pub fn top_genes(&self, n: usize) -> Vec<Gene> {
        self.top_indices(n)
            .into_iter()
            .map(|i| self.genes[i].clone())
            .collect()
    }

    /// The fitness scores of all genes in order (unevaluated genes count as
    /// 0.0) — the weights used by Roulette-Wheel selection.
    #[must_use]
    pub fn fitness_weights(&self) -> Vec<f64> {
        self.genes.iter().map(Gene::fitness_or_zero).collect()
    }
}

impl FromIterator<Gene> for Population {
    fn from_iter<T: IntoIterator<Item = Gene>>(iter: T) -> Self {
        Population::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    fn gene_with_fitness(f: Function, fitness: f64) -> Gene {
        let mut gene = Gene::new(Program::new(vec![f]));
        gene.fitness = Some(fitness);
        gene
    }

    #[test]
    fn new_gene_is_unevaluated() {
        let gene = Gene::new(Program::new(vec![Function::Sort]));
        assert_eq!(gene.fitness, None);
        assert_eq!(gene.fitness_or_zero(), 0.0);
    }

    #[test]
    fn population_statistics() {
        let population = Population::new(vec![
            gene_with_fitness(Function::Sort, 1.0),
            gene_with_fitness(Function::Head, 3.0),
            gene_with_fitness(Function::Sum, 2.0),
        ]);
        assert_eq!(population.len(), 3);
        assert!(!population.is_empty());
        assert_eq!(population.average_fitness(), 2.0);
        assert_eq!(population.best_fitness(), Some(3.0));
        assert_eq!(population.fitness_weights(), vec![1.0, 3.0, 2.0]);
    }

    #[test]
    fn empty_population_statistics() {
        let population = Population::default();
        assert!(population.is_empty());
        assert_eq!(population.average_fitness(), 0.0);
        assert_eq!(population.best_fitness(), None);
        assert!(population.top_indices(3).is_empty());
    }

    #[test]
    fn top_indices_orders_by_fitness() {
        let population = Population::new(vec![
            gene_with_fitness(Function::Sort, 1.0),
            gene_with_fitness(Function::Head, 3.0),
            gene_with_fitness(Function::Sum, 2.0),
            Gene::new(Program::new(vec![Function::Last])),
        ]);
        assert_eq!(population.top_indices(2), vec![1, 2]);
        let top = population.top_genes(3);
        assert_eq!(top[0].program, Program::new(vec![Function::Head]));
        assert_eq!(top.len(), 3);
        // Requesting more than available returns everything.
        assert_eq!(population.top_indices(10).len(), 4);
    }

    #[test]
    fn top_indices_ranks_unevaluated_strictly_last() {
        // Regression/two-tier fitness models can score below zero; an
        // unevaluated gene must never outrank an evaluated one.
        let population = Population::new(vec![
            gene_with_fitness(Function::Sort, -1.5),
            Gene::new(Program::new(vec![Function::Last])),
            gene_with_fitness(Function::Head, -0.25),
            Gene::new(Program::new(vec![Function::Sum])),
            gene_with_fitness(Function::Maximum, 0.5),
        ]);
        assert_eq!(population.top_indices(5), vec![4, 2, 0, 1, 3]);
        // The old fitness_or_zero ranking put index 1 (unevaluated) ahead
        // of every negative gene; the cut for the top three must instead
        // take exactly the evaluated genes.
        assert_eq!(population.top_indices(3), vec![4, 2, 0]);
        let top = population.top_genes(2);
        assert!(top.iter().all(|g| g.fitness.is_some()));
    }

    #[test]
    fn nan_fitness_ranks_first_and_loud() {
        // A poisoned score surfaces at the head of the ranking (and as
        // best_fitness) instead of shuffling the order nondeterministically
        // — including the sign-bit-set NaNs x86-64 invalid operations
        // produce (0.0/0.0), which a plain total_cmp would sort *last*.
        // The division NaN is deliberate: it reproduces the hardware
        // invalid-operation encoding rather than the NAN constant.
        #[allow(clippy::zero_divided_by_zero)]
        for nan in [f64::NAN, -f64::NAN, 0.0 / 0.0] {
            let mut nan_gene = Gene::new(Program::new(vec![Function::Reverse]));
            nan_gene.fitness = Some(nan);
            let population = Population::new(vec![
                gene_with_fitness(Function::Sort, 1.0),
                nan_gene,
                gene_with_fitness(Function::Head, 2.0),
            ]);
            assert_eq!(population.top_indices(3), vec![1, 2, 0]);
            assert!(population.best_fitness().unwrap().is_nan());
        }
    }

    #[test]
    fn collect_into_population() {
        let population: Population = (0..5)
            .map(|_| Gene::new(Program::new(vec![Function::Sort])))
            .collect();
        assert_eq!(population.len(), 5);
    }
}
