//! Search-space accounting.
//!
//! The paper's headline metric is the number of candidate programs searched
//! before a solution is found, expressed as a percentage of a hard cap
//! (3,000,000 candidates in the paper). Every synthesizer in this
//! reproduction — NetSyn, the GA ablations and all baselines — draws from a
//! [`SearchBudget`] so the metric is comparable across methods.
//!
//! Two budget shapes exist:
//!
//! * [`SearchBudget`] — a plain counter owned by one search. This is what
//!   the deterministic engine paths use: every admission decision is made
//!   by exactly one owner, so trajectories are reproducible bit for bit.
//! * [`SharedBudget`] — an atomic counter cloned across concurrently racing
//!   strategies (see [`crate::strategy`]). Admissions are first-come
//!   first-served across threads, so a race is *not* deterministic — but
//!   the cap is a hard invariant: the sum of all admitted candidates never
//!   exceeds it, however the race interleaves.
//!
//! The [`BudgetSource`] trait abstracts over both so the engine internals,
//! the neighborhood search and the beam search can run against either.

use crate::sync_select::{AtomicUsize, Ordering};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A counter of candidate programs evaluated against a hard cap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    max_candidates: usize,
    evaluated: usize,
}

impl SearchBudget {
    /// Creates a budget allowing up to `max_candidates` candidate programs.
    #[must_use]
    pub fn new(max_candidates: usize) -> Self {
        SearchBudget {
            max_candidates,
            evaluated: 0,
        }
    }

    /// The paper's cap of 3,000,000 candidate programs.
    #[must_use]
    pub fn paper_default() -> Self {
        SearchBudget::new(3_000_000)
    }

    /// The configured cap.
    #[must_use]
    pub fn max_candidates(&self) -> usize {
        self.max_candidates
    }

    /// Number of candidates evaluated so far.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Remaining candidates before the cap is hit.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.max_candidates.saturating_sub(self.evaluated)
    }

    /// Whether the cap has been reached.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.evaluated >= self.max_candidates
    }

    /// Fraction of the cap used so far, in `[0, 1]`.
    #[must_use]
    pub fn fraction_used(&self) -> f64 {
        if self.max_candidates == 0 {
            return 1.0;
        }
        (self.evaluated as f64 / self.max_candidates as f64).min(1.0)
    }

    /// Records the evaluation of one candidate. Returns `false` (and does not
    /// count the candidate) if the budget is already exhausted.
    pub fn try_consume(&mut self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        self.evaluated += 1;
        true
    }

    /// Records the evaluation of `n` candidates, saturating at the cap.
    /// Returns how many were actually admitted.
    pub fn try_consume_many(&mut self, n: usize) -> usize {
        let admitted = n.min(self.remaining());
        self.evaluated += admitted;
        admitted
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::paper_default()
    }
}

/// Anything candidate evaluations can be drawn from: a locally owned
/// [`SearchBudget`] or a cross-strategy [`SharedBudget`].
///
/// The contract mirrors [`SearchBudget::try_consume`]: `try_consume` admits
/// at most one candidate and returns whether it was admitted; a denied
/// candidate is not counted. `is_exhausted` reports whether any future
/// `try_consume` can succeed (for a shared budget this is a racy snapshot —
/// another thread may drain the remainder between the check and the draw,
/// which is why admission itself is the only authoritative operation).
pub trait BudgetSource {
    /// Records the evaluation of one candidate; `false` means the cap is hit.
    fn try_consume(&mut self) -> bool;
    /// Whether the cap has been reached.
    fn is_exhausted(&self) -> bool;
}

impl BudgetSource for SearchBudget {
    fn try_consume(&mut self) -> bool {
        SearchBudget::try_consume(self)
    }

    fn is_exhausted(&self) -> bool {
        SearchBudget::is_exhausted(self)
    }
}

#[derive(Debug)]
struct SharedBudgetInner {
    max_candidates: usize,
    evaluated: AtomicUsize,
}

/// An atomically shared candidate budget for racing search strategies.
///
/// Clones share one counter. Admission uses a compare-and-swap loop, so the
/// cap is never exceeded even when every strategy in a portfolio draws from
/// it concurrently; the *order* of admissions across strategies is whatever
/// the race produces. Use [`SearchBudget`] wherever determinism matters.
#[derive(Debug, Clone)]
pub struct SharedBudget {
    inner: Arc<SharedBudgetInner>,
}

impl SharedBudget {
    /// Creates a shared budget allowing up to `max_candidates` evaluations.
    #[must_use]
    pub fn new(max_candidates: usize) -> Self {
        SharedBudget {
            inner: Arc::new(SharedBudgetInner {
                max_candidates,
                evaluated: AtomicUsize::new(0),
            }),
        }
    }

    /// The configured cap.
    #[must_use]
    pub fn max_candidates(&self) -> usize {
        self.inner.max_candidates
    }

    /// Total candidates admitted so far, across every clone.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.inner.evaluated.load(Ordering::SeqCst)
    }

    /// Remaining candidates before the cap is hit (a racy snapshot).
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.inner.max_candidates.saturating_sub(self.evaluated())
    }

    /// Whether the cap has been reached.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.evaluated() >= self.inner.max_candidates
    }

    /// Atomically records the evaluation of one candidate. Returns `false`
    /// (and counts nothing) once the cap is reached.
    pub fn try_consume(&self) -> bool {
        self.inner
            .evaluated
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.inner.max_candidates).then_some(n + 1)
            })
            .is_ok()
    }
}

impl BudgetSource for SharedBudget {
    fn try_consume(&mut self) -> bool {
        SharedBudget::try_consume(self)
    }

    fn is_exhausted(&self) -> bool {
        SharedBudget::is_exhausted(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_cap() {
        let budget = SearchBudget::paper_default();
        assert_eq!(budget.max_candidates(), 3_000_000);
        assert_eq!(budget.evaluated(), 0);
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn consume_until_exhausted() {
        let mut budget = SearchBudget::new(3);
        assert!(budget.try_consume());
        assert!(budget.try_consume());
        assert!(budget.try_consume());
        assert!(!budget.try_consume());
        assert!(budget.is_exhausted());
        assert_eq!(budget.evaluated(), 3);
        assert_eq!(budget.remaining(), 0);
        assert_eq!(budget.fraction_used(), 1.0);
    }

    #[test]
    fn consume_many_saturates() {
        let mut budget = SearchBudget::new(10);
        assert_eq!(budget.try_consume_many(4), 4);
        assert_eq!(budget.try_consume_many(100), 6);
        assert!(budget.is_exhausted());
        assert_eq!(budget.try_consume_many(5), 0);
    }

    #[test]
    fn fraction_used_is_monotone() {
        let mut budget = SearchBudget::new(4);
        let mut last = 0.0;
        for _ in 0..4 {
            budget.try_consume();
            let f = budget.fraction_used();
            assert!(f >= last);
            last = f;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn zero_cap_budget_is_immediately_exhausted() {
        let mut budget = SearchBudget::new(0);
        assert!(budget.is_exhausted());
        assert!(!budget.try_consume());
        assert_eq!(budget.fraction_used(), 1.0);
    }

    #[test]
    fn shared_budget_clones_share_one_counter() {
        let budget = SharedBudget::new(3);
        let clone = budget.clone();
        assert!(budget.try_consume());
        assert!(clone.try_consume());
        assert!(budget.try_consume());
        assert!(!clone.try_consume());
        assert_eq!(budget.evaluated(), 3);
        assert_eq!(clone.remaining(), 0);
        assert!(budget.is_exhausted());
    }

    #[test]
    fn shared_budget_never_exceeds_the_cap_under_contention() {
        use rayon::prelude::*;
        let budget = SharedBudget::new(500);
        let attempts: Vec<usize> = (0..8).collect();
        let admitted: Vec<usize> = attempts
            .par_iter()
            .map(|_| {
                let mut local = 0usize;
                for _ in 0..100 {
                    if budget.try_consume() {
                        local += 1;
                    }
                }
                local
            })
            .collect();
        assert_eq!(admitted.iter().sum::<usize>(), 500);
        assert_eq!(budget.evaluated(), 500);
        assert!(!budget.try_consume());
    }

    #[test]
    fn budget_source_is_object_safe_over_both_shapes() {
        fn drain(budget: &mut dyn BudgetSource) -> usize {
            let mut n = 0;
            while budget.try_consume() {
                n += 1;
            }
            n
        }
        let mut owned = SearchBudget::new(4);
        assert_eq!(drain(&mut owned), 4);
        let mut shared = SharedBudget::new(2);
        assert_eq!(drain(&mut shared), 2);
    }
}
