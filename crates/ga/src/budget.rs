//! Search-space accounting.
//!
//! The paper's headline metric is the number of candidate programs searched
//! before a solution is found, expressed as a percentage of a hard cap
//! (3,000,000 candidates in the paper). Every synthesizer in this
//! reproduction — NetSyn, the GA ablations and all baselines — draws from a
//! [`SearchBudget`] so the metric is comparable across methods.

use serde::{Deserialize, Serialize};

/// A counter of candidate programs evaluated against a hard cap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchBudget {
    max_candidates: usize,
    evaluated: usize,
}

impl SearchBudget {
    /// Creates a budget allowing up to `max_candidates` candidate programs.
    #[must_use]
    pub fn new(max_candidates: usize) -> Self {
        SearchBudget {
            max_candidates,
            evaluated: 0,
        }
    }

    /// The paper's cap of 3,000,000 candidate programs.
    #[must_use]
    pub fn paper_default() -> Self {
        SearchBudget::new(3_000_000)
    }

    /// The configured cap.
    #[must_use]
    pub fn max_candidates(&self) -> usize {
        self.max_candidates
    }

    /// Number of candidates evaluated so far.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Remaining candidates before the cap is hit.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.max_candidates.saturating_sub(self.evaluated)
    }

    /// Whether the cap has been reached.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.evaluated >= self.max_candidates
    }

    /// Fraction of the cap used so far, in `[0, 1]`.
    #[must_use]
    pub fn fraction_used(&self) -> f64 {
        if self.max_candidates == 0 {
            return 1.0;
        }
        (self.evaluated as f64 / self.max_candidates as f64).min(1.0)
    }

    /// Records the evaluation of one candidate. Returns `false` (and does not
    /// count the candidate) if the budget is already exhausted.
    pub fn try_consume(&mut self) -> bool {
        if self.is_exhausted() {
            return false;
        }
        self.evaluated += 1;
        true
    }

    /// Records the evaluation of `n` candidates, saturating at the cap.
    /// Returns how many were actually admitted.
    pub fn try_consume_many(&mut self, n: usize) -> usize {
        let admitted = n.min(self.remaining());
        self.evaluated += admitted;
        admitted
    }
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_cap() {
        let budget = SearchBudget::paper_default();
        assert_eq!(budget.max_candidates(), 3_000_000);
        assert_eq!(budget.evaluated(), 0);
        assert!(!budget.is_exhausted());
    }

    #[test]
    fn consume_until_exhausted() {
        let mut budget = SearchBudget::new(3);
        assert!(budget.try_consume());
        assert!(budget.try_consume());
        assert!(budget.try_consume());
        assert!(!budget.try_consume());
        assert!(budget.is_exhausted());
        assert_eq!(budget.evaluated(), 3);
        assert_eq!(budget.remaining(), 0);
        assert_eq!(budget.fraction_used(), 1.0);
    }

    #[test]
    fn consume_many_saturates() {
        let mut budget = SearchBudget::new(10);
        assert_eq!(budget.try_consume_many(4), 4);
        assert_eq!(budget.try_consume_many(100), 6);
        assert!(budget.is_exhausted());
        assert_eq!(budget.try_consume_many(5), 0);
    }

    #[test]
    fn fraction_used_is_monotone() {
        let mut budget = SearchBudget::new(4);
        let mut last = 0.0;
        for _ in 0..4 {
            budget.try_consume();
            let f = budget.fraction_used();
            assert!(f >= last);
            last = f;
        }
        assert_eq!(last, 1.0);
    }

    #[test]
    fn zero_cap_budget_is_immediately_exhausted() {
        let mut budget = SearchBudget::new(0);
        assert!(budget.is_exhausted());
        assert!(!budget.try_consume());
        assert_eq!(budget.fraction_used(), 1.0);
    }
}
