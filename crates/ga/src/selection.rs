//! Roulette-Wheel (fitness-proportionate) selection.

use rand::Rng;

/// Selects an index with probability proportional to its non-negative weight.
///
/// If every weight is zero (e.g. the first generation under an uninformative
/// fitness), the selection falls back to a uniform draw, which matches the
/// behaviour of a Roulette Wheel over an all-equal population.
///
/// # Panics
///
/// Panics if `weights` is empty or contains a negative or non-finite weight.
pub fn roulette_wheel<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(
        !weights.is_empty(),
        "cannot select from an empty population"
    );
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0),
        "weights must be non-negative and finite"
    );
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut threshold = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if threshold < w {
            return i;
        }
        threshold -= w;
    }
    weights.len() - 1
}

/// Selects two *distinct* indices by repeated Roulette-Wheel draws (used to
/// pick crossover parents). Falls back to returning the only index twice when
/// the population has a single gene.
pub fn roulette_wheel_pair<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> (usize, usize) {
    let first = roulette_wheel(weights, rng);
    if weights.len() == 1 {
        return (first, first);
    }
    for _ in 0..32 {
        let second = roulette_wheel(weights, rng);
        if second != first {
            return (first, second);
        }
    }
    // Degenerate weight distributions (all mass on one gene): pick any other
    // index uniformly.
    let mut second = rng.gen_range(0..weights.len());
    if second == first {
        second = (first + 1) % weights.len();
    }
    (first, second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn selection_is_proportional_to_weights() {
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let mut r = rng(1);
        for _ in 0..10_000 {
            counts[roulette_wheel(&weights, &mut r)] += 1;
        }
        // Expected proportions 10%, 30%, 60%.
        assert!((counts[0] as f64 / 10_000.0 - 0.1).abs() < 0.03);
        assert!((counts[1] as f64 / 10_000.0 - 0.3).abs() < 0.03);
        assert!((counts[2] as f64 / 10_000.0 - 0.6).abs() < 0.03);
    }

    #[test]
    fn zero_weight_genes_are_never_selected_when_mass_exists() {
        let weights = [0.0, 5.0, 0.0];
        let mut r = rng(2);
        for _ in 0..200 {
            assert_eq!(roulette_wheel(&weights, &mut r), 1);
        }
    }

    #[test]
    fn all_zero_weights_fall_back_to_uniform() {
        let weights = [0.0, 0.0, 0.0, 0.0];
        let mut r = rng(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(roulette_wheel(&weights, &mut r));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    #[should_panic(expected = "empty population")]
    fn empty_weights_panic() {
        let mut r = rng(4);
        let _ = roulette_wheel(&[], &mut r);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weights_panic() {
        let mut r = rng(5);
        let _ = roulette_wheel(&[1.0, -0.5], &mut r);
    }

    #[test]
    fn pair_selection_returns_distinct_indices() {
        let weights = [1.0, 1.0, 1.0, 1.0];
        let mut r = rng(6);
        for _ in 0..100 {
            let (a, b) = roulette_wheel_pair(&weights, &mut r);
            assert_ne!(a, b);
        }
    }

    #[test]
    fn pair_selection_handles_single_gene_and_degenerate_mass() {
        let mut r = rng(7);
        assert_eq!(roulette_wheel_pair(&[2.0], &mut r), (0, 0));
        let degenerate = [0.0, 0.0, 7.0];
        for _ in 0..50 {
            let (a, b) = roulette_wheel_pair(&degenerate, &mut r);
            assert_ne!(a, b);
            assert!(a == 2 || b == 2);
        }
    }
}
