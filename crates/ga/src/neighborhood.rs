//! Restricted local neighborhood search (Algorithm 1 of the paper).
//!
//! Given the top-N genes of the population, the neighborhood of a gene is the
//! set of programs obtained by replacing a single statement with every other
//! DSL function. The search checks each neighbor against the specification;
//! its cost is `O(N · len(ζ) · |Σ_DSL|)` candidate programs, dramatically
//! smaller than an unrestricted breadth-first search of the program space.

use crate::budget::BudgetSource;
use crate::cancel::CancelToken;
use crate::config::NeighborhoodStrategy;
use netsyn_dsl::{DomainId, IoSpec, Program};
use netsyn_fitness::cache::{resolve_batch, SpecScores};
use netsyn_fitness::{FitnessCache, FitnessFunction, TraceEncodingCache};

/// Outcome of one neighborhood-search invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodOutcome {
    /// The equivalent program, if one was found in the neighborhood.
    pub solution: Option<Program>,
    /// Number of candidate programs evaluated during the search.
    pub candidates_evaluated: usize,
}

/// Searches the neighborhoods of `genes` for a program satisfying `spec`.
///
/// * [`NeighborhoodStrategy::Bfs`] checks every single-function replacement of
///   every gene (Algorithm 1).
/// * [`NeighborhoodStrategy::Dfs`] walks positions left to right and, after
///   exploring a position, commits the gene to the best-scoring neighbor
///   before moving to the next position (the paper's DFS variant).
/// * [`NeighborhoodStrategy::Disabled`] returns immediately.
///
/// The DFS variant serves previously-scored neighbors from `memo` — the same
/// spec-keyed [`SpecScores`] shard the engine's generation loop uses — and
/// inserts what it scores, so repeated saturation events (and warm runs of
/// the same task) never re-score a program; fresh scores go through
/// [`FitnessFunction::score_batch_cached`] with the `traces` encoding shard.
/// Cached scores are bit-identical to recomputed ones, so the committed
/// descent is unchanged. Budget accounting is cache-independent: every
/// neighbor *checked* consumes budget, cached or not.
///
/// Every candidate checked is drawn from `budget`; the search stops early when
/// the budget is exhausted.
///
/// `persist`, when given, is the owning [`FitnessCache`]: the DFS variant
/// ticks its periodic-flush clock after each explored position, so a long
/// saturation-triggered search keeps the durable tier as current as the
/// generation loop does (a no-op for in-memory caches).
///
/// `budget` may be a locally owned [`crate::SearchBudget`] (the
/// deterministic engine path) or a cross-strategy [`crate::SharedBudget`]
/// (a portfolio race). `cancel`, when given, is checked between positions:
/// a fired token stops the search within one position's neighborhood and
/// reports the candidates evaluated so far.
#[allow(clippy::too_many_arguments)]
pub fn search<F, B>(
    genes: &[Program],
    spec: &IoSpec,
    strategy: NeighborhoodStrategy,
    domain: DomainId,
    fitness: &F,
    budget: &mut B,
    memo: &SpecScores,
    traces: &TraceEncodingCache,
    persist: Option<&FitnessCache>,
    cancel: Option<&CancelToken>,
) -> NeighborhoodOutcome
where
    F: FitnessFunction + ?Sized,
    B: BudgetSource + ?Sized,
{
    match strategy {
        NeighborhoodStrategy::Disabled => NeighborhoodOutcome {
            solution: None,
            candidates_evaluated: 0,
        },
        NeighborhoodStrategy::Bfs => bfs_search(genes, spec, domain, budget, cancel),
        NeighborhoodStrategy::Dfs => dfs_search(
            genes, spec, domain, fitness, budget, memo, traces, persist, cancel,
        ),
    }
}

fn is_cancelled(cancel: Option<&CancelToken>) -> bool {
    cancel.is_some_and(CancelToken::is_cancelled)
}

/// Descending-preference comparison for neighbor scores with a total,
/// NaN-ranks-last policy: a NaN-scoring neighbor must never be committed as
/// the DFS descent point when any real-scored neighbor exists (the engine's
/// *gene* ranking is deliberately NaN-first to be loud; here a NaN winning
/// position 0 would silently poison the rest of the descent — `score > NaN`
/// is false for every later neighbor). Among NaNs, `total_cmp` keeps the
/// order deterministic whatever the sign bit; real-vs-real defers to the
/// usual IEEE order, preserving the original first-strictly-greatest-wins
/// trajectory bit for bit.
fn neighbor_score_cmp(a: f64, b: f64) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match (a.is_nan(), b.is_nan()) {
        (true, true) => a.total_cmp(&b),
        (true, false) => Ordering::Less,
        (false, true) => Ordering::Greater,
        // netsyn-lint: allow(partial-cmp-unwrap) — the match arms above dispatch every NaN combination, so both operands are non-NaN here
        (false, false) => a.partial_cmp(&b).expect("both scores are non-NaN"),
    }
}

fn bfs_search<B: BudgetSource + ?Sized>(
    genes: &[Program],
    spec: &IoSpec,
    domain: DomainId,
    budget: &mut B,
    cancel: Option<&CancelToken>,
) -> NeighborhoodOutcome {
    let mut evaluated = 0usize;
    for gene in genes {
        for position in 0..gene.len() {
            if is_cancelled(cancel) {
                return NeighborhoodOutcome {
                    solution: None,
                    candidates_evaluated: evaluated,
                };
            }
            let current = gene.get(position).expect("position in range");
            for &replacement in domain.vocab() {
                if replacement == current {
                    continue;
                }
                if !budget.try_consume() {
                    return NeighborhoodOutcome {
                        solution: None,
                        candidates_evaluated: evaluated,
                    };
                }
                evaluated += 1;
                let neighbor = gene.with_replaced(position, replacement);
                if spec.is_satisfied_by(&neighbor) {
                    return NeighborhoodOutcome {
                        solution: Some(neighbor),
                        candidates_evaluated: evaluated,
                    };
                }
            }
        }
    }
    NeighborhoodOutcome {
        solution: None,
        candidates_evaluated: evaluated,
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs_search<F, B>(
    genes: &[Program],
    spec: &IoSpec,
    domain: DomainId,
    fitness: &F,
    budget: &mut B,
    memo: &SpecScores,
    traces: &TraceEncodingCache,
    persist: Option<&FitnessCache>,
    cancel: Option<&CancelToken>,
) -> NeighborhoodOutcome
where
    F: FitnessFunction + ?Sized,
    B: BudgetSource + ?Sized,
{
    let mut evaluated = 0usize;
    for gene in genes {
        let mut current_gene = gene.clone();
        for position in 0..current_gene.len() {
            if is_cancelled(cancel) {
                return NeighborhoodOutcome {
                    solution: None,
                    candidates_evaluated: evaluated,
                };
            }
            match explore_position(
                &current_gene,
                position,
                spec,
                domain,
                fitness,
                budget,
                memo,
                traces,
                &mut evaluated,
            ) {
                PositionOutcome::Solved(solution) => {
                    return NeighborhoodOutcome {
                        solution: Some(solution),
                        candidates_evaluated: evaluated,
                    };
                }
                PositionOutcome::Exhausted => {
                    return NeighborhoodOutcome {
                        solution: None,
                        candidates_evaluated: evaluated,
                    };
                }
                PositionOutcome::Committed(descended) => current_gene = descended,
            }
            if let Some(cache) = persist {
                cache.maybe_periodic_flush();
            }
        }
    }
    NeighborhoodOutcome {
        solution: None,
        candidates_evaluated: evaluated,
    }
}

/// What exploring one position's neighborhood produced.
pub(crate) enum PositionOutcome {
    /// A neighbor satisfied the specification.
    Solved(Program),
    /// The budget ran dry mid-neighborhood.
    Exhausted,
    /// No solution; the gene committed to the best-scoring neighbor (or
    /// stayed unchanged when the position has no neighbors).
    Committed(Program),
}

/// Explores a single `(gene, position)` DFS neighborhood: checks every
/// single-function replacement at `position` against the specification, then
/// commits the gene to the best-scoring neighbor (the paper's per-level
/// commitment). This is the DFS search's unit of work — the engine's
/// saturation path runs it in a loop, and the portfolio's DFS strategy runs
/// exactly one call per [`crate::SearchStrategy::step`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn explore_position<F, B>(
    current_gene: &Program,
    position: usize,
    spec: &IoSpec,
    domain: DomainId,
    fitness: &F,
    budget: &mut B,
    memo: &SpecScores,
    traces: &TraceEncodingCache,
    evaluated: &mut usize,
) -> PositionOutcome
where
    F: FitnessFunction + ?Sized,
    B: BudgetSource + ?Sized,
{
    let current = current_gene.get(position).expect("position in range");
    // Collect the whole position's neighborhood first (checking
    // satisfaction along the way), then rank it with one batched
    // fitness call instead of ~|Σ| single-candidate network passes.
    let mut neighbors: Vec<Program> = Vec::with_capacity(domain.vocab_len());
    for &replacement in domain.vocab() {
        if replacement == current {
            continue;
        }
        if !budget.try_consume() {
            return PositionOutcome::Exhausted;
        }
        *evaluated += 1;
        let neighbor = current_gene.with_replaced(position, replacement);
        if spec.is_satisfied_by(&neighbor) {
            return PositionOutcome::Solved(neighbor);
        }
        neighbors.push(neighbor);
    }
    let scores = rank_neighbors(&neighbors, spec, fitness, memo, traces);
    // First-strictly-greatest wins, matching the original
    // one-at-a-time comparison order over the domain vocabulary; NaN
    // scores rank last (see `neighbor_score_cmp`).
    let mut best: Option<(usize, f64)> = None;
    for (index, &score) in scores.iter().enumerate() {
        if best.is_none_or(|(_, best_score)| {
            neighbor_score_cmp(score, best_score) == std::cmp::Ordering::Greater
        }) {
            best = Some((index, score));
        }
    }
    // The paper's DFS variant replaces ζ with the best-scoring gene
    // of the neighborhood before descending to the next position.
    match best {
        Some((index, _)) => PositionOutcome::Committed(neighbors.swap_remove(index)),
        None => PositionOutcome::Committed(current_gene.clone()),
    }
}

/// Scores a position's neighborhood through the shared fitness memo: cached
/// neighbors are served without a network pass, the rest go through one
/// [`FitnessFunction::score_batch_cached`] call and are published for future
/// saturation events and runs. All neighbors of a position are distinct
/// programs, so the batch needs no internal dedup.
///
/// Scores land by neighbor index whatever thread computed them, so the
/// ranking below is thread-count-independent. Under the claim protocol
/// ([`netsyn_fitness::cache::resolve_batch`]) concurrent runs sharing the
/// shard avoid scoring the same neighbor twice: losers of a claim race
/// wait for the winner's bit-identical value (re-claiming if the winner
/// panicked and abandoned; recomputing locally only in the no-block escape
/// documented on `resolve_score`).
fn rank_neighbors<F: FitnessFunction + ?Sized>(
    neighbors: &[Program],
    spec: &IoSpec,
    fitness: &F,
    memo: &SpecScores,
    traces: &TraceEncodingCache,
) -> Vec<f64> {
    resolve_batch(memo, neighbors, |batch| {
        fitness.score_batch_cached(batch, spec, traces)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchBudget;
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};
    use netsyn_fitness::{ClosenessMetric, EditDistanceFitness, OracleFitness};
    use std::sync::Mutex;

    /// `search` with throwaway memo/trace shards, for tests that do not
    /// exercise caching.
    fn search_uncached<F: FitnessFunction + ?Sized>(
        genes: &[Program],
        spec: &IoSpec,
        strategy: NeighborhoodStrategy,
        fitness: &F,
        budget: &mut SearchBudget,
    ) -> NeighborhoodOutcome {
        search(
            genes,
            spec,
            strategy,
            DomainId::List,
            fitness,
            budget,
            &SpecScores::default(),
            &TraceEncodingCache::new(),
            None,
            None,
        )
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    fn one_off_candidate() -> Program {
        // Differs from the target in exactly one position.
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sum,
            Function::Reverse,
        ])
    }

    #[test]
    fn bfs_finds_a_solution_one_replacement_away() {
        let mut budget = SearchBudget::new(100_000);
        let outcome = search_uncached(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        let solution = outcome
            .solution
            .expect("solution should be in the neighborhood");
        assert!(spec().is_satisfied_by(&solution));
        assert!(outcome.candidates_evaluated > 0);
        assert_eq!(budget.evaluated(), outcome.candidates_evaluated);
        // Complexity bound: at most len * (|Σ|-1) candidates for one gene.
        assert!(outcome.candidates_evaluated <= 4 * 40);
    }

    #[test]
    fn dfs_finds_a_solution_one_replacement_away() {
        let mut budget = SearchBudget::new(100_000);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let outcome = search_uncached(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Dfs,
            &oracle,
            &mut budget,
        );
        assert!(outcome.solution.is_some());
        assert!(spec().is_satisfied_by(&outcome.solution.unwrap()));
    }

    #[test]
    fn dfs_can_fix_two_mistakes_with_a_good_fitness() {
        // Two positions are wrong; BFS over single replacements cannot find
        // the target, but DFS commits to the best single fix and then fixes
        // the second position.
        let two_off = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Head,
            Function::Sum,
            Function::Reverse,
        ]);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(100_000);
        let bfs = search_uncached(
            std::slice::from_ref(&two_off),
            &spec(),
            NeighborhoodStrategy::Bfs,
            &oracle,
            &mut budget,
        );
        assert!(
            bfs.solution.is_none(),
            "BFS cannot fix two mistakes at once"
        );
        let mut budget = SearchBudget::new(100_000);
        let dfs = search_uncached(
            &[two_off],
            &spec(),
            NeighborhoodStrategy::Dfs,
            &oracle,
            &mut budget,
        );
        assert!(
            dfs.solution.is_some(),
            "DFS with an oracle fitness should repair both mistakes"
        );
    }

    #[test]
    fn disabled_strategy_does_nothing() {
        let mut budget = SearchBudget::new(10);
        let outcome = search_uncached(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Disabled,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert_eq!(outcome.solution, None);
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(budget.evaluated(), 0);
    }

    #[test]
    fn search_respects_the_budget() {
        let mut budget = SearchBudget::new(10);
        let outcome = search_uncached(
            &[Program::new(vec![Function::Head; 4])],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert_eq!(outcome.candidates_evaluated, 10);
        assert!(budget.is_exhausted());
        assert!(outcome.solution.is_none());
    }

    #[test]
    fn unsolvable_neighborhood_reports_all_candidates() {
        // A gene far from the target: the whole neighborhood is evaluated.
        let far = Program::new(vec![
            Function::Head,
            Function::Last,
            Function::Sum,
            Function::Head,
        ]);
        let mut budget = SearchBudget::new(100_000);
        let outcome = search_uncached(
            &[far],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert!(outcome.solution.is_none());
        assert_eq!(outcome.candidates_evaluated, 4 * 40);
    }

    /// A fitness that scores programs by their leading function and records
    /// every program it is asked to score.
    struct RiggedFitness {
        poison: Function,
        reward: Function,
        scored: Mutex<Vec<Program>>,
    }

    impl FitnessFunction for RiggedFitness {
        fn name(&self) -> &str {
            "rigged"
        }

        fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
            self.scored.lock().unwrap().push(candidate.clone());
            let first = candidate.functions()[0];
            if first == self.poison {
                f64::NAN
            } else if first == self.reward {
                2.0
            } else {
                1.0
            }
        }

        fn max_score(&self) -> f64 {
            2.0
        }
    }

    #[test]
    fn dfs_never_commits_a_nan_neighbor_over_a_real_one() {
        // Regression test for the NaN-unsafe best-neighbor selection: the
        // first neighbor of position 0 scores NaN, and `score > NaN` is
        // false for every later neighbor, so the old code committed the
        // NaN-scoring gene as the descent point for the whole neighborhood.
        let gene = Program::new(vec![Function::Head, Function::Last]);
        // The first two replacement candidates for position 0, in
        // Function::ALL order.
        let mut replacements = Function::ALL
            .iter()
            .copied()
            .filter(|&f| f != Function::Head);
        let poison = replacements.next().unwrap();
        let reward = replacements.next().unwrap();
        let fitness = RiggedFitness {
            poison,
            reward,
            scored: Mutex::new(Vec::new()),
        };
        let mut budget = SearchBudget::new(100_000);
        let outcome = search_uncached(
            std::slice::from_ref(&gene),
            &spec(),
            NeighborhoodStrategy::Dfs,
            &fitness,
            &mut budget,
        );
        assert!(outcome.solution.is_none(), "nothing satisfies the spec");
        // The programs scored while exploring position 1 reveal which
        // neighbor position 0 committed to: their second statement differs
        // from the original gene's.
        let scored = fitness.scored.lock().unwrap();
        let position_one: Vec<&Program> = scored
            .iter()
            .filter(|p| p.functions()[1] != Function::Last)
            .collect();
        assert!(
            !position_one.is_empty(),
            "position 1 must have been explored"
        );
        for program in &position_one {
            assert_eq!(
                program.functions()[0],
                reward,
                "DFS must descend from the best real-scored neighbor, \
                 not the NaN-scoring one"
            );
        }
    }

    /// A deterministic fitness that counts how many candidates it scores.
    struct CountingFitness {
        scored: Mutex<usize>,
    }

    impl FitnessFunction for CountingFitness {
        fn name(&self) -> &str {
            "counting"
        }

        fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
            *self.scored.lock().unwrap() += 1;
            let weight: usize = candidate.functions().iter().map(|f| f.index()).sum();
            (weight % 7) as f64
        }

        fn max_score(&self) -> f64 {
            6.0
        }
    }

    #[test]
    fn warm_memo_skips_dfs_rescoring_with_unchanged_outcome() {
        // The DFS search reads and fills the same spec-keyed score shard as
        // the engine's generation loop: a second saturation event over the
        // same genes re-scores nothing, while budget accounting and the
        // outcome stay bit-identical.
        let genes = [
            Program::new(vec![
                Function::Head,
                Function::Last,
                Function::Sum,
                Function::Head,
            ]),
            one_off_candidate(),
        ];
        let fitness = CountingFitness {
            scored: Mutex::new(0),
        };
        let memo = SpecScores::default();
        let traces = TraceEncodingCache::new();
        let mut cold_budget = SearchBudget::new(100_000);
        let cold = search(
            &genes,
            &spec(),
            NeighborhoodStrategy::Dfs,
            DomainId::List,
            &fitness,
            &mut cold_budget,
            &memo,
            &traces,
            None,
            None,
        );
        let cold_scored = *fitness.scored.lock().unwrap();
        assert!(cold_scored > 0, "the cold search must score neighbors");
        assert!(!memo.is_empty(), "scored neighbors must be inserted");

        let mut warm_budget = SearchBudget::new(100_000);
        let warm = search(
            &genes,
            &spec(),
            NeighborhoodStrategy::Dfs,
            DomainId::List,
            &fitness,
            &mut warm_budget,
            &memo,
            &traces,
            None,
            None,
        );
        assert_eq!(
            *fitness.scored.lock().unwrap(),
            cold_scored,
            "a warm memo must serve every neighbor without re-scoring"
        );
        assert_eq!(warm, cold, "a warm memo must not change the outcome");
        assert_eq!(
            warm_budget.evaluated(),
            cold_budget.evaluated(),
            "budget accounting is cache-independent"
        );
    }
}
