//! Restricted local neighborhood search (Algorithm 1 of the paper).
//!
//! Given the top-N genes of the population, the neighborhood of a gene is the
//! set of programs obtained by replacing a single statement with every other
//! DSL function. The search checks each neighbor against the specification;
//! its cost is `O(N · len(ζ) · |Σ_DSL|)` candidate programs, dramatically
//! smaller than an unrestricted breadth-first search of the program space.

use crate::budget::SearchBudget;
use crate::config::NeighborhoodStrategy;
use netsyn_dsl::{Function, IoSpec, Program};
use netsyn_fitness::FitnessFunction;

/// Outcome of one neighborhood-search invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct NeighborhoodOutcome {
    /// The equivalent program, if one was found in the neighborhood.
    pub solution: Option<Program>,
    /// Number of candidate programs evaluated during the search.
    pub candidates_evaluated: usize,
}

/// Searches the neighborhoods of `genes` for a program satisfying `spec`.
///
/// * [`NeighborhoodStrategy::Bfs`] checks every single-function replacement of
///   every gene (Algorithm 1).
/// * [`NeighborhoodStrategy::Dfs`] walks positions left to right and, after
///   exploring a position, commits the gene to the best-scoring neighbor
///   before moving to the next position (the paper's DFS variant).
/// * [`NeighborhoodStrategy::Disabled`] returns immediately.
///
/// Every candidate checked is drawn from `budget`; the search stops early when
/// the budget is exhausted.
pub fn search<F: FitnessFunction + ?Sized>(
    genes: &[Program],
    spec: &IoSpec,
    strategy: NeighborhoodStrategy,
    fitness: &F,
    budget: &mut SearchBudget,
) -> NeighborhoodOutcome {
    match strategy {
        NeighborhoodStrategy::Disabled => NeighborhoodOutcome {
            solution: None,
            candidates_evaluated: 0,
        },
        NeighborhoodStrategy::Bfs => bfs_search(genes, spec, budget),
        NeighborhoodStrategy::Dfs => dfs_search(genes, spec, fitness, budget),
    }
}

fn bfs_search(genes: &[Program], spec: &IoSpec, budget: &mut SearchBudget) -> NeighborhoodOutcome {
    let mut evaluated = 0usize;
    for gene in genes {
        for position in 0..gene.len() {
            let current = gene.get(position).expect("position in range");
            for replacement in Function::ALL {
                if replacement == current {
                    continue;
                }
                if !budget.try_consume() {
                    return NeighborhoodOutcome {
                        solution: None,
                        candidates_evaluated: evaluated,
                    };
                }
                evaluated += 1;
                let neighbor = gene.with_replaced(position, replacement);
                if spec.is_satisfied_by(&neighbor) {
                    return NeighborhoodOutcome {
                        solution: Some(neighbor),
                        candidates_evaluated: evaluated,
                    };
                }
            }
        }
    }
    NeighborhoodOutcome {
        solution: None,
        candidates_evaluated: evaluated,
    }
}

fn dfs_search<F: FitnessFunction + ?Sized>(
    genes: &[Program],
    spec: &IoSpec,
    fitness: &F,
    budget: &mut SearchBudget,
) -> NeighborhoodOutcome {
    let mut evaluated = 0usize;
    let mut neighbors: Vec<Program> = Vec::with_capacity(Function::ALL.len());
    for gene in genes {
        let mut current_gene = gene.clone();
        for position in 0..current_gene.len() {
            let current = current_gene.get(position).expect("position in range");
            // Collect the whole position's neighborhood first (checking
            // satisfaction along the way), then rank it with one batched
            // fitness call instead of ~|Σ| single-candidate network passes.
            neighbors.clear();
            for replacement in Function::ALL {
                if replacement == current {
                    continue;
                }
                if !budget.try_consume() {
                    return NeighborhoodOutcome {
                        solution: None,
                        candidates_evaluated: evaluated,
                    };
                }
                evaluated += 1;
                let neighbor = current_gene.with_replaced(position, replacement);
                if spec.is_satisfied_by(&neighbor) {
                    return NeighborhoodOutcome {
                        solution: Some(neighbor),
                        candidates_evaluated: evaluated,
                    };
                }
                neighbors.push(neighbor);
            }
            let scores = fitness.score_batch(&neighbors, spec);
            // First-strictly-greatest wins, matching the original
            // one-at-a-time comparison order over Function::ALL.
            let mut best: Option<(usize, f64)> = None;
            for (index, &score) in scores.iter().enumerate() {
                if best.is_none_or(|(_, best_score)| score > best_score) {
                    best = Some((index, score));
                }
            }
            // The paper's DFS variant replaces ζ with the best-scoring gene
            // of the neighborhood before descending to the next position.
            if let Some((index, _)) = best {
                current_gene = neighbors.swap_remove(index);
            }
        }
    }
    NeighborhoodOutcome {
        solution: None,
        candidates_evaluated: evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp, Value};
    use netsyn_fitness::{ClosenessMetric, EditDistanceFitness, OracleFitness};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    fn one_off_candidate() -> Program {
        // Differs from the target in exactly one position.
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sum,
            Function::Reverse,
        ])
    }

    #[test]
    fn bfs_finds_a_solution_one_replacement_away() {
        let mut budget = SearchBudget::new(100_000);
        let outcome = search(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        let solution = outcome
            .solution
            .expect("solution should be in the neighborhood");
        assert!(spec().is_satisfied_by(&solution));
        assert!(outcome.candidates_evaluated > 0);
        assert_eq!(budget.evaluated(), outcome.candidates_evaluated);
        // Complexity bound: at most len * (|Σ|-1) candidates for one gene.
        assert!(outcome.candidates_evaluated <= 4 * 40);
    }

    #[test]
    fn dfs_finds_a_solution_one_replacement_away() {
        let mut budget = SearchBudget::new(100_000);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let outcome = search(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Dfs,
            &oracle,
            &mut budget,
        );
        assert!(outcome.solution.is_some());
        assert!(spec().is_satisfied_by(&outcome.solution.unwrap()));
    }

    #[test]
    fn dfs_can_fix_two_mistakes_with_a_good_fitness() {
        // Two positions are wrong; BFS over single replacements cannot find
        // the target, but DFS commits to the best single fix and then fixes
        // the second position.
        let two_off = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Head,
            Function::Sum,
            Function::Reverse,
        ]);
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let mut budget = SearchBudget::new(100_000);
        let bfs = search(
            std::slice::from_ref(&two_off),
            &spec(),
            NeighborhoodStrategy::Bfs,
            &oracle,
            &mut budget,
        );
        assert!(
            bfs.solution.is_none(),
            "BFS cannot fix two mistakes at once"
        );
        let mut budget = SearchBudget::new(100_000);
        let dfs = search(
            &[two_off],
            &spec(),
            NeighborhoodStrategy::Dfs,
            &oracle,
            &mut budget,
        );
        assert!(
            dfs.solution.is_some(),
            "DFS with an oracle fitness should repair both mistakes"
        );
    }

    #[test]
    fn disabled_strategy_does_nothing() {
        let mut budget = SearchBudget::new(10);
        let outcome = search(
            &[one_off_candidate()],
            &spec(),
            NeighborhoodStrategy::Disabled,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert_eq!(outcome.solution, None);
        assert_eq!(outcome.candidates_evaluated, 0);
        assert_eq!(budget.evaluated(), 0);
    }

    #[test]
    fn search_respects_the_budget() {
        let mut budget = SearchBudget::new(10);
        let outcome = search(
            &[Program::new(vec![Function::Head; 4])],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert_eq!(outcome.candidates_evaluated, 10);
        assert!(budget.is_exhausted());
        assert!(outcome.solution.is_none());
    }

    #[test]
    fn unsolvable_neighborhood_reports_all_candidates() {
        // A gene far from the target: the whole neighborhood is evaluated.
        let far = Program::new(vec![
            Function::Head,
            Function::Last,
            Function::Sum,
            Function::Head,
        ]);
        let mut budget = SearchBudget::new(100_000);
        let outcome = search(
            &[far],
            &spec(),
            NeighborhoodStrategy::Bfs,
            &EditDistanceFitness::new(),
            &mut budget,
        );
        assert!(outcome.solution.is_none());
        assert_eq!(outcome.candidates_evaluated, 4 * 40);
    }
}
