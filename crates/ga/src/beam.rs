//! Stepwise beam search over partial programs, guided by a probability map.
//!
//! This is the PCCoder-style search (Zohar & Wolf, NeurIPS 2018) lifted out
//! of the baselines crate so the portfolio orchestrator can race it against
//! the GA islands and the DFS neighborhood strategy: a partial program is
//! extended one statement at a time, extensions are ranked by the guidance
//! model's probability mass plus a state heuristic (how similar the partial
//! program's outputs already are to the expected outputs), and the beam
//! widens when a pass fails — complete anytime beam search (CAB).
//!
//! [`BeamSearch`] is *resumable*: each [`BeamSearch::step_level`] call
//! expands exactly one depth level (or performs one CAB widening restart),
//! which is the unit of work the [`crate::SearchStrategy`] contract
//! schedules and the unit within which cancellation is honored. The
//! `pccoder` baseline drives the same state machine to completion in a
//! loop, so baseline behavior is unchanged by the extraction.

use crate::budget::BudgetSource;
use crate::cancel::CancelToken;
use netsyn_dsl::{DomainId, IoSpec, Program};
use netsyn_fitness::metrics::output_similarity;
use netsyn_fitness::ProbabilityMap;

/// Width schedule of the complete anytime beam search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeamConfig {
    /// Beam width of the first pass.
    pub initial_width: usize,
    /// Hard cap the width doubles up to before the search gives up.
    pub max_width: usize,
}

impl Default for BeamConfig {
    fn default() -> Self {
        BeamConfig {
            initial_width: 8,
            max_width: 4096,
        }
    }
}

/// Scores a partial program: guidance mass of its functions plus the average
/// similarity between its current outputs and the expected outputs (the
/// "state" heuristic).
#[must_use]
pub fn guided_partial_score(partial: &Program, spec: &IoSpec, map: &ProbabilityMap) -> f64 {
    let guidance_score = map.score(partial);
    let state_score: f64 = spec
        .iter()
        .map(|example| {
            partial
                .output(&example.inputs)
                .map(|out| output_similarity(&out, &example.output))
                .unwrap_or(0.0)
        })
        .sum::<f64>()
        / spec.len().max(1) as f64;
    guidance_score + state_score
}

/// What one [`BeamSearch::step_level`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum BeamStep {
    /// A full-length extension satisfied the specification.
    Solved(Program),
    /// The level was expanded (or the beam widened); more work remains.
    Continue,
    /// The search is over without a solution: budget denied, width cap
    /// reached, or cancellation observed.
    Finished,
}

/// A resumable CAB beam search over programs of a fixed target length.
pub struct BeamSearch<'a> {
    spec: &'a IoSpec,
    domain: DomainId,
    target_length: usize,
    map: ProbabilityMap,
    config: BeamConfig,
    beam: Vec<(Program, f64)>,
    width: usize,
    depth: usize,
    evaluated: usize,
    finished: bool,
}

impl<'a> BeamSearch<'a> {
    /// Creates a search for a program of `target_length` statements
    /// satisfying `spec`, ranking extensions with `map`.
    #[must_use]
    pub fn new(
        spec: &'a IoSpec,
        domain: DomainId,
        target_length: usize,
        map: ProbabilityMap,
        config: BeamConfig,
    ) -> Self {
        BeamSearch {
            spec,
            domain,
            target_length,
            map,
            config,
            beam: vec![(Program::default(), 0.0)],
            width: config.initial_width.max(1),
            depth: 0,
            evaluated: 0,
            finished: target_length == 0,
        }
    }

    /// Candidates this search has drawn from its budget so far.
    #[must_use]
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Whether the search has terminated (solved or given up).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// The highest-ranked partial program currently on the beam.
    #[must_use]
    pub fn best_partial(&self) -> Option<&Program> {
        self.beam.first().map(|(program, _)| program)
    }

    /// Expands one depth level: every beam entry is extended by every DSL
    /// function, full-length extensions are checked against the
    /// specification, and the `width` best-scoring extensions survive. A
    /// pass that completes the target length without a solution restarts
    /// with a doubled width (CAB) until the budget runs dry or the width
    /// cap is reached. A fired `cancel` token finishes the search before
    /// any expansion.
    pub fn step_level<B: BudgetSource + ?Sized>(
        &mut self,
        budget: &mut B,
        cancel: Option<&CancelToken>,
    ) -> BeamStep {
        if self.finished {
            return BeamStep::Finished;
        }
        if cancel.is_some_and(CancelToken::is_cancelled) {
            self.finished = true;
            return BeamStep::Finished;
        }
        let mut extensions: Vec<(Program, f64)> = Vec::new();
        for (partial, _) in &self.beam {
            for &function in self.domain.vocab() {
                let mut functions = partial.functions().to_vec();
                functions.push(function);
                let extended = Program::new(functions);
                if !budget.try_consume() {
                    self.finished = true;
                    return BeamStep::Finished;
                }
                self.evaluated += 1;
                if self.depth + 1 == self.target_length && self.spec.is_satisfied_by(&extended) {
                    self.finished = true;
                    return BeamStep::Solved(extended);
                }
                let score = guided_partial_score(&extended, self.spec, &self.map);
                extensions.push((extended, score));
            }
        }
        // total_cmp: a NaN guidance score takes a deterministic extreme
        // position in the beam (positive NaN first, negative last) instead
        // of scrambling the ranking run to run.
        extensions.sort_by(|a, b| b.1.total_cmp(&a.1));
        extensions.truncate(self.width);
        if extensions.is_empty() {
            return self.widen_or_finish(budget);
        }
        self.beam = extensions;
        self.depth += 1;
        if self.depth >= self.target_length {
            // A full pass found nothing satisfying: complete anytime beam
            // search retries from scratch with a doubled width.
            return self.widen_or_finish(budget);
        }
        BeamStep::Continue
    }

    fn widen_or_finish<B: BudgetSource + ?Sized>(&mut self, budget: &B) -> BeamStep {
        if budget.is_exhausted() || self.width >= self.config.max_width {
            self.finished = true;
            return BeamStep::Finished;
        }
        self.width = (self.width * 2).min(self.config.max_width);
        self.beam = vec![(Program::default(), 0.0)];
        self.depth = 0;
        BeamStep::Continue
    }

    /// Runs the search to completion: the baseline-style driver.
    pub fn run<B: BudgetSource + ?Sized>(
        &mut self,
        budget: &mut B,
        cancel: Option<&CancelToken>,
    ) -> Option<Program> {
        loop {
            match self.step_level(budget, cancel) {
                BeamStep::Solved(program) => return Some(program),
                BeamStep::Continue => {}
                BeamStep::Finished => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::SearchBudget;
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    #[test]
    fn informed_beam_finds_the_target() {
        let spec = spec();
        let map = ProbabilityMap::from_target(&target(), 0.01);
        let mut search = BeamSearch::new(&spec, DomainId::List, 3, map, BeamConfig::default());
        let mut budget = SearchBudget::new(200_000);
        let solution = search.run(&mut budget, None);
        let solution = solution.expect("informed guidance finds the target");
        assert!(spec.is_satisfied_by(&solution));
        assert_eq!(search.evaluated(), budget.evaluated());
        assert!(search.is_finished());
    }

    #[test]
    fn beam_respects_the_budget() {
        let spec = spec();
        let map = ProbabilityMap::uniform();
        let mut search = BeamSearch::new(&spec, DomainId::List, 5, map, BeamConfig::default());
        let mut budget = SearchBudget::new(300);
        let solution = search.run(&mut budget, None);
        assert!(search.evaluated() <= 300);
        assert!(budget.is_exhausted() || solution.is_some());
    }

    #[test]
    fn a_fired_token_finishes_the_search_without_expanding() {
        let spec = spec();
        let map = ProbabilityMap::from_target(&target(), 0.01);
        let mut search = BeamSearch::new(&spec, DomainId::List, 3, map, BeamConfig::default());
        let token = CancelToken::new();
        token.cancel();
        let mut budget = SearchBudget::new(200_000);
        assert_eq!(
            search.step_level(&mut budget, Some(&token)),
            BeamStep::Finished
        );
        assert_eq!(search.evaluated(), 0);
        assert_eq!(budget.evaluated(), 0);
        assert!(search.is_finished());
    }

    #[test]
    fn zero_length_target_finishes_immediately() {
        let spec = spec();
        let map = ProbabilityMap::uniform();
        let mut search = BeamSearch::new(&spec, DomainId::List, 0, map, BeamConfig::default());
        let mut budget = SearchBudget::new(100);
        assert_eq!(search.run(&mut budget, None), None);
        assert_eq!(budget.evaluated(), 0);
    }
}
