//! The strategy layer: a uniform step/budget/best-so-far interface over
//! heterogeneous search procedures.
//!
//! A [`SearchStrategy`] is a resumable search whose [`SearchStrategy::step`]
//! performs one bounded unit of work — one generation across all GA islands,
//! one DFS `(gene, position)` neighborhood, one beam depth level — drawing
//! candidates from a [`SharedBudget`] and honoring a [`CancelToken`]. The
//! portfolio orchestrator (in `netsyn-core`) races strategies by stepping
//! each on its own pool worker until the first one reports
//! [`StepStatus::Solved`], then fires the token; every other strategy
//! observes it at its next step boundary and stops within that one unit of
//! work.
//!
//! Because all strategies of a race draw from one shared atomic budget, the
//! total number of candidates evaluated never exceeds the cap — but the
//! admission *order* across strategies is whatever the race produces, so a
//! portfolio run is not deterministic. Determinism-critical paths use the
//! engine's island driver with locally owned budgets instead.

use crate::beam::{BeamSearch, BeamStep};
use crate::budget::SharedBudget;
use crate::cancel::CancelToken;
use crate::island::{self, Island, IslandStatus, SynthesisContext};
use netsyn_dsl::Program;
use netsyn_fitness::{FitnessCache, FitnessFunction};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// What one [`SearchStrategy::step`] call produced.
#[derive(Debug, Clone, PartialEq)]
pub enum StepStatus {
    /// The strategy found a program satisfying the specification.
    Solved(Program),
    /// The step completed; the strategy has more work to do.
    Continue,
    /// The strategy is out of work (budget, search space, or cancellation).
    Done,
}

/// A resumable search procedure the portfolio orchestrator can race.
pub trait SearchStrategy {
    /// A short stable name for reports.
    fn name(&self) -> &str;

    /// Performs one bounded unit of work. Implementations check `cancel`
    /// at entry (and between internal sub-units where natural) and return
    /// [`StepStatus::Done`] once it has fired; they draw every candidate
    /// evaluation from `budget`.
    fn step(&mut self, budget: &SharedBudget, cancel: &CancelToken) -> StepStatus;

    /// Total candidates this strategy has drawn from the budget.
    fn candidates_evaluated(&self) -> usize;

    /// The most promising program found so far, if any.
    fn best_so_far(&self) -> Option<Program>;
}

/// The GA islands as a steppable strategy: one [`step`](SearchStrategy::step)
/// evolves every still-active island by one generation (in index order, on
/// the calling worker) and migrates elites on the configured schedule.
///
/// Unlike the engine's deterministic driver, all islands draw from the
/// race's [`SharedBudget`] — no upfront slicing — so the strategy competes
/// for the same candidate pool as its rivals.
pub struct GaSearchStrategy<'a, F: ?Sized> {
    ctx: SynthesisContext<'a, F>,
    islands: Vec<(Island, ChaCha8Rng)>,
    initialized: bool,
    global_generation: usize,
}

impl<'a, F: FitnessFunction + ?Sized> GaSearchStrategy<'a, F> {
    /// Creates the strategy from the same inputs as the engine; island
    /// RNG streams are seeded from `seed` in index order.
    #[must_use]
    pub fn new(
        config: &'a crate::GaConfig,
        spec: &'a netsyn_dsl::IoSpec,
        fitness: &'a F,
        cache: &'a FitnessCache,
        seed: u64,
    ) -> Self {
        config.validate();
        let ctx = SynthesisContext::new(config, spec, fitness, cache, None);
        let mut master = ChaCha8Rng::seed_from_u64(seed);
        let islands = (0..config.islands)
            .map(|_| {
                (
                    Island::new(config.saturation_window),
                    ChaCha8Rng::seed_from_u64(master.next_u64()),
                )
            })
            .collect();
        GaSearchStrategy {
            ctx,
            islands,
            initialized: false,
            global_generation: 0,
        }
    }

    fn solved(&self) -> Option<Program> {
        self.islands
            .iter()
            .find_map(|(island, _)| match &island.status {
                IslandStatus::Solved { program, .. } => Some(program.clone()),
                _ => None,
            })
    }

    fn any_active(&self) -> bool {
        self.islands
            .iter()
            .any(|(island, _)| island.status == IslandStatus::Active)
    }
}

impl<F: FitnessFunction + ?Sized> SearchStrategy for GaSearchStrategy<'_, F> {
    fn name(&self) -> &str {
        "ga-islands"
    }

    fn step(&mut self, budget: &SharedBudget, cancel: &CancelToken) -> StepStatus {
        if cancel.is_cancelled() {
            return StepStatus::Done;
        }
        if !self.initialized {
            self.initialized = true;
            for (island, rng) in &mut self.islands {
                if cancel.is_cancelled() {
                    return StepStatus::Done;
                }
                island.initialize(&self.ctx, &mut budget.clone(), rng);
            }
        } else {
            for (island, rng) in &mut self.islands {
                if cancel.is_cancelled() {
                    return StepStatus::Done;
                }
                if island.status == IslandStatus::Active {
                    island.step_generation(&self.ctx, &mut budget.clone(), rng);
                }
            }
            self.global_generation += 1;
            if self
                .global_generation
                .is_multiple_of(self.ctx.config.migration_interval)
                && self.solved().is_none()
            {
                let mut active: Vec<&mut Island> = self
                    .islands
                    .iter_mut()
                    .filter(|(island, _)| island.status == IslandStatus::Active)
                    .map(|(island, _)| island)
                    .collect();
                island::migrate_ring(&mut active, self.ctx.config.migration_size);
            }
        }
        if let Some(program) = self.solved() {
            return StepStatus::Solved(program);
        }
        if self.any_active() {
            StepStatus::Continue
        } else {
            StepStatus::Done
        }
    }

    fn candidates_evaluated(&self) -> usize {
        self.islands
            .iter()
            .map(|(island, _)| island.evaluated)
            .sum()
    }

    fn best_so_far(&self) -> Option<Program> {
        let mut best: Option<(&Program, f64)> = None;
        for (island, _) in &self.islands {
            for gene in island.population.genes() {
                let fitness = gene.fitness_or_zero();
                if best.is_none_or(|(_, b)| fitness > b) {
                    best = Some((&gene.program, fitness));
                }
            }
        }
        best.map(|(program, _)| program.clone())
    }
}

/// The DFS neighborhood search as a steppable strategy: one
/// [`step`](SearchStrategy::step) explores a single `(gene, position)`
/// neighborhood and commits the descent gene to its best-scoring neighbor,
/// walking positions left to right through each seed program in turn.
pub struct DfsSearchStrategy<'a, F: ?Sized> {
    ctx: SynthesisContext<'a, F>,
    seeds: Vec<Program>,
    gene_index: usize,
    position: usize,
    current_gene: Option<Program>,
    evaluated: usize,
    exhausted: bool,
}

impl<'a, F: FitnessFunction + ?Sized> DfsSearchStrategy<'a, F> {
    /// Creates the strategy over `seeds`, the programs whose neighborhoods
    /// are explored (typically sampled with [`random_seed_programs`]).
    #[must_use]
    pub fn new(
        config: &'a crate::GaConfig,
        spec: &'a netsyn_dsl::IoSpec,
        fitness: &'a F,
        cache: &'a FitnessCache,
        seeds: Vec<Program>,
    ) -> Self {
        let ctx = SynthesisContext::new(config, spec, fitness, cache, None);
        let current_gene = seeds.first().cloned();
        DfsSearchStrategy {
            ctx,
            seeds,
            gene_index: 0,
            position: 0,
            current_gene,
            evaluated: 0,
            exhausted: false,
        }
    }
}

impl<F: FitnessFunction + ?Sized> SearchStrategy for DfsSearchStrategy<'_, F> {
    fn name(&self) -> &str {
        "dfs-neighborhood"
    }

    fn step(&mut self, budget: &SharedBudget, cancel: &CancelToken) -> StepStatus {
        if cancel.is_cancelled() || self.exhausted {
            return StepStatus::Done;
        }
        let Some(current) = self.current_gene.clone() else {
            return StepStatus::Done;
        };
        if self.position >= current.len() {
            // Advance to the next seed program.
            self.gene_index += 1;
            self.position = 0;
            self.current_gene = self.seeds.get(self.gene_index).cloned();
            return match self.current_gene {
                Some(_) => StepStatus::Continue,
                None => StepStatus::Done,
            };
        }
        match crate::neighborhood::explore_position(
            &current,
            self.position,
            self.ctx.spec,
            self.ctx.config.domain,
            self.ctx.fitness,
            &mut budget.clone(),
            &self.ctx.memo,
            &self.ctx.traces,
            &mut self.evaluated,
        ) {
            crate::neighborhood::PositionOutcome::Solved(program) => StepStatus::Solved(program),
            crate::neighborhood::PositionOutcome::Exhausted => {
                self.exhausted = true;
                StepStatus::Done
            }
            crate::neighborhood::PositionOutcome::Committed(descended) => {
                self.current_gene = Some(descended);
                self.position += 1;
                StepStatus::Continue
            }
        }
    }

    fn candidates_evaluated(&self) -> usize {
        self.evaluated
    }

    fn best_so_far(&self) -> Option<Program> {
        self.current_gene.clone()
    }
}

impl SearchStrategy for BeamSearch<'_> {
    fn name(&self) -> &str {
        "beam"
    }

    fn step(&mut self, budget: &SharedBudget, cancel: &CancelToken) -> StepStatus {
        match self.step_level(&mut budget.clone(), Some(cancel)) {
            BeamStep::Solved(program) => StepStatus::Solved(program),
            BeamStep::Continue => StepStatus::Continue,
            BeamStep::Finished => StepStatus::Done,
        }
    }

    fn candidates_evaluated(&self) -> usize {
        self.evaluated()
    }

    fn best_so_far(&self) -> Option<Program> {
        self.best_partial().cloned()
    }
}

/// Samples `count` random dead-code-free programs of the configured length:
/// the seed genes for a [`DfsSearchStrategy`].
#[must_use]
pub fn random_seed_programs(
    config: &crate::GaConfig,
    spec: &netsyn_dsl::IoSpec,
    count: usize,
    seed: u64,
) -> Vec<Program> {
    let input_types = if spec.is_empty() {
        config.domain.default_input_types().to_vec()
    } else {
        spec.input_types()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..count)
        .map(|_| island::random_program(config, &input_types, &mut rng))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaConfig;
    use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Value};
    use netsyn_fitness::{ClosenessMetric, OracleFitness, ProbabilityMap};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, -5, 7, 2])],
                vec![Value::List(vec![4, 4, -1, 0, 9])],
            ],
        )
    }

    fn run_to_completion<S: SearchStrategy + ?Sized>(
        strategy: &mut S,
        budget: &SharedBudget,
    ) -> Option<Program> {
        let cancel = CancelToken::new();
        loop {
            match strategy.step(budget, &cancel) {
                StepStatus::Solved(program) => return Some(program),
                StepStatus::Continue => {}
                StepStatus::Done => return None,
            }
        }
    }

    #[test]
    fn ga_strategy_solves_the_smoke_spec() {
        let mut config = GaConfig::small(3);
        config.islands = 2;
        let spec = spec();
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let cache = FitnessCache::new();
        let mut strategy = GaSearchStrategy::new(&config, &spec, &oracle, &cache, 1);
        assert_eq!(strategy.name(), "ga-islands");
        let budget = SharedBudget::new(200_000);
        let solution = run_to_completion(&mut strategy, &budget);
        let solution = solution.expect("oracle-guided GA finds the target");
        assert!(spec.is_satisfied_by(&solution));
        assert_eq!(strategy.candidates_evaluated(), budget.evaluated());
    }

    #[test]
    fn dfs_strategy_repairs_a_one_off_seed() {
        let config = GaConfig::small(3);
        let spec = spec();
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let cache = FitnessCache::new();
        let one_off = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sum,
        ]);
        let mut strategy = DfsSearchStrategy::new(&config, &spec, &oracle, &cache, vec![one_off]);
        assert_eq!(strategy.name(), "dfs-neighborhood");
        let budget = SharedBudget::new(100_000);
        let solution = run_to_completion(&mut strategy, &budget);
        assert!(spec.is_satisfied_by(&solution.expect("one replacement away")));
    }

    #[test]
    fn beam_strategy_solves_with_informed_guidance() {
        let spec = spec();
        let map = ProbabilityMap::from_target(&target(), 0.01);
        let mut strategy = BeamSearch::new(
            &spec,
            netsyn_dsl::DomainId::List,
            3,
            map,
            crate::BeamConfig::default(),
        );
        assert_eq!(SearchStrategy::name(&strategy), "beam");
        let budget = SharedBudget::new(200_000);
        let solution = run_to_completion(&mut strategy, &budget);
        assert!(spec.is_satisfied_by(&solution.expect("informed beam solves")));
    }

    #[test]
    fn a_fired_token_stops_every_strategy_at_the_next_step() {
        let config = GaConfig::small(3);
        let spec = spec();
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let cache = FitnessCache::new();
        let seeds = random_seed_programs(&config, &spec, 2, 9);
        let mut ga = GaSearchStrategy::new(&config, &spec, &oracle, &cache, 1);
        let mut dfs = DfsSearchStrategy::new(&config, &spec, &oracle, &cache, seeds);
        let mut beam = BeamSearch::new(
            &spec,
            netsyn_dsl::DomainId::List,
            3,
            ProbabilityMap::uniform(),
            crate::BeamConfig::default(),
        );
        let strategies: Vec<&mut dyn SearchStrategy> = vec![&mut ga, &mut dfs, &mut beam];
        let budget = SharedBudget::new(100_000);
        let cancel = CancelToken::new();
        cancel.cancel();
        for strategy in strategies {
            assert_eq!(strategy.step(&budget, &cancel), StepStatus::Done);
            assert_eq!(strategy.candidates_evaluated(), 0);
        }
        assert_eq!(budget.evaluated(), 0);
    }

    #[test]
    fn shared_budget_caps_the_sum_across_strategies() {
        let config = GaConfig::small(3);
        let spec = spec();
        let oracle = OracleFitness::new(target(), ClosenessMetric::LongestCommonSubsequence);
        let cache = FitnessCache::new();
        let mut ga = GaSearchStrategy::new(&config, &spec, &oracle, &cache, 3);
        let mut dfs = DfsSearchStrategy::new(
            &config,
            &spec,
            &oracle,
            &cache,
            random_seed_programs(&config, &spec, 3, 4),
        );
        let budget = SharedBudget::new(500);
        let cancel = CancelToken::new();
        let mut strategies: Vec<&mut dyn SearchStrategy> = vec![&mut ga, &mut dfs];
        'race: loop {
            let mut all_done = true;
            for strategy in &mut strategies {
                match strategy.step(&budget, &cancel) {
                    StepStatus::Solved(_) => break 'race,
                    StepStatus::Continue => all_done = false,
                    StepStatus::Done => {}
                }
            }
            if all_done {
                break;
            }
        }
        let total: usize = strategies.iter().map(|s| s.candidates_evaluated()).sum();
        assert_eq!(total, budget.evaluated());
        assert!(total <= 500);
    }

    #[test]
    fn seed_programs_are_deterministic_per_seed() {
        let config = GaConfig::small(4);
        let spec = spec();
        let a = random_seed_programs(&config, &spec, 5, 42);
        let b = random_seed_programs(&config, &spec, 5, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        assert!(a.iter().all(|p| p.len() == 4));
    }
}
