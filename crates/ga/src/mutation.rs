//! Point mutation of value-encoded genes.
//!
//! A mutation replaces the function at one position with a *different*
//! function. In `Mutation_FP` mode the replacement is drawn from the fitness
//! function's probability map with the Roulette-Wheel algorithm, and the
//! mutation point itself is biased towards positions holding functions the
//! map considers unlikely — the least promising parts of the gene.

use crate::config::MutationMode;
use netsyn_dsl::{DomainId, Function, Program};
use netsyn_fitness::ProbabilityMap;
use rand::Rng;

/// Mutates one position of `program`, returning a new program. Uniform
/// replacements are drawn from `domain`'s operator vocabulary.
///
/// `map` is consulted only in [`MutationMode::ProbabilityGuided`] mode; when
/// it is `None` the mutation falls back to uniform sampling.
///
/// # Panics
///
/// Panics if `program` is empty.
pub fn point_mutation<R: Rng + ?Sized>(
    program: &Program,
    mode: MutationMode,
    map: Option<&ProbabilityMap>,
    domain: DomainId,
    rng: &mut R,
) -> Program {
    assert!(!program.is_empty(), "cannot mutate an empty program");
    let position = match (mode, map) {
        (MutationMode::ProbabilityGuided, Some(map)) => pick_unlikely_position(program, map, rng),
        _ => rng.gen_range(0..program.len()),
    };
    let current = program.get(position).expect("position is in range");
    let replacement = match (mode, map) {
        (MutationMode::ProbabilityGuided, Some(map)) => map.sample_excluding(rng, current),
        _ => uniform_excluding(current, domain, rng),
    };
    program.with_replaced(position, replacement)
}

/// Samples a uniformly random function of the domain's vocabulary different
/// from `exclude`.
fn uniform_excluding<R: Rng + ?Sized>(
    exclude: Function,
    domain: DomainId,
    rng: &mut R,
) -> Function {
    let vocab = domain.vocab();
    loop {
        let candidate = vocab[rng.gen_range(0..vocab.len())];
        if candidate != exclude {
            return candidate;
        }
    }
}

/// Picks a mutation point with probability proportional to how *unlikely* the
/// probability map considers the function currently at that position.
fn pick_unlikely_position<R: Rng + ?Sized>(
    program: &Program,
    map: &ProbabilityMap,
    rng: &mut R,
) -> usize {
    let weights: Vec<f64> = program
        .functions()
        .iter()
        .map(|f| (1.0 - map.prob(*f)).max(1e-3))
        .collect();
    crate::selection::roulette_wheel(&weights, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn base_program() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    #[test]
    fn mutation_changes_exactly_one_position() {
        let mut r = rng(1);
        for _ in 0..100 {
            let mutated = point_mutation(
                &base_program(),
                MutationMode::UniformRandom,
                None,
                DomainId::List,
                &mut r,
            );
            assert_eq!(mutated.len(), 4);
            let differences = base_program()
                .functions()
                .iter()
                .zip(mutated.functions().iter())
                .filter(|(a, b)| a != b)
                .count();
            assert_eq!(differences, 1);
        }
    }

    #[test]
    fn every_position_is_eventually_mutated() {
        let mut r = rng(2);
        let mut positions = std::collections::HashSet::new();
        for _ in 0..300 {
            let mutated = point_mutation(
                &base_program(),
                MutationMode::UniformRandom,
                None,
                DomainId::List,
                &mut r,
            );
            let pos = base_program()
                .functions()
                .iter()
                .zip(mutated.functions().iter())
                .position(|(a, b)| a != b)
                .unwrap();
            positions.insert(pos);
        }
        assert_eq!(positions.len(), 4);
    }

    #[test]
    fn guided_mutation_prefers_unlikely_positions_and_likely_replacements() {
        // Map: the target's functions are likely; everything else unlikely.
        let target = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Sum,
        ]);
        let map = ProbabilityMap::from_target(&target, 0.01);
        // Candidate shares 3 of 4 functions; REVERSE (position 3) is the
        // outlier and should be mutated most of the time, mostly into a
        // target function.
        let candidate = base_program();
        let mut r = rng(3);
        let mut outlier_mutations = 0;
        let mut into_target = 0;
        let trials = 300;
        for _ in 0..trials {
            let mutated = point_mutation(
                &candidate,
                MutationMode::ProbabilityGuided,
                Some(&map),
                DomainId::List,
                &mut r,
            );
            let pos = candidate
                .functions()
                .iter()
                .zip(mutated.functions().iter())
                .position(|(a, b)| a != b)
                .unwrap();
            if pos == 3 {
                outlier_mutations += 1;
            }
            if target.functions().contains(&mutated.get(pos).unwrap()) {
                into_target += 1;
            }
        }
        assert!(
            outlier_mutations as f64 / trials as f64 > 0.8,
            "only {outlier_mutations}/{trials} mutations hit the unlikely position"
        );
        assert!(
            into_target as f64 / trials as f64 > 0.85,
            "only {into_target}/{trials} replacements came from the probability map"
        );
    }

    #[test]
    fn guided_mode_without_map_falls_back_to_uniform() {
        let mut r = rng(4);
        let mutated = point_mutation(
            &base_program(),
            MutationMode::ProbabilityGuided,
            None,
            DomainId::List,
            &mut r,
        );
        assert_ne!(mutated, base_program());
    }

    #[test]
    #[should_panic(expected = "empty program")]
    fn empty_program_panics() {
        let _ = point_mutation(
            &Program::default(),
            MutationMode::UniformRandom,
            None,
            DomainId::List,
            &mut rng(5),
        );
    }
}
