//! The island layer: per-island evolution state and the deterministic
//! migration schedule.
//!
//! A synthesis shards into `K = GaConfig::islands` island populations. Each
//! island owns its population, saturation detector, fitness histories and —
//! crucially for determinism — its *own* RNG stream and its own fixed slice
//! of the candidate budget:
//!
//! * **RNG streams.** With `K = 1` the island consumes the caller's RNG
//!   directly, which makes the single-island engine draw-for-draw identical
//!   to the historical panmictic loop (pinned by the golden-bytes test in
//!   `tests/warm_cache_determinism.rs`). With `K > 1` the caller's RNG
//!   seeds one `ChaCha8Rng` per island, in island-index order.
//! * **Budget slices.** With `K > 1` the remaining budget is partitioned up
//!   front: `remaining / K` per island, the first `remaining % K` islands
//!   taking one extra. Slices are never rebalanced — an island that solves
//!   early strands its leftover slice. That wastes a little budget but buys
//!   bit-for-bit determinism: no island's admission decisions ever depend
//!   on how fast another island (or pool worker) is running.
//! * **Migration.** Every `migration_interval` generations the islands
//!   synchronize and migrate around a ring: island `i` sends clones of its
//!   `migration_size` fittest genes to island `(i + 1) % K`, which replaces
//!   its worst-ranked genes. Emigrants are snapshotted for *all* islands
//!   before any island is mutated, and replacements are applied in
//!   island-index order, so the merged state is a pure function of the
//!   per-island states.
//!
//! Islands evolve on separate pool workers (`par_chunks_mut(1)`, one
//! stealable task per island) between synchronization points. They share the
//! striped [`SpecScores`] memo and [`TraceEncodingCache`] shard, so a
//! program scored on one island is never re-scored on another — safe because
//! cached scores are bit-identical to recomputed ones, whichever island (or
//! process) computed them first.

use crate::budget::{BudgetSource, SearchBudget};
use crate::cancel::CancelToken;
use crate::config::{GaConfig, NeighborhoodStrategy};
use crate::crossover;
use crate::engine::GaOutcome;
use crate::gene::{Gene, Population};
use crate::mutation;
use crate::neighborhood;
use crate::saturation::SaturationDetector;
use crate::selection;
use netsyn_dsl::dce::has_dead_code;
use netsyn_dsl::{IoSpec, Program, Type};
use netsyn_fitness::cache::{resolve_batch, SpecScores};
use netsyn_fitness::{FitnessCache, FitnessFunction, ProbabilityMap, TraceEncodingCache};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Everything shared by all islands of one synthesis call: the problem, the
/// fitness function and the cache shards. Immutable during evolution, so it
/// can be borrowed concurrently by islands on different pool workers.
pub(crate) struct SynthesisContext<'a, F: ?Sized> {
    pub config: &'a GaConfig,
    pub spec: &'a IoSpec,
    pub fitness: &'a F,
    pub input_types: Vec<Type>,
    pub probability_map: Option<ProbabilityMap>,
    pub memo: Arc<SpecScores>,
    pub traces: Arc<TraceEncodingCache>,
    pub cache: &'a FitnessCache,
    /// Cooperative cancellation, checked at generation and neighborhood
    /// position boundaries. `None` outside portfolio races.
    pub cancel: Option<&'a CancelToken>,
}

impl<'a, F: FitnessFunction + ?Sized> SynthesisContext<'a, F> {
    pub(crate) fn new(
        config: &'a GaConfig,
        spec: &'a IoSpec,
        fitness: &'a F,
        cache: &'a FitnessCache,
        cancel: Option<&'a CancelToken>,
    ) -> Self {
        let input_types = if spec.is_empty() {
            config.domain.default_input_types().to_vec()
        } else {
            spec.input_types()
        };
        SynthesisContext {
            config,
            spec,
            fitness,
            input_types,
            probability_map: fitness.probability_map(spec),
            memo: cache.shard(&fitness.cache_key(), spec),
            traces: cache.trace_shard(&fitness.cache_key()),
            cache,
            cancel,
        }
    }
}

/// Why an island stopped evolving (or `Active` if it has not).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum IslandStatus {
    /// Still evolving.
    Active,
    /// Found a program satisfying the specification.
    Solved {
        program: Program,
        by_neighborhood: bool,
    },
    /// Its budget slice ran dry.
    Exhausted,
    /// Reached `max_generations` without a solution.
    Finished,
    /// Observed a fired cancellation token.
    Cancelled,
}

/// One island population's complete evolution state.
pub(crate) struct Island {
    pub population: Population,
    pub detector: SaturationDetector,
    pub average_history: Vec<f64>,
    pub best_history: Vec<f64>,
    /// Generations this island has completed.
    pub generations: usize,
    /// Candidates this island has drawn from its budget.
    pub evaluated: usize,
    pub initialized: bool,
    pub status: IslandStatus,
}

impl Island {
    pub(crate) fn new(saturation_window: usize) -> Self {
        Island {
            population: Population::default(),
            detector: SaturationDetector::new(saturation_window),
            average_history: Vec::new(),
            best_history: Vec::new(),
            generations: 0,
            evaluated: 0,
            initialized: false,
            status: IslandStatus::Active,
        }
    }

    fn consume<B: BudgetSource + ?Sized>(&mut self, budget: &mut B) -> bool {
        if budget.try_consume() {
            self.evaluated += 1;
            true
        } else {
            false
        }
    }

    /// Fills the initial population with random, dead-code-free genes,
    /// checking each against the specification. May leave the island
    /// `Solved` (a random gene satisfied the spec) or `Exhausted`.
    pub(crate) fn initialize<F, B, R>(
        &mut self,
        ctx: &SynthesisContext<'_, F>,
        budget: &mut B,
        rng: &mut R,
    ) where
        F: FitnessFunction + ?Sized,
        B: BudgetSource + ?Sized,
        R: Rng + ?Sized,
    {
        debug_assert!(!self.initialized);
        self.initialized = true;
        for _ in 0..ctx.config.population_size {
            let program = random_program(ctx.config, &ctx.input_types, rng);
            if !self.consume(budget) {
                self.status = IslandStatus::Exhausted;
                return;
            }
            if ctx.spec.is_satisfied_by(&program) {
                self.status = IslandStatus::Solved {
                    program,
                    by_neighborhood: false,
                };
                return;
            }
            self.population.genes_mut().push(Gene::new(program));
        }
    }

    /// Runs one generation: score the population, record histories, run the
    /// saturation-triggered neighborhood search if due, then breed the next
    /// generation. Transitions `status` out of `Active` on solution, budget
    /// exhaustion, the generation cap, or cancellation.
    pub(crate) fn step_generation<F, B, R>(
        &mut self,
        ctx: &SynthesisContext<'_, F>,
        budget: &mut B,
        rng: &mut R,
    ) where
        F: FitnessFunction + ?Sized,
        B: BudgetSource + ?Sized,
        R: Rng + ?Sized,
    {
        debug_assert_eq!(self.status, IslandStatus::Active);
        if let Some(token) = ctx.cancel {
            if token.is_cancelled() {
                self.status = IslandStatus::Cancelled;
                return;
            }
        }
        if self.generations >= ctx.config.max_generations {
            self.status = IslandStatus::Finished;
            return;
        }
        self.generations += 1;
        evaluate_population(
            &mut self.population,
            ctx.fitness,
            ctx.spec,
            &ctx.memo,
            &ctx.traces,
        );
        // One durable-flush tick per generation: a no-op for in-memory
        // caches, an occasional async append for durable ones.
        ctx.cache.maybe_periodic_flush();
        let average = self.population.average_fitness();
        let best = self.population.best_fitness().unwrap_or(0.0);
        self.average_history.push(average);
        self.best_history.push(best);
        self.detector.record(average);

        // Saturation-triggered restricted local neighborhood search.
        if self.detector.is_saturated() && ctx.config.neighborhood != NeighborhoodStrategy::Disabled
        {
            let top: Vec<Program> = self
                .population
                .top_genes(ctx.config.neighborhood_top_n)
                .into_iter()
                .map(|g| g.program)
                .collect();
            let ns = neighborhood::search(
                &top,
                ctx.spec,
                ctx.config.neighborhood,
                ctx.config.domain,
                ctx.fitness,
                budget,
                &ctx.memo,
                &ctx.traces,
                Some(ctx.cache),
                ctx.cancel,
            );
            self.evaluated += ns.candidates_evaluated;
            self.detector.reset();
            if let Some(solution) = ns.solution {
                self.status = IslandStatus::Solved {
                    program: solution,
                    by_neighborhood: true,
                };
                return;
            }
            if budget.is_exhausted() {
                self.status = IslandStatus::Exhausted;
                return;
            }
        }

        // Breed the next generation.
        match self.breed(ctx, budget, rng) {
            BreedResult::Solution(program) => {
                self.status = IslandStatus::Solved {
                    program,
                    by_neighborhood: false,
                };
                return;
            }
            BreedResult::Exhausted => {
                self.status = IslandStatus::Exhausted;
                return;
            }
            BreedResult::Next(next) => self.population = next,
        }
        if self.generations >= ctx.config.max_generations {
            self.status = IslandStatus::Finished;
        }
    }

    fn breed<F, B, R>(
        &mut self,
        ctx: &SynthesisContext<'_, F>,
        budget: &mut B,
        rng: &mut R,
    ) -> BreedResult
    where
        F: FitnessFunction + ?Sized,
        B: BudgetSource + ?Sized,
        R: Rng + ?Sized,
    {
        let config = ctx.config;
        let weights = self.population.fitness_weights();
        let mut next: Vec<Gene> = self.population.top_genes(config.elite_count);
        while next.len() < config.population_size {
            let draw: f64 = rng.gen();
            if draw < config.crossover_rate {
                let offspring =
                    crossover_offspring(config, &self.population, &weights, &ctx.input_types, rng);
                if !self.consume(budget) {
                    return BreedResult::Exhausted;
                }
                if ctx.spec.is_satisfied_by(&offspring) {
                    return BreedResult::Solution(offspring);
                }
                next.push(Gene::new(offspring));
            } else if draw < config.crossover_rate + config.mutation_rate {
                let offspring = mutation_offspring(
                    config,
                    &self.population,
                    &weights,
                    &ctx.input_types,
                    ctx.probability_map.as_ref(),
                    rng,
                );
                if !self.consume(budget) {
                    return BreedResult::Exhausted;
                }
                if ctx.spec.is_satisfied_by(&offspring) {
                    return BreedResult::Solution(offspring);
                }
                next.push(Gene::new(offspring));
            } else {
                // Reproduction: copy a selected gene unchanged (not a new
                // candidate program, so it does not consume search budget).
                let index = selection::roulette_wheel(&weights, rng);
                next.push(self.population.genes()[index].clone());
            }
        }
        BreedResult::Next(Population::new(next))
    }
}

enum BreedResult {
    Solution(Program),
    Exhausted,
    Next(Population),
}

/// Ring migration: island `i`'s `migration_size` fittest genes replace the
/// worst-ranked genes of island `(i + 1) % K`.
///
/// Emigrant clones are snapshotted from every island before any island is
/// mutated, and replacements land in island-index order, so the post-
/// migration state depends only on the pre-migration states — never on
/// which pool worker ran which island. Emigrants keep their cached fitness,
/// so migration itself scores nothing.
pub(crate) fn migrate_ring(islands: &mut [&mut Island], migration_size: usize) {
    let k = islands.len();
    if k < 2 || migration_size == 0 {
        return;
    }
    let emigrants: Vec<Vec<Gene>> = islands
        .iter()
        .map(|island| island.population.top_genes(migration_size))
        .collect();
    for (i, island) in islands.iter_mut().enumerate() {
        let incoming = &emigrants[(i + k - 1) % k];
        let len = island.population.len();
        let take = incoming.len().min(len);
        if take == 0 {
            continue;
        }
        // The tail of the full ranking is the worst-ranked genes; replace
        // them in ranking order with the immigrants in emigration order.
        let order = island.population.top_indices(len);
        let worst: Vec<usize> = order[len - take..].to_vec();
        for (slot, gene) in worst.into_iter().zip(incoming.iter()) {
            island.population.genes_mut()[slot] = gene.clone();
        }
    }
}

/// Evaluates the fitness of every not-yet-scored gene.
///
/// Previously-seen programs — from earlier generations, earlier runs sharing
/// the cache shard, *or another island* — are served from `memo`; the
/// remaining unique programs are scored with a single
/// [`FitnessFunction::score_batch_cached`] call (reusing the trace-value
/// encodings memoized in `traces`), so a learned fitness runs one batched
/// network pass per generation instead of one forward pass per gene. Scores
/// land by candidate index, independent of scheduling: each distinct program
/// resolves to exactly one `f64`, and genes are filled from those per-index
/// slots, so the ranking — and the whole trajectory — is identical however
/// many threads the pool runs.
///
/// No shard lock is held while scoring, and concurrent runs (or islands) of
/// the same task avoid scoring the same program twice: this run *claims* its
/// unscored programs first (`SpecScores::claim_many`); programs another
/// claimant is already scoring are awaited instead of recomputed (except in
/// the rare no-block recompute escape documented on
/// `netsyn_fitness::cache::resolve_score`), and a claimant that panics
/// abandons its claims so waiters re-claim rather than hang. Cached, awaited
/// and freshly computed scores are all bit-identical by the batched-scoring
/// contract, so the trajectory is unaffected either way.
pub(crate) fn evaluate_population<F>(
    population: &mut Population,
    fitness: &F,
    spec: &IoSpec,
    memo: &SpecScores,
    traces: &TraceEncodingCache,
) where
    F: FitnessFunction + ?Sized,
{
    // Distinct programs still needing a score, in first-seen order.
    let mut needed: Vec<Program> = Vec::new();
    let mut index_of: HashMap<Program, usize> = HashMap::new();
    for gene in population.genes() {
        if gene.fitness.is_none() && !index_of.contains_key(&gene.program) {
            index_of.insert(gene.program.clone(), needed.len());
            needed.push(gene.program.clone());
        }
    }
    if needed.is_empty() {
        return;
    }
    let resolved = resolve_batch(memo, &needed, |batch| {
        fitness.score_batch_cached(batch, spec, traces)
    });
    for gene in population.genes_mut().iter_mut() {
        if gene.fitness.is_none() {
            gene.fitness = Some(resolved[index_of[&gene.program]]);
        }
    }
}

/// Samples a random program of the configured length without dead code
/// (best effort within `dead_code_retries`).
pub(crate) fn random_program<R: Rng + ?Sized>(
    config: &GaConfig,
    input_types: &[Type],
    rng: &mut R,
) -> Program {
    let mut last = unconstrained_random_program(config, rng);
    for _ in 0..config.dead_code_retries {
        if !has_dead_code(&last, input_types) {
            return last;
        }
        last = unconstrained_random_program(config, rng);
    }
    last
}

fn unconstrained_random_program<R: Rng + ?Sized>(config: &GaConfig, rng: &mut R) -> Program {
    let vocab = config.domain.vocab();
    (0..config.program_length)
        .map(|_| vocab[rng.gen_range(0..vocab.len())])
        .collect()
}

fn crossover_offspring<R: Rng + ?Sized>(
    config: &GaConfig,
    population: &Population,
    weights: &[f64],
    input_types: &[Type],
    rng: &mut R,
) -> Program {
    let mut last = {
        let (a, b) = selection::roulette_wheel_pair(weights, rng);
        crossover::single_point(
            &population.genes()[a].program,
            &population.genes()[b].program,
            rng,
        )
    };
    for _ in 0..config.dead_code_retries {
        if !has_dead_code(&last, input_types) {
            return last;
        }
        let (a, b) = selection::roulette_wheel_pair(weights, rng);
        last = crossover::single_point(
            &population.genes()[a].program,
            &population.genes()[b].program,
            rng,
        );
    }
    last
}

fn mutation_offspring<R: Rng + ?Sized>(
    config: &GaConfig,
    population: &Population,
    weights: &[f64],
    input_types: &[Type],
    probability_map: Option<&ProbabilityMap>,
    rng: &mut R,
) -> Program {
    let index = selection::roulette_wheel(weights, rng);
    let parent = &population.genes()[index].program;
    let mut last = mutation::point_mutation(
        parent,
        config.mutation_mode,
        probability_map,
        config.domain,
        rng,
    );
    for _ in 0..config.dead_code_retries {
        if !has_dead_code(&last, input_types) {
            return last;
        }
        last = mutation::point_mutation(
            parent,
            config.mutation_mode,
            probability_map,
            config.domain,
            rng,
        );
    }
    last
}

/// One island bundled with its private RNG stream and budget slice for the
/// `K > 1` driver. The bundle is what moves to a pool worker between
/// migration points — nothing an island touches is shared mutably.
pub(crate) struct IslandCell {
    pub island: Island,
    pub rng: ChaCha8Rng,
    pub budget: SearchBudget,
}

/// Drives one island with the caller's RNG and budget: the classic
/// panmictic engine. Draw-for-draw identical to the historical
/// single-population loop (pinned by the golden-bytes test).
pub(crate) fn synthesize_single<F, B, R>(
    ctx: &SynthesisContext<'_, F>,
    budget: &mut B,
    rng: &mut R,
) -> GaOutcome
where
    F: FitnessFunction + ?Sized,
    B: BudgetSource + ?Sized,
    R: Rng + ?Sized,
{
    let mut island = Island::new(ctx.config.saturation_window);
    island.initialize(ctx, budget, rng);
    while island.status == IslandStatus::Active {
        island.step_generation(ctx, budget, rng);
    }
    let Island {
        average_history,
        best_history,
        generations,
        evaluated,
        status,
        ..
    } = island;
    let (solution, found_by_neighborhood) = match status {
        IslandStatus::Solved {
            program,
            by_neighborhood,
        } => (Some(program), by_neighborhood),
        _ => (None, false),
    };
    GaOutcome {
        solution,
        generations,
        candidates_evaluated: evaluated,
        found_by_neighborhood,
        average_fitness_history: average_history,
        best_fitness_history: best_history,
    }
}

/// Drives `k >= 2` islands: per-island RNG streams seeded from the caller's
/// RNG in index order, fixed upfront budget slices, epochs of
/// `migration_interval` generations on separate pool workers, then
/// index-ordered ring migration. The merged [`GaOutcome`] is a pure function
/// of `(config, spec, fitness, seed)` — see the module docs.
pub(crate) fn synthesize_islands<F, R>(
    ctx: &SynthesisContext<'_, F>,
    k: usize,
    master: &mut SearchBudget,
    rng: &mut R,
) -> GaOutcome
where
    F: FitnessFunction + ?Sized,
    R: Rng + ?Sized,
{
    debug_assert!(k >= 2);
    // Fixed upfront partition of the remaining master budget: `total / k`
    // per island, the first `total % k` islands taking one extra. Slices
    // are never rebalanced (determinism over utilization).
    let total = master.remaining();
    let base = total / k;
    let extra = total % k;
    let mut cells: Vec<IslandCell> = (0..k)
        .map(|i| IslandCell {
            island: Island::new(ctx.config.saturation_window),
            rng: ChaCha8Rng::seed_from_u64(rng.next_u64()),
            budget: SearchBudget::new(base + usize::from(i < extra)),
        })
        .collect();

    // Initial populations, one pool task per island.
    cells.par_chunks_mut(1).for_each(|chunk| {
        let cell = &mut chunk[0];
        cell.island.initialize(ctx, &mut cell.budget, &mut cell.rng);
    });

    let any_solved = |cells: &[IslandCell]| {
        cells
            .iter()
            .any(|c| matches!(c.island.status, IslandStatus::Solved { .. }))
    };
    while !any_solved(&cells)
        && cells
            .iter()
            .any(|c| c.island.status == IslandStatus::Active)
    {
        // One epoch: every still-active island evolves `migration_interval`
        // generations on its own pool worker (one stealable task each).
        cells.par_chunks_mut(1).for_each(|chunk| {
            let cell = &mut chunk[0];
            for _ in 0..ctx.config.migration_interval {
                if cell.island.status != IslandStatus::Active {
                    break;
                }
                cell.island
                    .step_generation(ctx, &mut cell.budget, &mut cell.rng);
            }
        });
        if any_solved(&cells) {
            break;
        }
        // Synchronization point: still-active islands migrate around the
        // ring in index order.
        let mut active: Vec<&mut Island> = cells
            .iter_mut()
            .filter(|c| c.island.status == IslandStatus::Active)
            .map(|c| &mut c.island)
            .collect();
        migrate_ring(&mut active, ctx.config.migration_size);
    }

    let consumed: usize = cells.iter().map(|c| c.island.evaluated).sum();
    let charged = master.try_consume_many(consumed);
    debug_assert_eq!(charged, consumed, "slices cannot exceed the master cap");
    merged_outcome(cells)
}

/// Merges per-island states into one [`GaOutcome`], index-ordered: the
/// winner is the *lowest-index* solved island (deterministic whatever the
/// worker schedule), generations is the maximum over islands, candidate
/// counts are summed, and the per-generation histories average (mean) and
/// maximize (best) over the islands that reached each generation.
fn merged_outcome(cells: Vec<IslandCell>) -> GaOutcome {
    let generations = cells
        .iter()
        .map(|c| c.island.generations)
        .max()
        .unwrap_or(0);
    let candidates_evaluated = cells.iter().map(|c| c.island.evaluated).sum();
    let mut average_fitness_history = Vec::with_capacity(generations);
    let mut best_fitness_history = Vec::with_capacity(generations);
    for g in 0..generations {
        let mut sum = 0.0;
        let mut islands_at_g = 0usize;
        let mut best = f64::NEG_INFINITY;
        for cell in &cells {
            if let Some(&average) = cell.island.average_history.get(g) {
                sum += average;
                islands_at_g += 1;
            }
            if let Some(&b) = cell.island.best_history.get(g) {
                best = best.max(b);
            }
        }
        debug_assert!(islands_at_g > 0, "the longest island reaches every g");
        average_fitness_history.push(sum / islands_at_g as f64);
        best_fitness_history.push(best);
    }
    let winner = cells.into_iter().find_map(|c| match c.island.status {
        IslandStatus::Solved {
            program,
            by_neighborhood,
        } => Some((program, by_neighborhood)),
        _ => None,
    });
    let (solution, found_by_neighborhood) = match winner {
        Some((program, by_neighborhood)) => (Some(program), by_neighborhood),
        None => (None, false),
    };
    GaOutcome {
        solution,
        generations,
        candidates_evaluated,
        found_by_neighborhood,
        average_fitness_history,
        best_fitness_history,
    }
}

/// The strictly parsed `NETSYN_ISLANDS` override.
///
/// Returns `Some(k)` for a valid integer `k >= 1`. An invalid value — not an
/// integer, zero, or non-unicode — is *not* silently ignored: one warning
/// line naming the rejected value and the fallback is printed to stderr, and
/// the configured island count is used.
pub(crate) fn islands_from_env() -> Option<usize> {
    static WARNED: std::sync::Once = std::sync::Once::new();
    match std::env::var("NETSYN_ISLANDS") {
        Ok(value) => match value.trim().parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            _ => {
                WARNED.call_once(|| {
                    eprintln!(
                        "netsyn: ignoring invalid NETSYN_ISLANDS={value:?} \
                         (expected an integer >= 1); using the configured island count"
                    );
                });
                None
            }
        },
        Err(std::env::VarError::NotPresent) => None,
        Err(std::env::VarError::NotUnicode(raw)) => {
            WARNED.call_once(|| {
                eprintln!(
                    "netsyn: ignoring non-unicode NETSYN_ISLANDS={raw:?} \
                     (expected an integer >= 1); using the configured island count"
                );
            });
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    fn scored_island(scores: &[f64]) -> Island {
        let mut island = Island::new(2);
        island.initialized = true;
        for (i, &score) in scores.iter().enumerate() {
            let program = Program::new(vec![Function::ALL[i]; 2]);
            let mut gene = Gene::new(program);
            gene.fitness = Some(score);
            island.population.genes_mut().push(gene);
        }
        island
    }

    #[test]
    fn migration_moves_top_genes_around_the_ring() {
        let mut a = scored_island(&[5.0, 1.0, 0.5]);
        let mut b = scored_island(&[4.0, 3.0, 0.1]);
        let a_top = a.population.top_genes(1)[0].clone();
        let b_top = b.population.top_genes(1)[0].clone();
        migrate_ring(&mut [&mut a, &mut b], 1);
        // a's best went to b (replacing b's worst), and vice versa.
        assert!(b.population.genes().contains(&a_top));
        assert!(a.population.genes().contains(&b_top));
        // Population sizes are unchanged.
        assert_eq!(a.population.len(), 3);
        assert_eq!(b.population.len(), 3);
        // The receivers' best genes survive.
        assert!(b.population.genes().contains(&b_top));
        assert!(a.population.genes().contains(&a_top));
    }

    #[test]
    fn migration_is_deterministic_in_island_order() {
        let build = || {
            (
                scored_island(&[5.0, 1.0, 0.5]),
                scored_island(&[4.0, 3.0, 0.1]),
                scored_island(&[2.0, 6.0, 0.2]),
            )
        };
        let (mut a1, mut b1, mut c1) = build();
        let (mut a2, mut b2, mut c2) = build();
        migrate_ring(&mut [&mut a1, &mut b1, &mut c1], 2);
        migrate_ring(&mut [&mut a2, &mut b2, &mut c2], 2);
        assert_eq!(a1.population.genes(), a2.population.genes());
        assert_eq!(b1.population.genes(), b2.population.genes());
        assert_eq!(c1.population.genes(), c2.population.genes());
    }

    #[test]
    fn single_island_migration_is_a_no_op() {
        let mut a = scored_island(&[5.0, 1.0, 0.5]);
        let before = a.population.genes().to_vec();
        migrate_ring(&mut [&mut a], 3);
        assert_eq!(a.population.genes(), &before[..]);
    }
}
