//! Configuration of the genetic-algorithm engine.
//!
//! Default values follow Appendix B of the paper: gene pool of 100, 5 reserve
//! (elite) genes per generation, at most 30,000 generations, 40% crossover
//! rate and 30% mutation rate.

use netsyn_dsl::DomainId;
use serde::{Deserialize, Serialize};

/// How the mutation operator chooses the replacement function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MutationMode {
    /// Replace the mutated position with a uniformly random different
    /// function.
    UniformRandom,
    /// Replace the mutated position by sampling the fitness function's
    /// probability map with the Roulette-Wheel algorithm (`Mutation_FP`).
    ProbabilityGuided,
}

/// Which restricted local neighborhood search the engine runs when the
/// population's fitness saturates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborhoodStrategy {
    /// Never run neighborhood search.
    Disabled,
    /// Breadth-first flavored search (Algorithm 1).
    Bfs,
    /// Depth-first flavored search (Algorithm 1 with per-level commitment to
    /// the best-scoring neighbor).
    Dfs,
}

/// Hyper-parameters of the genetic algorithm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaConfig {
    /// The DSL domain whose operator vocabulary the engine samples, mutates
    /// and searches over.
    pub domain: DomainId,
    /// Length of candidate programs (the assumed target length `L`).
    pub program_length: usize,
    /// Number of genes in the pool (`T`).
    pub population_size: usize,
    /// Number of top genes copied unchanged into the next generation.
    pub elite_count: usize,
    /// Probability that a new gene is produced by crossover.
    pub crossover_rate: f64,
    /// Probability that a new gene is produced by mutation.
    pub mutation_rate: f64,
    /// Hard cap on the number of generations.
    pub max_generations: usize,
    /// How the mutation operator picks replacement functions.
    pub mutation_mode: MutationMode,
    /// Neighborhood-search strategy.
    pub neighborhood: NeighborhoodStrategy,
    /// How many top-scoring genes the neighborhood search explores (`N`).
    pub neighborhood_top_n: usize,
    /// Sliding-window length `w` of the saturation detector that triggers
    /// neighborhood search.
    pub saturation_window: usize,
    /// Number of attempts to regenerate a gene whose offspring contains dead
    /// code before accepting it anyway.
    pub dead_code_retries: usize,
    /// Number of island populations the synthesis shards into (`K`). With
    /// `K = 1` the engine runs the classic panmictic loop; with `K > 1` each
    /// island evolves `population_size` genes on its own deterministic RNG
    /// stream and budget slice, migrating elites on a fixed schedule (see
    /// the crate docs for the determinism contract). The `NETSYN_ISLANDS`
    /// environment variable overrides this field at engine construction.
    pub islands: usize,
    /// Number of generations each island evolves between migrations.
    pub migration_interval: usize,
    /// Number of top genes each island sends around the ring at every
    /// migration point.
    pub migration_size: usize,
}

impl GaConfig {
    /// The paper's hyper-parameters (Appendix B) for a given program length.
    #[must_use]
    pub fn paper_defaults(program_length: usize) -> Self {
        GaConfig {
            domain: DomainId::List,
            program_length,
            population_size: 100,
            elite_count: 5,
            crossover_rate: 0.4,
            mutation_rate: 0.3,
            max_generations: 30_000,
            mutation_mode: MutationMode::UniformRandom,
            neighborhood: NeighborhoodStrategy::Bfs,
            neighborhood_top_n: 5,
            saturation_window: 10,
            dead_code_retries: 10,
            islands: 1,
            migration_interval: 8,
            migration_size: 2,
        }
    }

    /// A scaled-down configuration for quick tests and examples.
    #[must_use]
    pub fn small(program_length: usize) -> Self {
        GaConfig {
            population_size: 30,
            elite_count: 3,
            max_generations: 200,
            ..GaConfig::paper_defaults(program_length)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if rates are outside `[0, 1]`, their sum exceeds 1, the elite
    /// count exceeds the population size, or a size parameter is zero.
    pub fn validate(&self) {
        assert!(self.program_length > 0, "program_length must be positive");
        assert!(self.population_size > 0, "population_size must be positive");
        assert!(
            self.elite_count <= self.population_size,
            "elite_count cannot exceed population_size"
        );
        assert!(
            (0.0..=1.0).contains(&self.crossover_rate) && (0.0..=1.0).contains(&self.mutation_rate),
            "rates must be probabilities"
        );
        assert!(
            self.crossover_rate + self.mutation_rate <= 1.0 + f64::EPSILON,
            "crossover_rate + mutation_rate cannot exceed 1"
        );
        assert!(
            self.saturation_window > 0,
            "saturation_window must be positive"
        );
        assert!(self.islands > 0, "islands must be positive");
        assert!(
            self.migration_interval > 0,
            "migration_interval must be positive"
        );
        assert!(
            self.migration_size <= self.population_size,
            "migration_size cannot exceed population_size"
        );
    }
}

impl Default for GaConfig {
    fn default() -> Self {
        GaConfig::paper_defaults(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_appendix_b() {
        let config = GaConfig::paper_defaults(5);
        assert_eq!(config.population_size, 100);
        assert_eq!(config.elite_count, 5);
        assert_eq!(config.max_generations, 30_000);
        assert!((config.crossover_rate - 0.4).abs() < 1e-12);
        assert!((config.mutation_rate - 0.3).abs() < 1e-12);
        config.validate();
    }

    #[test]
    fn small_config_is_valid() {
        GaConfig::small(7).validate();
    }

    #[test]
    #[should_panic(expected = "elite_count")]
    fn validate_rejects_excess_elites() {
        let mut config = GaConfig::small(5);
        config.elite_count = config.population_size + 1;
        config.validate();
    }

    #[test]
    #[should_panic(expected = "cannot exceed 1")]
    fn validate_rejects_rate_sum_above_one() {
        let mut config = GaConfig::small(5);
        config.crossover_rate = 0.8;
        config.mutation_rate = 0.5;
        config.validate();
    }

    #[test]
    fn serde_round_trip() {
        let config = GaConfig::paper_defaults(10);
        let json = serde_json::to_string(&config).unwrap();
        let back: GaConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, config);
    }

    #[test]
    fn defaults_run_a_single_panmictic_island() {
        let config = GaConfig::paper_defaults(5);
        assert_eq!(config.islands, 1);
        assert!(config.migration_interval > 0);
        assert!(config.migration_size <= config.population_size);
    }

    #[test]
    #[should_panic(expected = "islands must be positive")]
    fn validate_rejects_zero_islands() {
        let mut config = GaConfig::small(3);
        config.islands = 0;
        config.validate();
    }

    #[test]
    #[should_panic(expected = "migration_size")]
    fn validate_rejects_oversized_migration() {
        let mut config = GaConfig::small(3);
        config.migration_size = config.population_size + 1;
        config.validate();
    }
}
