//! Portable 8-lane SIMD kernels for the batched inference hot path.
//!
//! Two independent guarantees make this module safe to drop into the
//! bit-identical `score_batch == score` contract:
//!
//! 1. **Column-lane linear algebra.** [`F32x8`] is a plain `[f32; 8]`
//!    newtype whose arithmetic lowers to LLVM vector ops (SSE2 on the
//!    x86-64 baseline, AVX under `-C target-cpu` or the runtime-dispatched
//!    kernels). The matmul kernel broadcasts `a[i][k]` across a lane of
//!    **output columns**, so each output element still accumulates its
//!    `k`-products in strictly ascending order with separate mul/add
//!    roundings — the exact scalar op sequence, just eight columns at a
//!    time. No FMA is used anywhere in the linear-algebra kernels: a fused
//!    multiply-add would change roundings and break bit-identity.
//!
//! 2. **Bitwise libm-compatible transcendentals.** [`vexp`], [`vtanh`] and
//!    [`vsigmoid`] reproduce the host libm's `expf`/`tanhf` *bit for bit*:
//!    the [`scalar`] submodule is an instruction-level port of glibc's
//!    `__expf_fma` (the ifunc variant selected on AVX2+FMA hardware,
//!    including its compiler-contracted FMAs, verified against the
//!    disassembly of glibc 2.36) and of glibc's fdlibm-derived
//!    `expm1f`/`tanhf` (pure `f32` arithmetic, no contraction). The lane
//!    versions run the same per-element operations structure-of-arrays so
//!    the polynomial cores vectorize. A process-wide startup probe
//!    ([`simd_mode`]) additionally cross-checks the ports against the live
//!    libm on a boundary set and permanently falls back to scalar libm
//!    calls if the host libm disagrees (e.g. musl, or a pre-2.27 glibc),
//!    so the contract holds even on hosts the port was not written for.
//!
//! The SIMD paths can be disabled at runtime by setting `NETSYN_SIMD=0`
//! (any of `0`, `false`, `off`); CI runs the test-suite in both modes so
//! the scalar fallbacks cannot rot. Because both modes are bit-identical,
//! toggling the variable never changes a score, only throughput.

use std::ops::{Add, Div, Mul, Neg, Not, Sub};
use std::sync::OnceLock;

/// Lane width of the portable vector type.
pub const LANES: usize = 8;

/// A portable 8-lane `f32` vector: a thin `[f32; 8]` wrapper whose
/// element-wise arithmetic auto-vectorizes.
///
/// Operations are IEEE-754 per lane and carry no fast-math flags, so a lane
/// computation is bit-identical to the same scalar expression per element.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct F32x8(pub [f32; LANES]);

impl F32x8 {
    /// All lanes zero.
    #[inline(always)]
    #[must_use]
    pub fn zero() -> Self {
        F32x8([0.0; LANES])
    }

    /// Broadcasts one value to all lanes.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: f32) -> Self {
        F32x8([v; LANES])
    }

    /// Loads eight consecutive values from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `src` has fewer than eight elements.
    #[inline(always)]
    #[must_use]
    pub fn load(src: &[f32]) -> Self {
        let mut lanes = [0.0; LANES];
        lanes.copy_from_slice(&src[..LANES]);
        F32x8(lanes)
    }

    /// Stores the lanes into eight consecutive slice elements.
    ///
    /// # Panics
    ///
    /// Panics if `dst` has fewer than eight elements.
    #[inline(always)]
    pub fn store(self, dst: &mut [f32]) {
        dst[..LANES].copy_from_slice(&self.0);
    }

    /// Lane-wise `self * a + b` as **separate** mul and add roundings (no
    /// fusion) — the scalar-compatible accumulation step of the matmul
    /// kernel.
    #[inline(always)]
    #[must_use]
    pub fn mul_add_unfused(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

impl Add for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn add(self, rhs: Self) -> Self {
        let mut out = [0.0; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a + b;
        }
        F32x8(out)
    }
}

impl Sub for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn sub(self, rhs: Self) -> Self {
        let mut out = [0.0; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a - b;
        }
        F32x8(out)
    }
}

impl Mul for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn mul(self, rhs: Self) -> Self {
        let mut out = [0.0; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a * b;
        }
        F32x8(out)
    }
}

impl Div for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn div(self, rhs: Self) -> Self {
        let mut out = [0.0; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a / b;
        }
        F32x8(out)
    }
}

/// Exact lane-wise negation (sign-bit flip), bit-identical to scalar `-x`
/// even on signed zeros (`0.0 - x` would turn `-0.0` into `+0.0`).
impl Neg for F32x8 {
    type Output = F32x8;
    #[inline(always)]
    fn neg(self) -> Self {
        F32x8::from_bits(self.to_bits() ^ I32x8::splat(i32::MIN))
    }
}

impl F32x8 {
    /// Lane-wise bit reinterpretation to `i32`.
    #[inline(always)]
    #[must_use]
    pub fn to_bits(self) -> I32x8 {
        let mut out = [0i32; LANES];
        for (o, &v) in out.iter_mut().zip(self.0.iter()) {
            *o = v.to_bits() as i32;
        }
        I32x8(out)
    }

    /// Lane-wise bit reinterpretation from `i32`.
    #[inline(always)]
    #[must_use]
    pub fn from_bits(bits: I32x8) -> Self {
        let mut out = [0.0f32; LANES];
        for (o, &b) in out.iter_mut().zip(bits.0.iter()) {
            *o = f32::from_bits(b as u32);
        }
        F32x8(out)
    }

    /// Lane-wise `<` compare, producing an all-ones / all-zeros mask.
    #[inline(always)]
    #[must_use]
    pub fn lt(self, rhs: Self) -> M32x8 {
        let mut out = [0u32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = if a < b { u32::MAX } else { 0 };
        }
        M32x8(out)
    }

    /// Lane-wise saturating cast to `i32` (Rust `as` semantics).
    #[inline(always)]
    #[must_use]
    pub fn to_int(self) -> I32x8 {
        let mut out = [0i32; LANES];
        for (o, &v) in out.iter_mut().zip(self.0.iter()) {
            *o = v as i32;
        }
        I32x8(out)
    }
}

/// A portable 8-lane `i32` vector for the bit-manipulation halves of the
/// transcendental kernels (exponent ladders, sign handling). Like
/// [`F32x8`], every op is a plain per-lane loop that LLVM lowers to vector
/// instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct I32x8(pub [i32; LANES]);

impl I32x8 {
    /// Broadcasts one value to all lanes.
    #[inline(always)]
    #[must_use]
    pub fn splat(v: i32) -> Self {
        I32x8([v; LANES])
    }

    /// Lane-wise wrapping add.
    #[inline(always)]
    #[must_use]
    pub fn wrapping_add(self, rhs: Self) -> Self {
        let mut out = [0i32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a.wrapping_add(b);
        }
        I32x8(out)
    }

    /// Lane-wise wrapping subtract.
    #[inline(always)]
    #[must_use]
    pub fn wrapping_sub(self, rhs: Self) -> Self {
        let mut out = [0i32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a.wrapping_sub(b);
        }
        I32x8(out)
    }

    /// Lane-wise bitwise AND.
    #[inline(always)]
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        let mut out = [0i32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a & b;
        }
        I32x8(out)
    }

    /// Lane-wise wrapping left shift by a uniform amount.
    #[inline(always)]
    #[must_use]
    pub fn shl_uniform(self, amount: u32) -> Self {
        let mut out = [0i32; LANES];
        for (o, &a) in out.iter_mut().zip(self.0.iter()) {
            *o = a.wrapping_shl(amount);
        }
        I32x8(out)
    }

    /// Lane-wise *logical* right shift by per-lane counts (counts must be
    /// pre-clamped to `0..32` by the caller).
    #[inline(always)]
    #[must_use]
    pub fn shr_logical_var(self, counts: Self) -> Self {
        let mut out = [0i32; LANES];
        for ((o, &a), &n) in out.iter_mut().zip(self.0.iter()).zip(counts.0.iter()) {
            *o = ((a as u32) >> (n as u32 & 31)) as i32;
        }
        I32x8(out)
    }

    /// Lane-wise signed clamp.
    #[inline(always)]
    #[must_use]
    pub fn clamp(self, lo: i32, hi: i32) -> Self {
        let mut out = [0i32; LANES];
        for (o, &a) in out.iter_mut().zip(self.0.iter()) {
            *o = a.clamp(lo, hi);
        }
        I32x8(out)
    }

    /// Lane-wise signed `<` compare.
    #[inline(always)]
    #[must_use]
    pub fn lt(self, rhs: Self) -> M32x8 {
        let mut out = [0u32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = if a < b { u32::MAX } else { 0 };
        }
        M32x8(out)
    }

    /// Lane-wise signed `>` compare.
    #[inline(always)]
    #[must_use]
    pub fn gt(self, rhs: Self) -> M32x8 {
        rhs.lt(self)
    }

    /// Lane-wise `==` compare.
    #[inline(always)]
    #[must_use]
    pub fn eq(self, rhs: Self) -> M32x8 {
        let mut out = [0u32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = if a == b { u32::MAX } else { 0 };
        }
        M32x8(out)
    }

    /// Lane-wise exact cast to `f32` (values must be small integers, as in
    /// the `k as f32` step of the expm1 reduction).
    #[inline(always)]
    #[must_use]
    pub fn to_float(self) -> F32x8 {
        let mut out = [0.0f32; LANES];
        for (o, &a) in out.iter_mut().zip(self.0.iter()) {
            *o = a as f32;
        }
        F32x8(out)
    }
}

impl std::ops::BitXor for I32x8 {
    type Output = I32x8;
    #[inline(always)]
    fn bitxor(self, rhs: Self) -> Self {
        let mut out = [0i32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a ^ b;
        }
        I32x8(out)
    }
}

/// An 8-lane boolean mask (all-ones or all-zeros per 32-bit lane), produced
/// by the lane compares and consumed by the bitwise selects. This is the
/// genuine SIMD select form of the fdlibm branch ladders: every arm is
/// computed with total (clamped/wrapping) arithmetic and the arm the scalar
/// code would have branched to is blended in per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct M32x8(pub [u32; LANES]);

/// Lane-wise mask complement.
impl std::ops::Not for M32x8 {
    type Output = M32x8;
    #[inline(always)]
    fn not(self) -> Self {
        let mut out = [0u32; LANES];
        for (o, &m) in out.iter_mut().zip(self.0.iter()) {
            *o = !m;
        }
        M32x8(out)
    }
}

impl M32x8 {
    /// Whether any lane is set — the scalar-fallback probes reduce to this.
    #[inline(always)]
    #[must_use]
    pub fn any(self) -> bool {
        let mut acc = 0u32;
        for &m in &self.0 {
            acc |= m;
        }
        acc != 0
    }

    /// Lane-wise mask intersection.
    #[inline(always)]
    #[must_use]
    pub fn and(self, rhs: Self) -> Self {
        let mut out = [0u32; LANES];
        for ((o, &a), &b) in out.iter_mut().zip(self.0.iter()).zip(rhs.0.iter()) {
            *o = a & b;
        }
        M32x8(out)
    }

    /// Lane-wise blend: `a` where the mask is set, `b` elsewhere. Bitwise,
    /// so NaN payloads and signed zeros pass through unchanged.
    #[inline(always)]
    #[must_use]
    pub fn select(self, a: F32x8, b: F32x8) -> F32x8 {
        F32x8::from_bits(self.select_bits(a.to_bits(), b.to_bits()))
    }

    /// Lane-wise blend on integer lanes.
    #[inline(always)]
    #[must_use]
    pub fn select_bits(self, a: I32x8, b: I32x8) -> I32x8 {
        let mut out = [0i32; LANES];
        for (((o, &m), &av), &bv) in out
            .iter_mut()
            .zip(self.0.iter())
            .zip(a.0.iter())
            .zip(b.0.iter())
        {
            *o = (av & m as i32) | (bv & !(m as i32));
        }
        I32x8(out)
    }
}

/// Scalar ports of the host libm's `f32` transcendentals.
///
/// These functions compute the **same bits** as glibc's `expf`, `expm1f`
/// and `tanhf` (see the module docs for how that is established and
/// guarded). They exist so the lane kernels have an inlinable, call-free
/// per-element reference; the test-suite compares them against
/// `f32::exp`/`f32::tanh` on exhaustive boundary sets and dense seeded
/// sampling, and `crates/bench/src/bin/simd_validate.rs` sweeps all 2^32
/// bit patterns.
pub mod scalar {
    /// `2^(i/32)` table of glibc's `__exp2f_data`, stored as
    /// `bits(2^(i/32)) - (i << 47)` so adding the scaled step index
    /// reconstructs the final exponent (extracted from glibc 2.36).
    const EXP2F_TAB: [u64; 32] = [
        0x3ff0000000000000,
        0x3fefd9b0d3158574,
        0x3fefb5586cf9890f,
        0x3fef9301d0125b51,
        0x3fef72b83c7d517b,
        0x3fef54873168b9aa,
        0x3fef387a6e756238,
        0x3fef1e9df51fdee1,
        0x3fef06fe0a31b715,
        0x3feef1a7373aa9cb,
        0x3feedea64c123422,
        0x3feece086061892d,
        0x3feebfdad5362a27,
        0x3feeb42b569d4f82,
        0x3feeab07dd485429,
        0x3feea47eb03a5585,
        0x3feea09e667f3bcd,
        0x3fee9f75e8ec5f74,
        0x3feea11473eb0187,
        0x3feea589994cce13,
        0x3feeace5422aa0db,
        0x3feeb737b0cdc5e5,
        0x3feec49182a3f090,
        0x3feed503b23e255d,
        0x3feee89f995ad3ad,
        0x3feeff76f2fb5e47,
        0x3fef199bdd85529c,
        0x3fef3720dcef9069,
        0x3fef5818dcfba487,
        0x3fef7c97337b9b5f,
        0x3fefa4afa2a490da,
        0x3fefd0765b6e4540,
    ];
    /// `0x1.8p52` — the double rounding-shift trick constant.
    const SHIFT: f64 = f64::from_bits(0x4338000000000000);
    /// `32 / ln(2)` (`0x1.71547652b82fep+5`).
    const INVLN2N: f64 = f64::from_bits(0x40471547652B82FE);
    /// Degree-3 `2^(r/32)` polynomial, coefficients pre-divided by `32^n`.
    const EXP_C0: f64 = f64::from_bits(0x3EBC6AF84B912394);
    const EXP_C1: f64 = f64::from_bits(0x3F2EBFCE50FAC4F3);
    const EXP_C2: f64 = f64::from_bits(0x3F962E42FF0C52D6);
    /// `log(0x1p128)` — overflow threshold (`0x1.62e42ep6`).
    const EXP_OFLOW: f32 = f32::from_bits(0x42B17217);
    /// `log(0x1p-150)` — underflow-to-zero threshold (`-0x1.9fe368p6`).
    const EXP_UFLOW: f32 = f32::from_bits(0xC2CFF1B4);
    /// `log(0x1p-149)` — below this the result is the smallest subnormal
    /// (`-0x1.9d1d9ep6`; glibc's `WANT_ERRNO_UFLOW` shortcut).
    const EXP_MAY_UFLOW: f32 = f32::from_bits(0xC2CE8ECF);

    /// The branch-free core of `expf` for `|x| < 88`: bit-for-bit the main
    /// path of glibc's `__expf_fma`, *including* the two FMA contractions
    /// its compiler applied to the argument reduction (`k` extraction and
    /// `r = InvLn2N*x - kd`) and the three explicit polynomial FMAs.
    ///
    /// `f64::mul_add` is a **correctly fused** multiply-add on every Rust
    /// target (lowered to hardware FMA when available, otherwise libm
    /// `fma`), so this port does not depend on the build's target features.
    #[inline(always)]
    #[must_use]
    pub fn exp_core(x: f32) -> f32 {
        let xd = f64::from(x);
        let z_shifted = INVLN2N.mul_add(xd, SHIFT);
        let ki = z_shifted.to_bits();
        let kd = z_shifted - SHIFT;
        let r = INVLN2N.mul_add(xd, -kd);
        let t = EXP2F_TAB[(ki & 31) as usize].wrapping_add(ki.wrapping_shl(47));
        let s = f64::from_bits(t);
        let p = EXP_C0.mul_add(r, EXP_C1);
        let r2 = r * r;
        let q = EXP_C2.mul_add(r, 1.0);
        let y = p.mul_add(r2, q);
        (y * s) as f32
    }

    /// `expf(x)`, bit-identical to the host libm (glibc `__expf_fma`).
    #[must_use]
    #[inline(always)]
    pub fn exp(x: f32) -> f32 {
        let bits = x.to_bits();
        let abstop = (bits >> 20) & 0x7ff;
        // |x| >= 88.0, or inf/NaN.
        if abstop > 0x42a {
            if bits == 0xff80_0000 {
                return 0.0; // exp(-inf)
            }
            if abstop > 0x7f7 {
                return x + x; // +inf and NaN
            }
            if x > EXP_OFLOW {
                return f32::INFINITY;
            }
            if x < EXP_UFLOW {
                return 0.0;
            }
            if x < EXP_MAY_UFLOW {
                // Result rounds to the smallest subnormal everywhere in
                // (log(2^-150), log(2^-149)); glibc returns it directly.
                return f32::from_bits(1);
            }
        }
        exp_core(x)
    }

    const LN2_HI: f32 = f32::from_bits(0x3F317180);
    const LN2_LO: f32 = f32::from_bits(0x3717F7D1);
    const INV_LN2: f32 = f32::from_bits(0x3FB8AA3B);
    /// `expm1f` rational-approximation coefficients Q1..Q5 (glibc flt-32).
    const Q1: f32 = f32::from_bits(0xBD08_8889);
    const Q2: f32 = f32::from_bits(0x3AD0_0D01);
    const Q3: f32 = f32::from_bits(0xB8A6_70CD);
    const Q4: f32 = f32::from_bits(0x3686_7E54);
    const Q5: f32 = f32::from_bits(0xB457_EDBB);
    /// `log(FLT_MAX)`-ish overflow threshold of `expm1f` (88.7216796875).
    const EXPM1_OFLOW: f32 = f32::from_bits(0x42B17180);

    /// Argument reduction of `expm1f`: `x = k*ln2 + (xr + c)` with the
    /// fdlibm branch structure (`k = ±1` uses the exact `ln2_hi/lo` split;
    /// larger magnitudes go through the rounded-multiply path).
    ///
    /// Only call for `0.5*ln2 < |x| < 88.72` (the caller dispatches).
    #[inline(always)]
    pub(super) fn expm1_reduce(x: f32, hx: u32, sign: bool) -> (f32, f32, i32) {
        let (hi, lo, k);
        if hx < 0x3F85_1592 {
            // 0.5*ln2 < |x| < 1.5*ln2
            if sign {
                hi = x + LN2_HI;
                lo = -LN2_LO;
                k = -1;
            } else {
                hi = x - LN2_HI;
                lo = LN2_LO;
                k = 1;
            }
        } else {
            let kf = INV_LN2 * x + if sign { -0.5 } else { 0.5 };
            k = kf as i32;
            let t = k as f32;
            hi = x - t * LN2_HI; // t*ln2_hi is exact here
            lo = t * LN2_LO;
        }
        let xr = hi - lo;
        let c = (hi - xr) - lo;
        (xr, c, k)
    }

    /// The branch-free rational core of `expm1f` on a reduced argument:
    /// returns `e = hxs*((r1-t)/(6 - xr*t))` together with `hxs`.
    #[inline(always)]
    pub(super) fn expm1_poly(xr: f32) -> (f32, f32) {
        let hfx = 0.5 * xr;
        let hxs = xr * hfx;
        let r1 = 1.0 + hxs * (Q1 + hxs * (Q2 + hxs * (Q3 + hxs * (Q4 + hxs * Q5))));
        let t = 3.0 - r1 * hfx;
        let e = hxs * ((r1 - t) / (6.0 - xr * t));
        (e, hxs)
    }

    /// Reconstruction of `expm1f` from the reduced argument, correction
    /// term, polynomial output and scale `k` — the fdlibm `2^k` re-scaling
    /// ladder, bit for bit.
    #[inline(always)]
    pub(super) fn expm1_finish(xr: f32, c: f32, e0: f32, hxs: f32, k: i32) -> f32 {
        if k == 0 {
            return xr - (xr * e0 - hxs);
        }
        let mut e = xr * (e0 - c) - c;
        e -= hxs;
        if k == -1 {
            return 0.5 * (xr - e) - 0.5;
        }
        if k == 1 {
            if xr < -0.25 {
                return -2.0 * (e - (xr + 0.5));
            }
            return 1.0 + 2.0 * (xr - e);
        }
        let scale = (k as u32) << 23;
        if !(-1..=56).contains(&k) {
            // 2^k dwarfs the 1 being subtracted (or the result is ~-1).
            let y = 1.0 - (e - xr);
            return f32::from_bits(y.to_bits().wrapping_add(scale)) - 1.0;
        }
        if k < 23 {
            let t = f32::from_bits(0x3F80_0000 - (0x0100_0000u32 >> k)); // 1 - 2^-k
            let y = t - (e - xr);
            f32::from_bits(y.to_bits().wrapping_add(scale))
        } else {
            let t = f32::from_bits(((0x7f - k) as u32) << 23); // 2^-k
            let mut y = xr - (e + t);
            y += 1.0;
            f32::from_bits(y.to_bits().wrapping_add(scale))
        }
    }

    /// `expm1f(x)`, bit-identical to the host libm (glibc flt-32 fdlibm).
    #[must_use]
    #[inline(always)]
    pub fn expm1(x: f32) -> f32 {
        let bits = x.to_bits();
        let sign = bits & 0x8000_0000 != 0;
        let hx = bits & 0x7fff_ffff;
        // |x| >= 27*ln2: overflow / saturate-to--1 / non-finite.
        if hx >= 0x4195_B844 {
            if hx >= 0x42B1_7218 {
                if hx > 0x7F80_0000 {
                    return x + x; // NaN
                }
                if hx == 0x7F80_0000 {
                    return if sign { -1.0 } else { x }; // ±inf
                }
                if x > EXPM1_OFLOW {
                    return f32::INFINITY;
                }
            }
            if sign {
                return -1.0; // rounds from tiny - 1
            }
        }
        if hx > 0x3EB1_7218 {
            // |x| > 0.5*ln2: reduce.
            let (xr, c, k) = expm1_reduce(x, hx, sign);
            let (e, hxs) = expm1_poly(xr);
            expm1_finish(xr, c, e, hxs, k)
        } else if hx < 0x3300_0000 {
            // |x| < 2^-25 (including ±0): expm1(x) rounds to x.
            x
        } else {
            let (e, hxs) = expm1_poly(x);
            expm1_finish(x, 0.0, e, hxs, 0)
        }
    }

    /// `tanhf(x)`, bit-identical to the host libm (glibc flt-32 fdlibm).
    #[must_use]
    #[inline(always)]
    pub fn tanh(x: f32) -> f32 {
        let bits = x.to_bits();
        let sign = bits & 0x8000_0000 != 0;
        let ix = bits & 0x7fff_ffff;
        if ix > 0x7F7F_FFFF {
            // inf or NaN: 1/x collapses inf to ±0, propagates NaN.
            let r = 1.0 / x;
            return if sign { r - 1.0 } else { r + 1.0 };
        }
        let z = if ix < 0x41B0_0000 {
            // |x| < 22
            if ix == 0 {
                return x; // preserves ±0
            }
            if ix < 0x2400_0000 {
                // |x| < 2^-55
                return x * (1.0 + x);
            }
            let ax = f32::from_bits(ix);
            if ix >= 0x3F80_0000 {
                let t = expm1(ax + ax);
                1.0 - 2.0 / (t + 2.0)
            } else {
                let t = expm1(-2.0 * ax);
                -t / (t + 2.0)
            }
        } else {
            1.0 // 1 - 1e-30 rounds to 1
        };
        if sign {
            -z
        } else {
            z
        }
    }

    /// `1 / (1 + expf(-x))` with the ported [`exp`] — bit-identical to
    /// [`crate::activation::sigmoid`].
    #[must_use]
    #[inline(always)]
    pub fn sigmoid(x: f32) -> f32 {
        1.0 / (1.0 + exp(-x))
    }
}

/// How the process resolved its SIMD dispatch, for logging/tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdMode {
    /// Lane kernels active (ports verified against the host libm).
    Active,
    /// `NETSYN_SIMD=0` (or `false`/`off`) in the environment.
    DisabledByEnv,
    /// The startup probe found a libm disagreement; scalar libm calls are
    /// used so the bit-identity contract holds on this host.
    LibmMismatch,
}

fn resolve_simd_mode() -> SimdMode {
    if let Ok(v) = std::env::var("NETSYN_SIMD") {
        let v = v.trim().to_ascii_lowercase();
        if v == "0" || v == "false" || v == "off" {
            return SimdMode::DisabledByEnv;
        }
    }
    // Cross-check the ports against the live libm on boundary values and a
    // coarse grid. Any mismatch (foreign libm flavor) disables the lane
    // transcendentals — scores must not depend on the dispatch mode.
    let probes = [
        0.0f32,
        -0.0,
        1.0,
        -1.0,
        0.25,
        -0.25,
        f32::from_bits(0x3EB17218), // 0.5*ln2 boundary
        f32::from_bits(0x3F851592), // 1.5*ln2 boundary
        21.999998,
        22.0,
        -22.0,
        87.3,
        -87.3,
        88.72283,
        -103.3,
        -103.9,
        f32::MIN_POSITIVE,
        f32::from_bits(1), // smallest subnormal
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
    ];
    let grid = (-2000..=2000).map(|i| i as f32 * 0.05);
    for x in probes.into_iter().chain(grid) {
        if scalar::exp(x).to_bits() != x.exp().to_bits()
            || scalar::tanh(x).to_bits() != x.tanh().to_bits()
        {
            return SimdMode::LibmMismatch;
        }
    }
    SimdMode::Active
}

/// The process-wide SIMD dispatch mode (resolved once, on first use).
#[must_use]
pub fn simd_mode() -> SimdMode {
    static MODE: OnceLock<SimdMode> = OnceLock::new();
    *MODE.get_or_init(resolve_simd_mode)
}

/// Whether the lane kernels are active (see [`simd_mode`]).
#[must_use]
pub fn simd_enabled() -> bool {
    simd_mode() == SimdMode::Active
}

/// Whether the *linear-algebra* lane kernels (matmul, broadcasts) should
/// run. These have no libm dependency — they are bit-identical to the
/// scalar loops by construction — so a [`SimdMode::LibmMismatch`] host
/// keeps them; only the explicit `NETSYN_SIMD=0` opt-out disables them.
#[must_use]
pub fn linear_lanes_active() -> bool {
    simd_mode() != SimdMode::DisabledByEnv
}

/// Whether the lane *transcendental* kernels should run: the env/probe
/// gate of [`simd_enabled`] plus the CPU features that make the `f64`
/// FMA-based `exp` port fast (AVX2+FMA on x86-64). Without hardware FMA,
/// `f64::mul_add` lowers to a libm `fma` call per element and the lane
/// path would be slower than calling `expf` directly, so scalar libm is
/// used instead — the results are bit-identical either way.
#[must_use]
pub fn transcendental_lanes_active() -> bool {
    static ACTIVE: OnceLock<bool> = OnceLock::new();
    *ACTIVE.get_or_init(|| {
        #[cfg(target_arch = "x86_64")]
        {
            simd_enabled()
                && std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
        #[cfg(not(target_arch = "x86_64"))]
        {
            false
        }
    })
}

/// Lane-wise `expf` on eight lanes, bit-identical per lane to `f32::exp`.
#[must_use]
#[inline(always)]
pub fn vexp(x: F32x8) -> F32x8 {
    let abstop = x
        .to_bits()
        .shr_logical_var(I32x8::splat(20))
        .and(I32x8::splat(0x7ff));
    if abstop.gt(I32x8::splat(0x42a)).any() {
        let mut out = [0.0; LANES];
        for (o, &v) in out.iter_mut().zip(x.0.iter()) {
            *o = scalar::exp(v);
        }
        return F32x8(out);
    }
    let mut out = [0.0; LANES];
    for (o, &v) in out.iter_mut().zip(x.0.iter()) {
        *o = scalar::exp_core(v);
    }
    F32x8(out)
}

/// Lane-wise `expm1f` on eight lanes, bit-identical per lane to the libm
/// `expm1f` the host's `tanhf` calls.
#[must_use]
#[inline(always)]
pub fn vexpm1(x: F32x8) -> F32x8 {
    // Lanes outside the polynomial fast path (saturation, overflow,
    // non-finite, sub-2^-25) are rare in gate pre-activations; handle any
    // of them with the scalar port.
    let bits = x.to_bits();
    let hx = bits.and(I32x8::splat(0x7fff_ffff));
    let in_range = hx
        .lt(I32x8::splat(0x3300_0000))
        .not()
        .and(hx.lt(I32x8::splat(0x4195_B844)));
    if in_range.not().any() {
        let mut out = [0.0; LANES];
        for (o, &v) in out.iter_mut().zip(x.0.iter()) {
            *o = scalar::expm1(v);
        }
        return F32x8(out);
    }
    // Full-width hot path. The fdlibm reduce/rescale branch ladders are
    // re-expressed as genuine mask/select vector ops: every arm is
    // evaluated across all eight lanes with total (clamped/wrapping)
    // arithmetic, and the arm the scalar code would have branched to is
    // blended in per lane — identical values, straight-line vector IR.
    const LN2_HI: f32 = f32::from_bits(0x3F317180);
    const LN2_LO: f32 = f32::from_bits(0x3717F7D1);
    const INV_LN2: f32 = f32::from_bits(0x3FB8AA3B);
    let sign = bits.lt(I32x8::splat(0));
    // k = ±1 arm (0.5*ln2 < |x| < 1.5*ln2): exact hi/lo split.
    let hi1 = x - sign.select(F32x8::splat(-LN2_HI), F32x8::splat(LN2_HI));
    let lo1 = sign.select(F32x8::splat(-LN2_LO), F32x8::splat(LN2_LO));
    // General arm: rounded multiple of ln2.
    let kf = F32x8::splat(INV_LN2) * x + sign.select(F32x8::splat(-0.5), F32x8::splat(0.5));
    let k2 = kf.to_int();
    let t = k2.to_float();
    let hi2 = x - t * F32x8::splat(LN2_HI);
    let lo2 = t * F32x8::splat(LN2_LO);
    let near_one = hx.lt(I32x8::splat(0x3F85_1592));
    let hi = near_one.select(hi1, hi2);
    let lo = near_one.select(lo1, lo2);
    let k = near_one.select_bits(sign.select_bits(I32x8::splat(-1), I32x8::splat(1)), k2);
    let xv = hi - lo;
    let cv = (hi - xv) - lo;
    // Below 0.5*ln2 no reduction happens at all.
    let reduce = hx.gt(I32x8::splat(0x3EB1_7218));
    let xr = reduce.select(xv, x);
    let cc = reduce.select(cv, F32x8::zero());
    let kk = reduce.select_bits(k, I32x8::splat(0));
    let (e, hxs) = vexpm1_poly(xr);
    vexpm1_finish(xr, cc, e, hxs, kk)
}

/// [`scalar::expm1_finish`] with every branch arm computed across all
/// lanes and mask-blended — identical values per lane, straight-line
/// vector control flow. Shift amounts are clamped/wrapped so discarded
/// arms cannot trap.
#[inline(always)]
fn vexpm1_finish(xr: F32x8, c: F32x8, e0: F32x8, hxs: F32x8, k: I32x8) -> F32x8 {
    let half = F32x8::splat(0.5);
    let one = F32x8::splat(1.0);
    let two = F32x8::splat(2.0);
    let r_k0 = xr - (xr * e0 - hxs);
    let e = (xr * (e0 - c) - c) - hxs;
    let r_km1 = half * (xr - e) - half;
    let r_k1 = xr
        .lt(F32x8::splat(-0.25))
        .select(-two * (e - (xr + half)), one + two * (xr - e));
    let scale = k.shl_uniform(23);
    // k <= -2 or k > 56: 2^k dwarfs the 1 being subtracted back out.
    let y_big = one - (e - xr);
    let r_big = F32x8::from_bits(y_big.to_bits().wrapping_add(scale)) - one;
    // 2 <= k < 23: y = (1 - 2^-k) - (e - x).
    let t_mid = F32x8::from_bits(
        I32x8::splat(0x3F80_0000)
            .wrapping_sub(I32x8::splat(0x0100_0000).shr_logical_var(k.clamp(0, 31))),
    );
    let y_mid = t_mid - (e - xr);
    let r_mid = F32x8::from_bits(y_mid.to_bits().wrapping_add(scale));
    // 23 <= k <= 56: y = (x - (e + 2^-k)) + 1.
    let t_hi = F32x8::from_bits(I32x8::splat(0x7f).wrapping_sub(k).shl_uniform(23));
    let y_hi = (xr - (e + t_hi)) + one;
    let r_hi = F32x8::from_bits(y_hi.to_bits().wrapping_add(scale));

    let in_window = k
        .lt(I32x8::splat(-1))
        .not()
        .and(k.gt(I32x8::splat(56)).not());
    let r_scaled = in_window
        .not()
        .select(r_big, k.lt(I32x8::splat(23)).select(r_mid, r_hi));
    k.eq(I32x8::splat(0)).select(
        r_k0,
        k.eq(I32x8::splat(-1))
            .select(r_km1, k.eq(I32x8::splat(1)).select(r_k1, r_scaled)),
    )
}

/// The `expm1f` rational core over all lanes at once — the exact scalar op
/// order of [`scalar::expm1_poly`], expressed in [`F32x8`] arithmetic so
/// the polynomial and (crucially) the divide lower to vector instructions.
#[inline(always)]
fn vexpm1_poly(xr: F32x8) -> (F32x8, F32x8) {
    const Q1: f32 = f32::from_bits(0xBD08_8889);
    const Q2: f32 = f32::from_bits(0x3AD0_0D01);
    const Q3: f32 = f32::from_bits(0xB8A6_70CD);
    const Q4: f32 = f32::from_bits(0x3686_7E54);
    const Q5: f32 = f32::from_bits(0xB457_EDBB);
    let one = F32x8::splat(1.0);
    let hfx = F32x8::splat(0.5) * xr;
    let hxs = xr * hfx;
    let r1 = one
        + hxs
            * (F32x8::splat(Q1)
                + hxs
                    * (F32x8::splat(Q2)
                        + hxs
                            * (F32x8::splat(Q3)
                                + hxs * (F32x8::splat(Q4) + hxs * F32x8::splat(Q5)))));
    let t = F32x8::splat(3.0) - r1 * hfx;
    let e = hxs * ((r1 - t) / (F32x8::splat(6.0) - xr * t));
    (e, hxs)
}

// ---------------------------------------------------------------------------
// Slice kernels: the dispatch layer the layers call.
//
// Each kernel has one AVX2+FMA clone (`#[target_feature]` specializes the
// `#[inline(always)]` lane bodies with 256-bit vectors and hardware FMA for
// the f64 exp core) and a scalar libm fallback. Both produce the same bits,
// so dispatch never affects scores.
// ---------------------------------------------------------------------------

macro_rules! avx2_clone {
    ($avx2:ident, $body:ident, ($($arg:ident : $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $avx2($($arg: $ty),*) {
            $body($($arg),*);
        }
    };
}

/// Dispatches to `$avx2` when the lane transcendentals are active, else
/// runs `$fallback`.
macro_rules! dispatch {
    ($avx2:ident, ($($arg:expr),*), $fallback:block) => {{
        #[cfg(target_arch = "x86_64")]
        {
            if transcendental_lanes_active() {
                // SAFETY: `transcendental_lanes_active` verified avx2+fma.
                unsafe { $avx2($($arg),*) };
                return;
            }
        }
        $fallback
    }};
}

#[inline(always)]
fn vexp_slice_lanes(xs: &mut [f32]) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        vexp(F32x8::load(chunk)).store(chunk);
    }
    for x in chunks.into_remainder() {
        *x = scalar::exp(*x);
    }
}

#[inline(always)]
fn vtanh_slice_lanes(xs: &mut [f32]) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        vtanh(F32x8::load(chunk)).store(chunk);
    }
    for x in chunks.into_remainder() {
        *x = scalar::tanh(*x);
    }
}

#[inline(always)]
fn vsigmoid_slice_lanes(xs: &mut [f32]) {
    let mut chunks = xs.chunks_exact_mut(LANES);
    for chunk in &mut chunks {
        vsigmoid(F32x8::load(chunk)).store(chunk);
    }
    for x in chunks.into_remainder() {
        *x = scalar::sigmoid(*x);
    }
}

avx2_clone!(vexp_slice_avx2, vexp_slice_lanes, (xs: &mut [f32]));
avx2_clone!(vtanh_slice_avx2, vtanh_slice_lanes, (xs: &mut [f32]));
avx2_clone!(vsigmoid_slice_avx2, vsigmoid_slice_lanes, (xs: &mut [f32]));

/// In-place `expf` over a slice, bit-identical to `x.exp()` per element.
pub fn vexp_slice(xs: &mut [f32]) {
    dispatch!(vexp_slice_avx2, (xs), {
        for x in xs {
            *x = x.exp();
        }
    });
}

/// In-place `tanhf` over a slice, bit-identical to `x.tanh()` per element.
pub fn vtanh_slice(xs: &mut [f32]) {
    dispatch!(vtanh_slice_avx2, (xs), {
        for x in xs {
            *x = x.tanh();
        }
    });
}

/// In-place logistic sigmoid over a slice, bit-identical to
/// `1/(1 + (-x).exp())` per element.
pub fn vsigmoid_slice(xs: &mut [f32]) {
    dispatch!(vsigmoid_slice_avx2, (xs), {
        for x in xs {
            *x = 1.0 / (1.0 + (-*x).exp());
        }
    });
}

// ---------------------------------------------------------------------------
// Fused LSTM gate kernels.
//
// `zx`/`zh`/`bias` hold the four gate pre-activation blocks in PyTorch
// order — `i` at `[0, h)`, `f` at `[h, 2h)`, `g` at `[2h, 3h)`, `o` at
// `[3h, 4h)` with `h = c.len()` — exactly as `Lstm::step` lays them out.
// ---------------------------------------------------------------------------

#[inline(always)]
fn lstm_gate_c_lanes(zx: &[f32], zh: &[f32], bias: &[f32], c: &mut [f32]) {
    let h = c.len();
    let main = h - h % LANES;
    let mut j = 0;
    while j < main {
        let iv = vsigmoid(F32x8::load(&zx[j..]) + F32x8::load(&zh[j..]) + F32x8::load(&bias[j..]));
        let fv = vsigmoid(
            F32x8::load(&zx[h + j..]) + F32x8::load(&zh[h + j..]) + F32x8::load(&bias[h + j..]),
        );
        let gv = vtanh(
            F32x8::load(&zx[2 * h + j..])
                + F32x8::load(&zh[2 * h + j..])
                + F32x8::load(&bias[2 * h + j..]),
        );
        let cv = F32x8::load(&c[j..]);
        (fv * cv + iv * gv).store(&mut c[j..]);
        j += LANES;
    }
    for j in main..h {
        let i = scalar::sigmoid((zx[j] + zh[j]) + bias[j]);
        let f = scalar::sigmoid((zx[h + j] + zh[h + j]) + bias[h + j]);
        let g = scalar::tanh((zx[2 * h + j] + zh[2 * h + j]) + bias[2 * h + j]);
        c[j] = f * c[j] + i * g;
    }
}

#[inline(always)]
fn lstm_gate_h_lanes(zx: &[f32], zh: &[f32], bias: &[f32], c: &[f32], h_out: &mut [f32]) {
    let h = c.len();
    let main = h - h % LANES;
    let mut j = 0;
    while j < main {
        let ov = vsigmoid(
            F32x8::load(&zx[3 * h + j..])
                + F32x8::load(&zh[3 * h + j..])
                + F32x8::load(&bias[3 * h + j..]),
        );
        let tc = vtanh(F32x8::load(&c[j..]));
        (ov * tc).store(&mut h_out[j..]);
        j += LANES;
    }
    for j in main..h {
        let o = scalar::sigmoid((zx[3 * h + j] + zh[3 * h + j]) + bias[3 * h + j]);
        h_out[j] = o * scalar::tanh(c[j]);
    }
}

avx2_clone!(
    lstm_gate_c_avx2,
    lstm_gate_c_lanes,
    (zx: &[f32], zh: &[f32], bias: &[f32], c: &mut [f32])
);
avx2_clone!(
    lstm_gate_h_avx2,
    lstm_gate_h_lanes,
    (zx: &[f32], zh: &[f32], bias: &[f32], c: &[f32], h_out: &mut [f32])
);

/// The cell-state half of the fused LSTM gate sweep for one batch row:
/// `c[j] = sigmoid(zi) * c[j]`-style update `c = f*c_prev + i*g` with
/// `z* = (zx + zh) + bias` — the exact op order of the scalar LSTM step.
///
/// # Panics
///
/// Panics if `zx`, `zh` or `bias` are shorter than `4 * c.len()`.
pub fn lstm_gate_c(zx: &[f32], zh: &[f32], bias: &[f32], c: &mut [f32]) {
    dispatch!(lstm_gate_c_avx2, (zx, zh, bias, c), {
        let h = c.len();
        for (j, cj) in c.iter_mut().enumerate() {
            let i = crate::activation::sigmoid((zx[j] + zh[j]) + bias[j]);
            let f = crate::activation::sigmoid((zx[h + j] + zh[h + j]) + bias[h + j]);
            let g = crate::activation::tanh((zx[2 * h + j] + zh[2 * h + j]) + bias[2 * h + j]);
            *cj = f * *cj + i * g;
        }
    });
}

/// The hidden-state half of the fused LSTM gate sweep for one batch row:
/// `h[j] = sigmoid((zx+zh)+bias at the o block) * tanh(c[j])`.
///
/// # Panics
///
/// Panics if `zx`, `zh` or `bias` are shorter than `4 * c.len()`, or if
/// `h_out` is shorter than `c`.
pub fn lstm_gate_h(zx: &[f32], zh: &[f32], bias: &[f32], c: &[f32], h_out: &mut [f32]) {
    dispatch!(lstm_gate_h_avx2, (zx, zh, bias, c, h_out), {
        let h = c.len();
        for (j, hj) in h_out.iter_mut().enumerate() {
            let o = crate::activation::sigmoid((zx[3 * h + j] + zh[3 * h + j]) + bias[3 * h + j]);
            *hj = o * crate::activation::tanh(c[j]);
        }
    });
}

/// Lane-wise `tanhf` on eight lanes, bit-identical per lane to `f32::tanh`.
#[must_use]
#[inline(always)]
pub fn vtanh(x: F32x8) -> F32x8 {
    // The two mid-range branches both funnel through expm1; lanes outside
    // them (|x| >= 22, |x| < 2^-55, zero, non-finite) take the scalar port.
    let bits = x.to_bits();
    let ix = bits.and(I32x8::splat(0x7fff_ffff));
    let in_range = ix
        .lt(I32x8::splat(0x2400_0000))
        .not()
        .and(ix.lt(I32x8::splat(0x41B0_0000)));
    if in_range.not().any() {
        let mut out = [0.0; LANES];
        for (o, &v) in out.iter_mut().zip(x.0.iter()) {
            *o = scalar::tanh(v);
        }
        return F32x8(out);
    }
    let ax = F32x8::from_bits(ix);
    let big = ix.lt(I32x8::splat(0x3F80_0000)).not(); // |x| >= 1
    let arg = big.select(ax + ax, F32x8::splat(-2.0) * ax);
    let t = vexpm1(arg);
    // Both branches divide by t + 2; selecting the numerator first leaves
    // one vector divide:  |x| >= 1: z = 1 - 2/(t+2),  else: z = -t/(t+2).
    let q = big.select(F32x8::splat(2.0), t) / (t + F32x8::splat(2.0));
    let z = big.select(F32x8::splat(1.0) - q, -q);
    // Reapply the input sign exactly as the scalar negation does (a
    // sign-bit XOR — `z` is never a NaN here, and copying the sign bit
    // from the input is the `if sign { -z }` of the fdlibm code).
    F32x8::from_bits(z.to_bits() ^ bits.and(I32x8::splat(i32::MIN)))
}

/// Lane-wise logistic sigmoid, bit-identical per lane to
/// [`crate::activation::sigmoid`] (`1/(1 + expf(-x))`).
#[must_use]
#[inline(always)]
pub fn vsigmoid(x: F32x8) -> F32x8 {
    let one = F32x8::splat(1.0);
    one / (one + vexp(-x))
}
