//! Evaluation metrics: classification accuracy and confusion matrices.
//!
//! The confusion matrices of the CF and LCS fitness networks are Figure 7(a)
//! and 7(b) of the paper; the FP model's accuracy-over-epochs curve is
//! Figure 7(c).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A confusion matrix over `n` classes.
///
/// Entry `(actual, predicted)` counts validation samples of class `actual`
/// that the model predicted as `predicted`. [`ConfusionMatrix::row_normalized`]
/// reproduces the row-stochastic matrix plotted in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Creates an empty confusion matrix for `classes` classes.
    #[must_use]
    pub fn new(classes: usize) -> Self {
        ConfusionMatrix {
            classes,
            counts: vec![0; classes * classes],
        }
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics if either class index is out of range.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        assert!(actual < self.classes, "actual class out of range");
        assert!(predicted < self.classes, "predicted class out of range");
        self.counts[actual * self.classes + predicted] += 1;
    }

    /// Raw count for `(actual, predicted)`.
    #[must_use]
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual * self.classes + predicted]
    }

    /// Total number of recorded observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (diagonal mass / total), or 0.0 when empty.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.classes).map(|i| self.count(i, i)).sum();
        correct as f64 / total as f64
    }

    /// Row-normalized matrix: entry `(i, j)` is the probability of predicting
    /// `j` when the actual class is `i`. Rows with no observations are all
    /// zeros.
    #[must_use]
    pub fn row_normalized(&self) -> Vec<Vec<f64>> {
        (0..self.classes)
            .map(|i| {
                let row_total: u64 = (0..self.classes).map(|j| self.count(i, j)).sum();
                (0..self.classes)
                    .map(|j| {
                        if row_total == 0 {
                            0.0
                        } else {
                            self.count(i, j) as f64 / row_total as f64
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// Probability mass the row `actual` places on predictions `>= threshold`.
    /// Used to reproduce statements like "for fitness ≥ 4 the model predicts
    /// ≥ 4 with probability ≥ 0.7".
    #[must_use]
    pub fn mass_at_or_above(&self, actual: usize, threshold: usize) -> f64 {
        let row = &self.row_normalized()[actual];
        row.iter().skip(threshold).sum()
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "confusion matrix ({} classes, row-normalized):",
            self.classes
        )?;
        for (i, row) in self.row_normalized().iter().enumerate() {
            write!(f, "  actual {i}: ")?;
            for p in row {
                write!(f, "{p:5.2} ")?;
            }
            writeln!(f)?;
        }
        write!(f, "accuracy: {:.3}", self.accuracy())
    }
}

/// Fraction of positions where `(prediction >= threshold) == (target >= 0.5)`.
///
/// This is the accuracy criterion the paper uses for the FP model: a
/// function's predicted probability is "correct" when it crosses 0.5 exactly
/// for the functions present in the target program.
///
/// # Panics
///
/// Panics if the slices have different lengths.
#[must_use]
pub fn thresholded_accuracy(predictions: &[f32], targets: &[f32], threshold: f32) -> f64 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    if predictions.is_empty() {
        return 0.0;
    }
    let correct = predictions
        .iter()
        .zip(targets.iter())
        .filter(|(&p, &t)| (p >= threshold) == (t >= 0.5))
        .count();
    correct as f64 / predictions.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_accuracy() {
        let mut cm = ConfusionMatrix::new(3);
        cm.record(0, 0);
        cm.record(0, 0);
        cm.record(1, 2);
        cm.record(2, 2);
        assert_eq!(cm.total(), 4);
        assert_eq!(cm.count(0, 0), 2);
        assert_eq!(cm.count(1, 2), 1);
        assert!((cm.accuracy() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_matrix_has_zero_accuracy() {
        let cm = ConfusionMatrix::new(4);
        assert_eq!(cm.total(), 0);
        assert_eq!(cm.accuracy(), 0.0);
        assert!(cm
            .row_normalized()
            .iter()
            .all(|row| row.iter().all(|&p| p == 0.0)));
    }

    #[test]
    fn rows_normalize_to_one() {
        let mut cm = ConfusionMatrix::new(3);
        for (a, p) in [(0, 0), (0, 1), (0, 2), (1, 1), (2, 0), (2, 2)] {
            cm.record(a, p);
        }
        for row in cm.row_normalized() {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
        }
        assert!((cm.mass_at_or_above(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.mass_at_or_above(2, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn record_validates_class() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(2, 0);
    }

    #[test]
    fn display_contains_accuracy() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(1, 1);
        let s = cm.to_string();
        assert!(s.contains("accuracy: 1.000"));
    }

    #[test]
    fn thresholded_accuracy_counts_matches() {
        let preds = [0.9, 0.2, 0.6, 0.4];
        let targets = [1.0, 0.0, 0.0, 1.0];
        // correct: 0.9>=0.5 & t=1 ✓; 0.2<0.5 & t=0 ✓; 0.6>=0.5 but t=0 ✗; 0.4<0.5 but t=1 ✗
        assert!((thresholded_accuracy(&preds, &targets, 0.5) - 0.5).abs() < 1e-12);
        assert_eq!(thresholded_accuracy(&[], &[], 0.5), 0.0);
    }

    #[test]
    fn serde_round_trip() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(1, 0);
        let json = serde_json::to_string(&cm).unwrap();
        let back: ConfusionMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cm);
    }
}
