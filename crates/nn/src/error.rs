//! Error types for the neural-network substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor operations and model (de)serialization.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Description of the operation that failed.
        op: &'static str,
        /// Shape of the left operand.
        left: (usize, usize),
        /// Shape of the right operand.
        right: (usize, usize),
    },
    /// A token id was outside the embedding vocabulary.
    VocabOutOfRange {
        /// The offending token id.
        token: usize,
        /// The vocabulary size.
        vocab: usize,
    },
    /// A model file could not be parsed.
    Deserialize(String),
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: {}x{} vs {}x{}",
                left.0, left.1, right.0, right.1
            ),
            NnError::VocabOutOfRange { token, vocab } => {
                write!(f, "token id {token} outside vocabulary of size {vocab}")
            }
            NnError::Deserialize(msg) => write!(f, "could not deserialize model: {msg}"),
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_shapes() {
        let e = NnError::ShapeMismatch {
            op: "matmul",
            left: (2, 3),
            right: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn is_std_error_send_sync() {
        fn assert_bounds<T: Error + Send + Sync>() {}
        assert_bounds::<NnError>();
    }
}
