//! Fully connected (dense) layer.

use crate::param::{Param, Parameterized};
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense layer computing `y = W x + b`.
///
/// The weight has shape `(out_dim, in_dim)`; inputs and outputs are plain
/// vectors (the training loops in this reproduction operate sample-by-sample
/// and accumulate gradients across a mini-batch before stepping).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    weight: Param,
    bias: Param,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(Matrix::xavier(out_dim, in_dim, rng)),
            bias: Param::new(Matrix::zeros(1, out_dim)),
        }
    }

    /// Creates a layer from explicit weight and bias matrices (mainly for
    /// tests and deserialization).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a `1 x out_dim` row vector matching `weight`.
    #[must_use]
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), weight.rows(), "bias length must match out_dim");
        Linear {
            weight: Param::new(weight),
            bias: Param::new(bias),
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.weight.value.rows()
    }

    /// Forward pass: `W x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != in_dim()`.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.in_dim(), "linear forward dimension mismatch");
        let mut y = self.weight.value.matvec(x);
        for (yi, &bi) in y.iter_mut().zip(self.bias.value.row(0).iter()) {
            *yi += bi;
        }
        y
    }

    /// Batched forward pass: one input per row of `x` (shape
    /// `batch x in_dim`), producing `batch x out_dim` outputs in one matrix
    /// product instead of `batch` small GEMVs. The product runs the
    /// column-lane SIMD kernel and the bias broadcast is lane-vectorized;
    /// both keep the scalar per-element op order, so per row, results are
    /// bit-identical to [`Linear::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    #[must_use]
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let mut y = Matrix::zeros(0, 0);
        self.forward_batch_into(x, &mut y);
        y
    }

    /// [`Linear::forward_batch`] writing into a reusable output buffer.
    ///
    /// The transposed weight the GEMM consumes is memoized on the parameter
    /// ([`Param::transposed`]) and survives until the next optimizer step,
    /// so repeated batched calls stop paying an `O(in_dim · out_dim)`
    /// re-transpose each.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    pub fn forward_batch_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            x.cols(),
            self.in_dim(),
            "linear batched forward dimension mismatch"
        );
        let weight_t = self.weight.transposed();
        x.matmul_into(&weight_t, out);
        out.add_row_broadcast(self.bias.value.row(0));
    }

    /// Backward pass. Accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// `x` must be the same input that produced the forward output whose
    /// upstream gradient is `grad_out`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward(&mut self, x: &[f32], grad_out: &[f32]) -> Vec<f32> {
        self.backward_params_only(x, grad_out);
        self.weight.value.matvec_transposed(grad_out)
    }

    /// [`Linear::backward`] without the input-gradient computation: for the
    /// first layer of a network (or gradient-only training loops) the
    /// gradient with respect to `x` is dead, and computing it builds and
    /// drops an `in_dim`-sized `Vec` per sample.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward_params_only(&mut self, x: &[f32], grad_out: &[f32]) {
        assert_eq!(x.len(), self.in_dim(), "linear backward input mismatch");
        assert_eq!(
            grad_out.len(),
            self.out_dim(),
            "linear backward gradient mismatch"
        );
        self.weight.grad.add_outer(grad_out, x, 1.0);
        for (g, &go) in self.bias.grad.row_mut(0).iter_mut().zip(grad_out.iter()) {
            *g += go;
        }
    }

    /// Batched backward pass: row `r` of `x`/`grad_out` is one sample's
    /// input and upstream gradient. Accumulates parameter gradients for the
    /// whole batch and returns the per-row input gradients.
    ///
    /// Gradients are **bit-identical** to looping [`Linear::backward`] over
    /// the rows in order: the weight gradient accumulates through one
    /// [`Matrix::add_outer_slab`] GEMM whose per-element row-ascending
    /// chain is exactly the sequence of per-sample [`Matrix::add_outer`]
    /// calls, and the input-gradient rows come from one
    /// `grad_out x W` GEMM whose `k`-ascending accumulation matches the
    /// per-sample `W^T g` transposed matvec. The batch-sized GEMMs keep
    /// their accumulators in registers across whole row blocks instead of
    /// round-tripping every row through memory per sample.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward_batch(&mut self, x: &Matrix, grad_out: &Matrix) -> Matrix {
        self.backward_batch_params_only(x, grad_out);
        let mut grad_in = Matrix::zeros(0, 0);
        self.weight.value.matmul_slab_into(
            grad_out.data(),
            grad_out.rows(),
            self.out_dim(),
            &mut grad_in,
        );
        grad_in
    }

    /// [`Linear::backward_batch`] without the input-gradient rows.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn backward_batch_params_only(&mut self, x: &Matrix, grad_out: &Matrix) {
        assert_eq!(x.cols(), self.in_dim(), "linear backward input mismatch");
        assert_eq!(
            grad_out.cols(),
            self.out_dim(),
            "linear backward gradient mismatch"
        );
        assert_eq!(x.rows(), grad_out.rows(), "linear backward batch mismatch");
        self.weight
            .grad
            .add_outer_slab(grad_out.data(), x.data(), x.rows());
        let bias_row = self.bias.grad.row_mut(0);
        for r in 0..grad_out.rows() {
            for (g, &go) in bias_row.iter_mut().zip(grad_out.row(r).iter()) {
                *g += go;
            }
        }
    }

    /// Read-only access to the weight matrix.
    #[must_use]
    pub fn weight(&self) -> &Matrix {
        &self.weight.value
    }

    /// Read-only access to the bias row vector.
    #[must_use]
    pub fn bias(&self) -> &Matrix {
        &self.bias.value
    }
}

impl Parameterized for Linear {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn simple_layer() -> Linear {
        Linear::from_parts(
            Matrix::from_vec(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.5]),
            Matrix::from_vec(1, 2, vec![0.5, -0.5]),
        )
    }

    #[test]
    fn forward_matches_hand_computation() {
        let layer = simple_layer();
        let y = layer.forward(&[1.0, 2.0, 3.0]);
        // row0: 1*1 + 0*2 + (-1)*3 + 0.5 = -1.5
        // row1: 2*1 + 1*2 + 0.5*3 - 0.5 = 5.0
        assert_eq!(y, vec![-1.5, 5.0]);
        assert_eq!(layer.in_dim(), 3);
        assert_eq!(layer.out_dim(), 2);
    }

    #[test]
    fn backward_accumulates_expected_gradients() {
        let mut layer = simple_layer();
        let x = [1.0, 2.0, 3.0];
        let grad_out = [1.0, -1.0];
        let grad_in = layer.backward(&x, &grad_out);
        // dW = grad_out ⊗ x
        assert_eq!(layer.weight.grad.data(), &[1.0, 2.0, 3.0, -1.0, -2.0, -3.0]);
        assert_eq!(layer.bias.grad.data(), &[1.0, -1.0]);
        // dx = W^T grad_out
        assert_eq!(grad_in, vec![1.0 - 2.0, 0.0 - 1.0, -1.0 - 0.5]);
    }

    #[test]
    fn gradients_accumulate_across_calls() {
        let mut layer = simple_layer();
        let x = [1.0, 0.0, 0.0];
        layer.backward(&x, &[1.0, 0.0]);
        layer.backward(&x, &[1.0, 0.0]);
        assert_eq!(layer.weight.grad.get(0, 0), 2.0);
        layer.zero_grad();
        assert_eq!(layer.weight.grad.get(0, 0), 0.0);
    }

    #[test]
    fn numerical_gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x: Vec<f32> = (0..4).map(|i| 0.3 * i as f32 - 0.5).collect();
        // Scalar loss: sum of outputs squared / 2 so that dL/dy = y.
        let y = layer.forward(&x);
        let grad_out: Vec<f32> = y.clone();
        layer.zero_grad();
        let grad_in = layer.backward(&x, &grad_out);

        let loss = |layer: &Linear, x: &[f32]| -> f32 {
            layer.forward(x).iter().map(|&v| v * v * 0.5).sum()
        };
        let eps = 1e-2_f32;
        // Check dL/dx numerically.
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            assert!(
                (num - grad_in[i]).abs() < 1e-2,
                "dx[{i}]: numerical {num} vs analytic {}",
                grad_in[i]
            );
        }
        // Check a few weight gradients numerically.
        for (r, c) in [(0, 0), (1, 2), (2, 3)] {
            let orig = layer.weight.value.get(r, c);
            layer.weight.value.set(r, c, orig + eps);
            let lp = loss(&layer, &x);
            layer.weight.value.set(r, c, orig - eps);
            let lm = loss(&layer, &x);
            layer.weight.value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.weight.grad.get(r, c);
            assert!(
                (num - ana).abs() < 1e-2,
                "dW[{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        let mut rng = ChaCha8Rng::seed_from_u64(41);
        let layer = Linear::new(13, 7, &mut rng);
        let batch = Matrix::uniform(9, 13, 1.0, &mut rng);
        let out = layer.forward_batch(&batch);
        assert_eq!(out.shape(), (9, 7));
        for r in 0..batch.rows() {
            let single = layer.forward(batch.row(r));
            for (a, b) in out.row(r).iter().zip(single.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batched_forward_into_reuses_the_buffer() {
        let layer = simple_layer();
        let batch = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        let mut out = Matrix::zeros(5, 5);
        layer.forward_batch_into(&batch, &mut out);
        assert_eq!(out.shape(), (2, 2));
        assert_eq!(out.row(0), &[-1.5, 5.0]);
        assert_eq!(out.row(1), &[0.5, -0.5]);
    }

    #[test]
    fn batched_backward_is_bit_identical_to_per_sample() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        let reference_init = Linear::new(13, 7, &mut rng);
        let mut reference = reference_init.clone();
        let mut batched = reference_init;
        let x = Matrix::uniform(9, 13, 1.0, &mut rng);
        let mut grad_out = Matrix::uniform(9, 7, 1.0, &mut rng);
        // Exact zeros exercise the dense (no zero-skip) kernel semantics.
        grad_out.set(0, 0, 0.0);
        grad_out.set(3, 5, 0.0);

        let mut ref_grad_in = Vec::new();
        for r in 0..x.rows() {
            ref_grad_in.push(reference.backward(x.row(r), grad_out.row(r)));
        }
        let grad_in = batched.backward_batch(&x, &grad_out);
        for (r, reference_row) in ref_grad_in.iter().enumerate() {
            for (a, b) in grad_in.row(r).iter().zip(reference_row.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "grad-in row {r}");
            }
        }
        for (pr, pb) in reference
            .params_mut()
            .iter()
            .zip(batched.params_mut().iter())
        {
            for (a, b) in pb.grad.data().iter().zip(pr.grad.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn params_only_backward_matches_full_backward() {
        let mut rng = ChaCha8Rng::seed_from_u64(78);
        let init = Linear::new(5, 4, &mut rng);
        let mut full = init.clone();
        let mut lean = init;
        let x: Vec<f32> = (0..5).map(|i| 0.2 * i as f32 - 0.4).collect();
        let g: Vec<f32> = (0..4).map(|i| 0.3 - 0.1 * i as f32).collect();
        let _ = full.backward(&x, &g);
        lean.backward_params_only(&x, &g);
        for (pf, pl) in full.params_mut().iter().zip(lean.params_mut().iter()) {
            assert_eq!(pf.grad, pl.grad);
        }
    }

    #[test]
    fn batched_backward_numerical_gradient_check() {
        let mut rng = ChaCha8Rng::seed_from_u64(79);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Matrix::uniform(6, 4, 0.8, &mut rng);
        // Batch loss: sum over rows of 0.5 ||W x_r + b||^2.
        let loss = |layer: &Linear, x: &Matrix| -> f32 {
            (0..x.rows())
                .map(|r| {
                    layer
                        .forward(x.row(r))
                        .iter()
                        .map(|&v| 0.5 * v * v)
                        .sum::<f32>()
                })
                .sum()
        };
        let grad_out = layer.forward_batch(&x);
        layer.zero_grad();
        let grad_in = layer.backward_batch(&x, &grad_out);

        let eps = 1e-2_f32;
        for (r, c) in [(0usize, 0usize), (1, 3), (2, 1)] {
            let orig = layer.weight.value.get(r, c);
            layer.weight.value.set(r, c, orig + eps);
            layer.weight.invalidate_transpose();
            let lp = loss(&layer, &x);
            layer.weight.value.set(r, c, orig - eps);
            layer.weight.invalidate_transpose();
            let lm = loss(&layer, &x);
            layer.weight.value.set(r, c, orig);
            layer.weight.invalidate_transpose();
            let num = (lp - lm) / (2.0 * eps);
            let ana = layer.weight.grad.get(r, c);
            assert!(
                (num - ana).abs() < 5e-2,
                "dW[{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
        // Input gradients of one row.
        for i in 0..4 {
            let mut xp = x.clone();
            let mut xm = x.clone();
            *xp.row_mut(2).get_mut(i).unwrap() += eps;
            *xm.row_mut(2).get_mut(i).unwrap() -= eps;
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
            let ana = grad_in.get(2, i);
            assert!(
                (num - ana).abs() < 5e-2,
                "dx[2][{i}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn parameter_count_is_correct() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut layer = Linear::new(10, 5, &mut rng);
        assert_eq!(layer.parameter_count(), 10 * 5 + 5);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn forward_rejects_wrong_input_size() {
        let layer = simple_layer();
        let _ = layer.forward(&[1.0]);
    }

    #[test]
    fn serde_round_trip() {
        let layer = simple_layer();
        let json = serde_json::to_string(&layer).unwrap();
        let back: Linear = serde_json::from_str(&json).unwrap();
        assert_eq!(back, layer);
    }
}
