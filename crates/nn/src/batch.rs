//! Flat row-major storage for batches of variable-length vector sequences.
//!
//! Batched LSTM inference consumes "a batch of sequences of input vectors".
//! Materializing that as `Vec<Vec<Vec<f32>>>` costs one heap allocation per
//! step vector and scatters the rows across the heap; a [`SequenceBatch`]
//! keeps every row in one contiguous row-major buffer (like a ragged tensor)
//! so building the batch is a series of `memcpy`s and stepping it is
//! cache-friendly.

/// A batch of variable-length sequences of fixed-dimension `f32` rows, stored
/// contiguously in one row-major buffer.
///
/// Build order is append-only: call [`SequenceBatch::begin_sequence`] to open
/// a sequence, then [`SequenceBatch::push_row`] once per step. Rows of a
/// sequence are contiguous, sequences are laid out in build order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SequenceBatch {
    data: Vec<f32>,
    /// Row index at which each sequence starts; `starts[i]..starts[i + 1]`
    /// (or `rows()` for the last sequence) are sequence `i`'s rows.
    starts: Vec<usize>,
    dim: usize,
}

impl SequenceBatch {
    /// Creates an empty batch of rows with `dim` columns.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        SequenceBatch {
            data: Vec::new(),
            starts: Vec::new(),
            dim,
        }
    }

    /// Creates an empty batch with room for `rows` rows of `dim` columns.
    #[must_use]
    pub fn with_capacity(dim: usize, rows: usize, sequences: usize) -> Self {
        SequenceBatch {
            data: Vec::with_capacity(dim * rows),
            starts: Vec::with_capacity(sequences),
            dim,
        }
    }

    /// Row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sequences begun so far.
    #[must_use]
    pub fn num_sequences(&self) -> usize {
        self.starts.len()
    }

    /// Whether the batch holds no sequences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Total number of rows across all sequences.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.data.len().checked_div(self.dim).unwrap_or(0)
    }

    /// Number of rows (steps) of sequence `index`.
    #[must_use]
    pub fn seq_len(&self, index: usize) -> usize {
        let start = self.starts[index];
        let end = self
            .starts
            .get(index + 1)
            .copied()
            .unwrap_or_else(|| self.rows());
        end - start
    }

    /// Opens a new (initially empty) sequence; subsequent
    /// [`SequenceBatch::push_row`] calls append rows to it.
    pub fn begin_sequence(&mut self) {
        self.starts.push(self.rows());
    }

    /// Appends one zero-initialized row to the current sequence and returns
    /// it for the caller to fill.
    ///
    /// # Panics
    ///
    /// Panics if no sequence has been begun.
    pub fn push_row(&mut self) -> &mut [f32] {
        assert!(!self.starts.is_empty(), "push_row before begin_sequence");
        let at = self.data.len();
        self.data.resize(at + self.dim, 0.0);
        &mut self.data[at..]
    }

    /// Row `step` of sequence `index`.
    #[must_use]
    pub fn row(&self, index: usize, step: usize) -> &[f32] {
        debug_assert!(step < self.seq_len(index), "step out of range");
        let row = self.starts[index] + step;
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Clears all rows and sequences, keeping the allocations.
    pub fn clear(&mut self) {
        self.data.clear();
        self.starts.clear();
    }
}

/// A length-sorted, time-major repacking of a [`SequenceBatch`] — the layout
/// the gather-free batched LSTM paths consume.
///
/// Sequences are ordered longest-first (ties keep input order, making the
/// layout deterministic), and all rows belonging to time step `t` are stored
/// contiguously: slot `s` of step `t`'s slab is step `t` of the `s`-th
/// longest sequence. Because the order is length-descending, the sequences
/// still active at step `t` always form the prefix `0..active_rows(t)` of
/// the slot space, so a step's inputs are one contiguous slab that can be
/// fed straight into the blocked matmul (`Matrix::matmul_slab_into`) with no
/// per-step row gather. The same `(t, slot)` addressing is reused by the
/// batched training cache and its gradient output, which is what makes the
/// deferred gradient-accumulation sweep replayable in the per-sample
/// reference order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeMajorBatch {
    dim: usize,
    /// Slot -> original sequence index, length-descending, ties index-ascending.
    order: Vec<usize>,
    /// Original sequence index -> slot (inverse of `order`).
    slot_of: Vec<usize>,
    /// Per-slot sequence length (non-increasing).
    lens: Vec<usize>,
    /// `active[t]` = number of slots whose sequence has more than `t` steps.
    active: Vec<usize>,
    /// `step_offsets[t]` = first row of step `t`'s slab; one extra entry
    /// holds the total row count.
    step_offsets: Vec<usize>,
    data: Vec<f32>,
}

impl TimeMajorBatch {
    /// Repacks a sequence-major [`SequenceBatch`] into the time-major
    /// layout. Each input row is copied exactly once (the same copy volume
    /// the per-step gather used to pay inside the hot loop, moved to one
    /// sequential pass).
    #[must_use]
    pub fn from_batch(batch: &SequenceBatch) -> Self {
        let dim = batch.dim();
        let mut order: Vec<usize> = (0..batch.num_sequences()).collect();
        order.sort_by(|&a, &b| batch.seq_len(b).cmp(&batch.seq_len(a)).then(a.cmp(&b)));
        let mut slot_of = vec![0; order.len()];
        for (slot, &seq) in order.iter().enumerate() {
            slot_of[seq] = slot;
        }
        let lens: Vec<usize> = order.iter().map(|&seq| batch.seq_len(seq)).collect();
        let max_len = lens.first().copied().unwrap_or(0);
        let mut active = Vec::with_capacity(max_len);
        let mut step_offsets = Vec::with_capacity(max_len + 1);
        let mut data = Vec::with_capacity(batch.rows() * dim);
        let mut offset = 0;
        for t in 0..max_len {
            step_offsets.push(offset);
            // `lens` is sorted descending, so the active sequences are a
            // prefix of the slot space.
            let still_active = lens.partition_point(|&len| len > t);
            active.push(still_active);
            for &seq in &order[..still_active] {
                data.extend_from_slice(batch.row(seq, t));
            }
            offset += still_active;
        }
        step_offsets.push(offset);
        TimeMajorBatch {
            dim,
            order,
            slot_of,
            lens,
            active,
            step_offsets,
            data,
        }
    }

    /// A zero-filled batch with the same layout (and an arbitrary new row
    /// width) — the shape the batched LSTM backward writes its per-step
    /// input gradients into.
    #[must_use]
    pub fn zeros_like(&self, dim: usize) -> Self {
        TimeMajorBatch {
            dim,
            order: self.order.clone(),
            slot_of: self.slot_of.clone(),
            lens: self.lens.clone(),
            active: self.active.clone(),
            step_offsets: self.step_offsets.clone(),
            data: vec![0.0; self.step_offsets.last().copied().unwrap_or(0) * dim],
        }
    }

    /// Row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sequences (slots), including empty ones.
    #[must_use]
    pub fn num_sequences(&self) -> usize {
        self.order.len()
    }

    /// Length of the longest sequence.
    #[must_use]
    pub fn max_len(&self) -> usize {
        self.active.len()
    }

    /// Number of sequences still active at step `t` — they occupy slots
    /// `0..active_rows(t)`.
    #[must_use]
    pub fn active_rows(&self, t: usize) -> usize {
        self.active[t]
    }

    /// The contiguous slab of step `t`: `active_rows(t)` rows of `dim`
    /// columns, slot-major.
    #[must_use]
    pub fn step_rows(&self, t: usize) -> &[f32] {
        &self.data[self.step_offsets[t] * self.dim..self.step_offsets[t + 1] * self.dim]
    }

    /// Mutable contiguous slab of step `t` — the destination the batched
    /// LSTM backward GEMMs its per-step input gradients straight into.
    pub fn step_rows_mut(&mut self, t: usize) -> &mut [f32] {
        &mut self.data[self.step_offsets[t] * self.dim..self.step_offsets[t + 1] * self.dim]
    }

    /// Original sequence index of slot `slot`.
    #[must_use]
    pub fn sequence_for_slot(&self, slot: usize) -> usize {
        self.order[slot]
    }

    /// Slot of original sequence `seq`.
    #[must_use]
    pub fn slot_of(&self, seq: usize) -> usize {
        self.slot_of[seq]
    }

    /// Length of the sequence in slot `slot` (non-increasing in `slot`).
    #[must_use]
    pub fn slot_len(&self, slot: usize) -> usize {
        self.lens[slot]
    }

    /// Row `(t, slot)` — step `t` of the sequence occupying `slot`.
    #[must_use]
    pub fn row(&self, t: usize, slot: usize) -> &[f32] {
        debug_assert!(slot < self.active[t], "slot inactive at step {t}");
        let row = self.step_offsets[t] + slot;
        &self.data[row * self.dim..(row + 1) * self.dim]
    }

    /// Mutable row `(t, slot)`.
    pub fn row_mut(&mut self, t: usize, slot: usize) -> &mut [f32] {
        debug_assert!(slot < self.active[t], "slot inactive at step {t}");
        let row = self.step_offsets[t] + slot;
        &mut self.data[row * self.dim..(row + 1) * self.dim]
    }
}

/// A prefix-sharing batch of variable-length vector sequences: a trie whose
/// nodes are (key, input row) pairs grouped by depth.
///
/// An LSTM's state after consuming a prefix depends only on that prefix, so
/// two sequences sharing a prefix can share its computation — bit-identical
/// to stepping each sequence separately. Callers insert sequences step by
/// step with an opaque `u64` key per step (a token id, a packed pair, …; two
/// steps may share a key only if their input rows are identical);
/// [`SequenceTrie::push_step`] returns `Some(row)` exactly when the step
/// created a new node whose input row must be filled. The fitness network's
/// batched trace-value encoding drops ~30% of its LSTM steps this way —
/// candidate trace values share list prefixes heavily.
///
/// Consumed by `Lstm::forward_batch_trie`.
#[derive(Debug, Clone, Default)]
pub struct SequenceTrie {
    dim: usize,
    levels: Vec<TrieLevel>,
    /// Per sequence: the (level, slot) its last step landed on; `None` for
    /// an empty sequence.
    terminals: Vec<Option<(usize, usize)>>,
    lookup: crate::hash::FxHashMap<(usize, usize, u64), usize>,
    /// Builder cursor: the node the current sequence last descended to.
    cursor: Option<(usize, usize)>,
}

/// One trie depth: every node at this depth, with its parent's slot in the
/// previous level (`usize::MAX` for depth 0, whose parent is the root) and
/// its input row in flat row-major storage.
#[derive(Debug, Clone, Default)]
pub(crate) struct TrieLevel {
    pub(crate) parents: Vec<usize>,
    pub(crate) rows: Vec<f32>,
}

impl SequenceTrie {
    /// Creates an empty trie of rows with `dim` columns.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        SequenceTrie {
            dim,
            ..SequenceTrie::default()
        }
    }

    /// Row width.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of sequences begun so far.
    #[must_use]
    pub fn num_sequences(&self) -> usize {
        self.terminals.len()
    }

    /// Whether the trie holds no sequences.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.terminals.is_empty()
    }

    /// Number of trie nodes (the LSTM steps actually computed).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.levels.iter().map(|l| l.parents.len()).sum()
    }

    /// Starts a new, initially empty sequence at the root.
    pub fn begin_sequence(&mut self) {
        self.cursor = None;
        self.terminals.push(None);
    }

    /// Descends one step along `key` from the current sequence's position.
    ///
    /// Returns `Some(row)` when the step created a new node: the caller must
    /// fill the returned (zero-initialized) input row. Returns `None` when a
    /// previous sequence already took this step — the existing node (and its
    /// already-filled row) is shared.
    ///
    /// # Panics
    ///
    /// Panics if no sequence has been begun.
    pub fn push_step(&mut self, key: u64) -> Option<&mut [f32]> {
        let terminal = self
            .terminals
            .last_mut()
            .expect("push_step before begin_sequence");
        let (level, parent_slot) = match self.cursor {
            None => (0, usize::MAX),
            Some((level, slot)) => (level + 1, slot),
        };
        if self.levels.len() == level {
            self.levels.push(TrieLevel::default());
        }
        if let Some(&slot) = self.lookup.get(&(level, parent_slot, key)) {
            self.cursor = Some((level, slot));
            *terminal = self.cursor;
            return None;
        }
        let nodes = &mut self.levels[level];
        let slot = nodes.parents.len();
        nodes.parents.push(parent_slot);
        let at = nodes.rows.len();
        nodes.rows.resize(at + self.dim, 0.0);
        self.lookup.insert((level, parent_slot, key), slot);
        self.cursor = Some((level, slot));
        *terminal = self.cursor;
        Some(&mut self.levels[level].rows[at..])
    }

    /// The per-depth node levels (for the LSTM evaluator).
    pub(crate) fn levels(&self) -> &[TrieLevel] {
        &self.levels
    }

    /// The terminal node of each sequence.
    pub(crate) fn terminals(&self) -> &[Option<(usize, usize)>] {
        &self.terminals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_ragged_sequences() {
        let mut batch = SequenceBatch::new(2);
        assert!(batch.is_empty());
        batch.begin_sequence();
        batch.push_row().copy_from_slice(&[1.0, 2.0]);
        batch.push_row().copy_from_slice(&[3.0, 4.0]);
        batch.begin_sequence(); // empty sequence
        batch.begin_sequence();
        batch.push_row().copy_from_slice(&[5.0, 6.0]);
        assert_eq!(batch.num_sequences(), 3);
        assert_eq!(batch.rows(), 3);
        assert_eq!(batch.seq_len(0), 2);
        assert_eq!(batch.seq_len(1), 0);
        assert_eq!(batch.seq_len(2), 1);
        assert_eq!(batch.row(0, 1), &[3.0, 4.0]);
        assert_eq!(batch.row(2, 0), &[5.0, 6.0]);
        assert_eq!(batch.dim(), 2);
    }

    #[test]
    fn clear_retains_capacity_semantics() {
        let mut batch = SequenceBatch::with_capacity(3, 4, 2);
        batch.begin_sequence();
        batch.push_row()[0] = 9.0;
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.rows(), 0);
        batch.begin_sequence();
        assert_eq!(batch.push_row(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn time_major_repacking_is_length_sorted_and_contiguous() {
        let mut batch = SequenceBatch::new(1);
        // Lengths 2, 0, 3, 2 — sorted order is 2, 0, 3 (ties keep input
        // order), then the empty sequence.
        for rows in [&[1.0, 2.0][..], &[], &[10.0, 20.0, 30.0], &[5.0, 6.0]] {
            batch.begin_sequence();
            for &v in rows {
                batch.push_row()[0] = v;
            }
        }
        let tm = TimeMajorBatch::from_batch(&batch);
        assert_eq!(tm.num_sequences(), 4);
        assert_eq!(tm.dim(), 1);
        assert_eq!(tm.max_len(), 3);
        assert_eq!(
            (0..4).map(|s| tm.sequence_for_slot(s)).collect::<Vec<_>>(),
            vec![2, 0, 3, 1]
        );
        assert_eq!(tm.slot_of(2), 0);
        assert_eq!(tm.slot_of(1), 3);
        assert_eq!(tm.slot_len(0), 3);
        assert_eq!(tm.slot_len(3), 0);
        assert_eq!(
            (0..3).map(|t| tm.active_rows(t)).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
        // Step slabs are contiguous in slot order.
        assert_eq!(tm.step_rows(0), &[10.0, 1.0, 5.0]);
        assert_eq!(tm.step_rows(1), &[20.0, 2.0, 6.0]);
        assert_eq!(tm.step_rows(2), &[30.0]);
        assert_eq!(tm.row(1, 2), &[6.0]);
        // Gradient-shaped clone: same layout, fresh width, all zero.
        let mut grads = tm.zeros_like(2);
        assert_eq!(grads.max_len(), 3);
        assert_eq!(grads.step_rows(0), &[0.0; 6]);
        grads.row_mut(2, 0).copy_from_slice(&[7.0, 8.0]);
        assert_eq!(grads.step_rows(2), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "push_row before begin_sequence")]
    fn push_row_requires_a_sequence() {
        let mut batch = SequenceBatch::new(1);
        let _ = batch.push_row();
    }

    #[test]
    fn trie_shares_prefixes_and_tracks_terminals() {
        let mut trie = SequenceTrie::new(1);
        // Sequences: [1,2,3], [1,2], [1,4], [] — prefix [1,2] shared.
        trie.begin_sequence();
        assert!(trie.push_step(1).is_some());
        assert!(trie.push_step(2).is_some());
        assert!(trie.push_step(3).is_some());
        trie.begin_sequence();
        assert!(trie.push_step(1).is_none());
        assert!(trie.push_step(2).is_none());
        trie.begin_sequence();
        assert!(trie.push_step(1).is_none());
        assert!(trie.push_step(4).is_some());
        trie.begin_sequence();
        assert_eq!(trie.num_sequences(), 4);
        assert_eq!(trie.node_count(), 4); // 1, 1-2, 1-2-3, 1-4
        assert_eq!(trie.terminals()[0], Some((2, 0)));
        assert_eq!(trie.terminals()[1], Some((1, 0)));
        assert_eq!(trie.terminals()[2], Some((1, 1)));
        assert_eq!(trie.terminals()[3], None);
        // Distinct keys under distinct parents do not collide.
        assert_eq!(trie.levels()[1].parents, vec![0, 0]);
        assert!(!trie.is_empty());
        assert_eq!(trie.dim(), 1);
    }

    #[test]
    #[should_panic(expected = "push_step before begin_sequence")]
    fn push_step_requires_a_sequence() {
        let mut trie = SequenceTrie::new(1);
        let _ = trie.push_step(0);
    }
}
