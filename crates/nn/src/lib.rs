//! # netsyn-nn
//!
//! A minimal, dependency-free neural-network substrate used to *learn* the
//! fitness functions of the NetSyn reproduction ("Learning Fitness Functions
//! for Machine Programming", MLSys 2021).
//!
//! The paper trains its fitness networks with TensorFlow; no deep-learning
//! framework is available in this reproduction's dependency budget, so this
//! crate implements the required pieces from scratch:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the handful of BLAS-like
//!   operations the layers need;
//! * [`Linear`], [`Embedding`], [`Lstm`], [`Mlp`], [`SequenceEncoder`] —
//!   layers with hand-derived backward passes (verified by numerical gradient
//!   checks in the test-suite);
//! * [`loss`] — softmax cross-entropy, binary cross-entropy and MSE;
//! * [`Sgd`] / [`Adam`] — optimizers over [`Param`] collections;
//! * [`ConfusionMatrix`] and accuracy metrics for Figure 7 of the paper.
//!
//! Everything is deterministic given an explicit RNG and serializable with
//! serde, so trained fitness models can be checkpointed to JSON and reloaded.
//!
//! ## Batched inference
//!
//! The genetic algorithm *scores whole populations per generation*, so
//! every layer has a batch-aware inference path:
//!
//! * [`Matrix::matmul`] / [`Matrix::matmul_into`] — a cache-blocked matrix
//!   product, parallelized across output rows for large operands, with a
//!   reusable-output-buffer variant for hot loops;
//! * [`Linear::forward_batch`] and [`Mlp::forward_batch`] — one GEMM per
//!   layer over a `batch x dim` matrix instead of `batch` GEMVs;
//! * [`SequenceBatch`] — flat row-major storage for batches of
//!   variable-length vector sequences, so batch builders write rows with
//!   `memcpy`s instead of allocating one `Vec<f32>` per step;
//! * [`TimeMajorBatch`] — a length-sorted, *time-major* repacking of a
//!   [`SequenceBatch`]: all rows of time step `t` are one contiguous slab,
//!   and because sequences are ordered longest-first the still-active batch
//!   is always a contiguous prefix of it. [`Lstm::forward_batch_flat`] (and
//!   the nested-`Vec` convenience wrapper [`Lstm::forward_batch`]) feed
//!   each step's slab straight into the blocked matmul — every time step
//!   computes all four gates for the active prefix with two gather-free
//!   matrix products;
//! * [`SequenceTrie`] and [`Lstm::forward_batch_trie`] — prefix-sharing
//!   batched inference: an LSTM state depends only on the consumed prefix,
//!   so sequences sharing a prefix (interned trace values in a GA
//!   population share ~30% of their steps) compute it exactly once.
//!   [`SequenceEncoder::forward_batch`] builds such a trie keyed by token;
//! * [`activation::softmax_rows`] / [`activation::sigmoid_rows`] — row-wise
//!   batched readouts;
//! * [`hash::FxHasher`] — the fast interning hasher behind the trie edge
//!   and token-sequence maps;
//! * [`simd`] — the 8-lane kernels under all of the above: a column-lane
//!   matmul and bitwise libm-compatible `vexp`/`vtanh`/`vsigmoid` sweeps
//!   (runtime-dispatched to AVX2+FMA, `NETSYN_SIMD=0` falls back to the
//!   scalar loops);
//! * [`Param::transposed`] — the batched paths consume weights transposed;
//!   the transpose is memoized on the parameter (interior mutability, cold
//!   on `Clone`, ignored by `PartialEq`/serde) and recomputed only after a
//!   weight update ([`Sgd::step`]/[`Adam::step`] invalidate it; any other
//!   in-place mutation of [`Param::value`] must call
//!   [`Param::invalidate_transpose`]).
//!
//! The batched paths are **bit-identical** to their per-sample
//! counterparts: the accumulation order over the inner dimension is the
//! same in `matmul` and `matvec`, every gate uses the same scalar
//! expression, and prefix sharing only removes duplicated work — so
//! `forward_batch` results can be compared to `forward` results with `==`.
//! The test-suite asserts this per layer and end-to-end.
//!
//! ## Batched training
//!
//! The trainer drives whole minibatches through batched backward passes —
//! [`Linear::backward_batch`], [`Mlp::backward_batch`],
//! [`Lstm::backward_batch`] and [`SequenceEncoder::backward_batch`], fed by
//! the matching `forward_batch_train` cache types ([`MlpBatchCache`],
//! [`LstmBatchCache`], [`SequenceEncoderBatchCache`]) — under the same
//! contract: **gradients are bit-identical to looping the per-sample
//! `backward` over the batch in input order.** Three design rules make
//! that hold:
//!
//! * Input-gradient rows come from one GEMM per step/layer
//!   ([`Matrix::matmul_slab_to`]) whose strictly `k`-ascending, unfused
//!   accumulation is exactly the dense per-sample transposed-matvec chain.
//! * Weight gradients accumulate through [`Matrix::add_outer_slab`] — a
//!   whole batch of outer products in one blocked GEMM whose per-element
//!   `r`-ascending chain replays the per-sample [`Matrix::add_outer`]
//!   calls. The LSTM defers its per-(sequence, step) contributions and
//!   lays them out flat in the reference visit order (sequences in input
//!   order, steps descending) before the single accumulating GEMM.
//! * Contributions to *different* parameters commute freely, so batched
//!   stages may interleave updates across parameters — only the op order
//!   *within* each parameter element matters, and that is preserved.
//!
//! Unlike the batched forward (which consumes the memoized
//! [`Param::transposed`] weight), the backward GEMMs read each weight in
//! its native layout — `grad_in = grad_out × W` needs `W` itself — so no
//! transpose is computed or invalidated on the gradient path; the memo
//! stays warm across a whole forward/backward/step minibatch cycle until
//! the optimizer actually changes the weights.
//!
//! First-layer/gradient-only loops can use
//! [`Linear::backward_params_only`] and the batched
//! `backward_batch_params_only` to skip dead input-gradient work. The
//! per-layer `batched_backward_is_bit_identical_to_per_sample` tests
//! compare every gradient bit under both `NETSYN_SIMD` modes, and the
//! fitness trainer pins byte-identical checkpoints end-to-end.
//!
//! ## Why column-lane SIMD preserves the bit-identity contract
//!
//! Vectorization usually changes float results by reassociating
//! reductions; this crate's kernels are designed so it cannot:
//!
//! * The matmul kernel assigns each **output column** to a SIMD lane and
//!   broadcasts `a[i][k]` across the lane, so every output element still
//!   accumulates its products over `k` in strictly ascending order with
//!   separate mul/add roundings (no FMA). The lanes partition *independent*
//!   accumulations instead of splitting one accumulation — per element it
//!   is the scalar op sequence, verbatim.
//! * The activation sweeps need `exp`/`tanh` values equal to libm's, so
//!   [`simd::scalar`] ports the host libm's `expf`/`expm1f`/`tanhf`
//!   bit-for-bit (validated exhaustively over all 2^32 inputs by
//!   `simd_validate`, cross-checked at startup, and re-verified on boundary
//!   sets plus >10^6 seeded samples in the test-suite). The lane versions
//!   apply the same per-element operations structure-of-arrays, with the
//!   fdlibm branch ladders if-converted into fully 8-wide mask/select
//!   vector ops (every lane evaluates every arm, masks pick the scalar
//!   path's result) — same values, no reassociation.
//!
//! ## Example
//!
//! ```
//! use netsyn_nn::{Activation, Adam, Mlp, Parameterized};
//! use netsyn_nn::loss::softmax_cross_entropy;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut model = Mlp::new(&[4, 16, 3], Activation::Relu, &mut rng);
//! let mut optimizer = Adam::new(1e-2);
//!
//! // One training step on a single (input, class) pair.
//! let (logits, cache) = model.forward(&[0.1, -0.2, 0.3, 0.4]);
//! let (loss, grad) = softmax_cross_entropy(&logits, 2);
//! model.backward(&cache, &grad);
//! optimizer.step(&mut model.params_mut());
//! model.zero_grad();
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(rust_2018_idioms)]

pub mod activation;
mod batch;
mod embedding;
mod encoder;
mod error;
pub mod hash;
mod linear;
pub mod loss;
mod lstm;
pub mod metrics;
mod mlp;
mod optim;
mod param;
pub mod simd;
pub(crate) mod sync_select;
mod tensor;

pub use activation::Activation;
pub use batch::{SequenceBatch, SequenceTrie, TimeMajorBatch};
pub use embedding::Embedding;
pub use encoder::{SequenceEncoder, SequenceEncoderBatchCache, SequenceEncoderCache};
pub use error::NnError;
pub use hash::{FxHashMap, FxHasher};
pub use linear::Linear;
pub use lstm::{Lstm, LstmBatchCache, LstmCache};
pub use metrics::ConfusionMatrix;
pub use mlp::{Mlp, MlpBatchCache, MlpCache};
pub use optim::{Adam, Sgd};
pub use param::{Param, Parameterized};
pub use tensor::{vecops, Matrix};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
        assert_send_sync::<Linear>();
        assert_send_sync::<Lstm>();
        assert_send_sync::<Mlp>();
        assert_send_sync::<SequenceEncoder>();
        assert_send_sync::<Adam>();
        assert_send_sync::<ConfusionMatrix>();
    }
}
