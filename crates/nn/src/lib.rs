//! # netsyn-nn
//!
//! A minimal, dependency-free neural-network substrate used to *learn* the
//! fitness functions of the NetSyn reproduction ("Learning Fitness Functions
//! for Machine Programming", MLSys 2021).
//!
//! The paper trains its fitness networks with TensorFlow; no deep-learning
//! framework is available in this reproduction's dependency budget, so this
//! crate implements the required pieces from scratch:
//!
//! * [`Matrix`] — a dense row-major `f32` matrix with the handful of BLAS-like
//!   operations the layers need;
//! * [`Linear`], [`Embedding`], [`Lstm`], [`Mlp`], [`SequenceEncoder`] —
//!   layers with hand-derived backward passes (verified by numerical gradient
//!   checks in the test-suite);
//! * [`loss`] — softmax cross-entropy, binary cross-entropy and MSE;
//! * [`Sgd`] / [`Adam`] — optimizers over [`Param`] collections;
//! * [`ConfusionMatrix`] and accuracy metrics for Figure 7 of the paper.
//!
//! Everything is deterministic given an explicit RNG and serializable with
//! serde, so trained fitness models can be checkpointed to JSON and reloaded.
//!
//! ## Example
//!
//! ```
//! use netsyn_nn::{Activation, Adam, Mlp, Parameterized};
//! use netsyn_nn::loss::softmax_cross_entropy;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
//! let mut model = Mlp::new(&[4, 16, 3], Activation::Relu, &mut rng);
//! let mut optimizer = Adam::new(1e-2);
//!
//! // One training step on a single (input, class) pair.
//! let (logits, cache) = model.forward(&[0.1, -0.2, 0.3, 0.4]);
//! let (loss, grad) = softmax_cross_entropy(&logits, 2);
//! model.backward(&cache, &grad);
//! optimizer.step(&mut model.params_mut());
//! model.zero_grad();
//! assert!(loss.is_finite());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod activation;
mod embedding;
mod encoder;
mod error;
mod linear;
pub mod loss;
mod lstm;
pub mod metrics;
mod mlp;
mod optim;
mod param;
mod tensor;

pub use activation::Activation;
pub use embedding::Embedding;
pub use encoder::{SequenceEncoder, SequenceEncoderCache};
pub use error::NnError;
pub use linear::Linear;
pub use lstm::{Lstm, LstmCache};
pub use metrics::ConfusionMatrix;
pub use mlp::{Mlp, MlpCache};
pub use optim::{Adam, Sgd};
pub use param::{Param, Parameterized};
pub use tensor::{vecops, Matrix};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Matrix>();
        assert_send_sync::<Linear>();
        assert_send_sync::<Lstm>();
        assert_send_sync::<Mlp>();
        assert_send_sync::<SequenceEncoder>();
        assert_send_sync::<Adam>();
        assert_send_sync::<ConfusionMatrix>();
    }
}
