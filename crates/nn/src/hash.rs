//! A fast, non-cryptographic hasher for the batch-inference interning maps.
//!
//! The batched fitness path interns token sequences and trie edges in hash
//! maps that are probed once per LSTM step of every scored candidate —
//! `std`'s DDoS-resistant SipHash costs more than the table lookup there.
//! This is the Fx multiply-rotate hash (rustc's interning hasher): a few
//! cycles per word, good distribution on the short integer keys these maps
//! use, and no resistance to adversarial keys (none of these maps are
//! attacker-reachable; keys are token ids and interned indices).

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-rotate hasher.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_stable_and_key_sensitive() {
        let hash_of = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(hash_of(b"abcdefgh-ijk"), hash_of(b"abcdefgh-ijk"));
        assert_ne!(hash_of(b"abcdefgh-ijk"), hash_of(b"abcdefgh-ijl"));
        assert_ne!(hash_of(b""), hash_of(b"\x01"));
    }

    #[test]
    fn works_as_a_map_hasher() {
        let mut map: FxHashMap<(usize, u64), usize> = FxHashMap::default();
        for i in 0..1000 {
            map.insert((i, (i as u64) << 32), i);
        }
        assert_eq!(map.len(), 1000);
        assert_eq!(map.get(&(407, 407 << 32)), Some(&407));
        assert_eq!(map.get(&(407, 408 << 32)), None);
    }
}
