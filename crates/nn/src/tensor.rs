//! A minimal dense 2-D matrix type with the operations needed by the
//! fitness-function models (dense layers, LSTM cells, losses).
//!
//! The matrix is row-major `f32`. Panicking variants are used internally for
//! programming errors (shape mismatches are bugs, not runtime conditions),
//! matching the convention of ndarray-style libraries.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Creates a 1-row matrix from a vector.
    #[must_use]
    pub fn row_vector(data: Vec<f32>) -> Self {
        let cols = data.len();
        Matrix {
            rows: 1,
            cols,
            data,
        }
    }

    /// Creates a matrix with entries drawn uniformly from `[-scale, scale]`.
    #[must_use]
    pub fn uniform<R: Rng + ?Sized>(rows: usize, cols: usize, scale: f32, rng: &mut R) -> Self {
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-scale..=scale))
            .collect();
        Matrix { rows, cols, data }
    }

    /// Xavier/Glorot uniform initialization for a layer with the given fan-in
    /// and fan-out (`rows` = fan-out, `cols` = fan-in).
    #[must_use]
    pub fn xavier<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        let scale = (6.0 / (rows + cols) as f32).sqrt();
        Matrix::uniform(rows, cols, scale, rng)
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix product `self * other`, cache-blocked and parallelized across
    /// output rows for large operands.
    ///
    /// Accumulation over the inner dimension is strictly ascending for every
    /// output element — the same order [`Matrix::matvec`] uses — so batched
    /// forward passes produce bit-identical results to their per-sample
    /// counterparts.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_into(other, &mut out);
        out
    }

    /// [`Matrix::matmul`] writing into a caller-provided output buffer,
    /// reshaping (and reallocating only if needed) so hot loops can reuse
    /// one allocation across calls.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        other.matmul_slab_into(&self.data, self.rows, self.cols, out);
    }

    /// `lhs * self` where `lhs` is a borrowed row-major slab of
    /// `lhs_rows x k_dim` values — the entry point the time-major LSTM
    /// layouts use to multiply a contiguous per-step slab without first
    /// materializing it as a [`Matrix`]. Identical dispatch, blocking and
    /// accumulation order to [`Matrix::matmul_into`] (which delegates
    /// here), so results are bit-identical to the per-sample `matvec`.
    ///
    /// # Panics
    ///
    /// Panics if `k_dim != self.rows` or `lhs` is shorter than
    /// `lhs_rows * k_dim`.
    pub fn matmul_slab_into(&self, lhs: &[f32], lhs_rows: usize, k_dim: usize, out: &mut Matrix) {
        out.rows = lhs_rows;
        out.cols = self.cols;
        out.data.resize(lhs_rows * self.cols, 0.0);
        self.matmul_slab_to(lhs, lhs_rows, k_dim, &mut out.data);
    }

    /// [`Matrix::matmul_slab_into`] writing into a caller-provided slice of
    /// exactly `lhs_rows * cols` values (overwritten, not accumulated) — the
    /// form the batched LSTM backward uses to GEMM per-step gradient slabs
    /// straight into time-major storage it does not own as a [`Matrix`].
    ///
    /// # Panics
    ///
    /// Panics if `k_dim != self.rows`, `lhs` is shorter than
    /// `lhs_rows * k_dim`, or `out.len() != lhs_rows * cols`.
    pub fn matmul_slab_to(&self, lhs: &[f32], lhs_rows: usize, k_dim: usize, out: &mut [f32]) {
        assert_eq!(
            k_dim, self.rows,
            "matmul shape mismatch: {lhs_rows}x{k_dim} * {}x{}",
            self.rows, self.cols
        );
        assert_eq!(
            out.len(),
            lhs_rows * self.cols,
            "matmul output length mismatch"
        );
        let lhs = &lhs[..lhs_rows * k_dim];
        out.fill(0.0);

        if lhs_rows == 0 || self.cols == 0 {
            return;
        }

        // Below this many multiply-adds, pool dispatch overhead dominates.
        const PAR_WORK_THRESHOLD: usize = 1 << 19;
        let work = lhs_rows * k_dim * self.cols;
        let tasks = if work < PAR_WORK_THRESHOLD {
            1
        } else {
            // Split into more chunks than pool threads so the work-stealing
            // scheduler can balance them (a thread that finishes early
            // steals another chunk instead of idling at the barrier). Each
            // output row is computed independently with a fixed op order,
            // so chunk boundaries never change a single bit of the result.
            (rayon::current_num_threads() * rayon::TASKS_PER_THREAD).min(lhs_rows)
        };
        if tasks <= 1 {
            matmul_rows(lhs, &self.data, out, 0, lhs_rows, k_dim, self.cols);
            return;
        }
        use rayon::prelude::ParallelSliceMut;
        let rows_per_chunk = lhs_rows.div_ceil(tasks);
        let n_dim = self.cols;
        out.par_chunks_mut(rows_per_chunk * n_dim)
            .enumerate()
            .for_each(|(chunk_index, chunk)| {
                let row_start = chunk_index * rows_per_chunk;
                let row_count = chunk.len() / n_dim;
                matmul_rows(lhs, &self.data, chunk, row_start, row_count, k_dim, n_dim);
            });
    }

    /// Reference `O(n^3)` triple-loop product, kept as the ground truth the
    /// blocked kernel is tested against.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != other.rows`.
    #[must_use]
    pub fn matmul_naive(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                let row_out = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let row_b = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, &b) in row_out.iter_mut().zip(row_b.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols != v.len()`.
    #[must_use]
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(&a, &b)| a * b).sum())
            .collect()
    }

    /// Transposed matrix-vector product `self^T * v`.
    ///
    /// # Panics
    ///
    /// Panics if `self.rows != v.len()`.
    #[must_use]
    pub fn matvec_transposed(&self, v: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        self.matvec_transposed_into(v, &mut out);
        out
    }

    /// [`Matrix::matvec_transposed`] accumulating into a caller-provided
    /// (zeroed) output slice — the allocation-free form the per-sample
    /// backward passes use for input gradients. The accumulation is
    /// **dense**: every row contributes in strictly ascending order with
    /// separate mul/add roundings, lane-vectorized across the *output*
    /// columns so every element keeps the scalar op order. Per output
    /// element this is the exact `k`-ascending chain of
    /// [`Matrix::matmul_slab_to`], which is what lets the batched backward
    /// kernels replace a loop of these calls with one GEMM bit-identically.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != rows` or `out.len() != cols`.
    pub fn matvec_transposed_into(&self, v: &[f32], out: &mut [f32]) {
        assert_eq!(self.rows, v.len(), "matvec_transposed shape mismatch");
        assert_eq!(self.cols, out.len(), "matvec_transposed output mismatch");
        for (i, &vi) in v.iter().enumerate() {
            vecops::axpy(out, vi, self.row(i));
        }
    }

    /// Transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    #[must_use]
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, alpha: f32) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
    }

    /// Sets every element to zero.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Applies `f` to every element, returning a new matrix.
    #[must_use]
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    #[must_use]
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum::<f32>().sqrt()
    }

    /// Adds `row` to every row of the matrix in place (bias broadcast),
    /// lane-vectorized eight columns at a time (element-wise addition, so
    /// trivially bit-identical to the scalar loop).
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        use crate::simd::{F32x8, LANES};
        assert_eq!(row.len(), self.cols, "broadcast row length mismatch");
        let main = self.cols - self.cols % LANES;
        for r in 0..self.rows {
            let out_row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            let mut j = 0;
            while j < main {
                (F32x8::load(&out_row[j..]) + F32x8::load(&row[j..])).store(&mut out_row[j..]);
                j += LANES;
            }
            for (o, &b) in out_row[main..].iter_mut().zip(row[main..].iter()) {
                *o += b;
            }
        }
    }

    /// Shrinks the matrix to its first `n` rows (no reallocation).
    ///
    /// # Panics
    ///
    /// Panics if `n > rows`.
    pub fn truncate_rows(&mut self, n: usize) {
        assert!(n <= self.rows, "cannot truncate {} rows to {n}", self.rows);
        self.rows = n;
        self.data.truncate(n * self.cols);
    }

    /// Adds the outer product `alpha * u * v^T` to this matrix in place.
    ///
    /// The update is **dense** — every row receives its `(alpha * u[i]) *
    /// v[j]` term (separate mul/add roundings, never fused) even when
    /// `u[i]` is exactly zero, so a sequence of these calls is
    /// bit-identical to one [`Matrix::add_outer_slab`] over the same rows.
    ///
    /// # Panics
    ///
    /// Panics if `u.len() != rows` or `v.len() != cols`.
    pub fn add_outer(&mut self, u: &[f32], v: &[f32], alpha: f32) {
        assert_eq!(u.len(), self.rows, "add_outer row mismatch");
        assert_eq!(v.len(), self.cols, "add_outer col mismatch");
        for (i, &ui) in u.iter().enumerate() {
            let row = &mut self.data[i * self.cols..(i + 1) * self.cols];
            vecops::axpy(row, alpha * ui, v);
        }
    }

    /// Accumulates a whole batch of outer products in one blocked GEMM:
    /// `self[i][j] += Σ_r u[r][i] * v[r][j]` where `u` is a row-major
    /// `k_rows x rows` slab and `v` a row-major `k_rows x cols` slab.
    ///
    /// Per parameter element the products accumulate strictly
    /// `r`-ascending with separate mul/add roundings on top of the
    /// existing value — the exact op chain of calling
    /// [`Matrix::add_outer`]`(u.row(r), v.row(r), 1.0)` for `r = 0, 1, …`
    /// in order, so batched weight-gradient sweeps that lay their
    /// per-step rows out in the reference visit order are bit-identical
    /// to the per-sample loop by construction. The lane kernel keeps
    /// eight column accumulators in registers across an `r` block (the
    /// latency-bound per-call `axpy` round-trips every row through memory
    /// instead), which is where the batched backward throughput comes
    /// from.
    ///
    /// # Panics
    ///
    /// Panics if `u` is shorter than `k_rows * rows` or `v` shorter than
    /// `k_rows * cols`.
    pub fn add_outer_slab(&mut self, u: &[f32], v: &[f32], k_rows: usize) {
        let (m, n) = (self.rows, self.cols);
        let u = &u[..k_rows * m];
        let v = &v[..k_rows * n];
        if crate::simd::linear_lanes_active() {
            #[cfg(target_arch = "x86_64")]
            if std::arch::is_x86_feature_detected!("avx") {
                // SAFETY: AVX support was just verified at runtime.
                unsafe { add_outer_slab_avx(&mut self.data, u, v, k_rows, m, n) };
                return;
            }
            add_outer_slab_lanes(&mut self.data, u, v, k_rows, m, n);
        } else {
            add_outer_slab_scalar(&mut self.data, u, v, k_rows, m, n);
        }
    }
}

/// The inner kernel of [`Matrix::matmul`]: computes output rows
/// `row_start..row_start + row_count` into `out` (a buffer holding exactly
/// those rows).
///
/// Dispatches between the column-lane SIMD kernel (AVX-specialized when the
/// CPU supports it, portable [`F32x8`](crate::simd::F32x8) lanes otherwise)
/// and the scalar reference loop when SIMD is disabled via `NETSYN_SIMD=0`.
/// Every variant accumulates each output element's `k`-products in strictly
/// ascending order with separate mul/add roundings, so all of them — and
/// [`Matrix::matvec`] — produce bit-identical results.
fn matmul_rows(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    row_count: usize,
    k_dim: usize,
    n_dim: usize,
) {
    if crate::simd::linear_lanes_active() {
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just verified at runtime.
            unsafe { matmul_rows_avx(a, b, out, row_start, row_count, k_dim, n_dim) };
            return;
        }
        matmul_rows_lanes(a, b, out, row_start, row_count, k_dim, n_dim);
    } else {
        matmul_rows_scalar(a, b, out, row_start, row_count, k_dim, n_dim);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn matmul_rows_avx(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    row_count: usize,
    k_dim: usize,
    n_dim: usize,
) {
    matmul_rows_lanes(a, b, out, row_start, row_count, k_dim, n_dim);
}

/// Column-lane matmul kernel: broadcasts `a[i][k]` and multiply-adds it
/// (separate roundings, never fused) across eight output columns at a
/// time, keeping the eight partial sums in a register over each `k` block.
/// Per output element this performs the exact scalar op sequence —
/// `k`-ascending `acc + a[i][k] * b[k][j]` — so it is bit-identical to
/// [`matmul_rows_scalar`] by construction.
#[inline(always)]
fn matmul_rows_lanes(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    row_count: usize,
    k_dim: usize,
    n_dim: usize,
) {
    use crate::simd::{F32x8, LANES};
    // Blocking the inner dimension keeps a `KB x n_dim` panel of `b` hot
    // in cache across the row loop.
    const KB: usize = 64;
    // Four lane tiles (32 columns) advance together so the inner `k` loop
    // carries four independent add chains — the accumulator dependency
    // would otherwise serialize on the add latency.
    const TILES: usize = 4;
    let n_main = n_dim - n_dim % LANES;
    let n_wide = n_dim - n_dim % (TILES * LANES);
    let mut kb = 0;
    while kb < k_dim {
        let k_end = (kb + KB).min(k_dim);
        for i in 0..row_count {
            let a_row = &a[(row_start + i) * k_dim..(row_start + i + 1) * k_dim];
            let out_row = &mut out[i * n_dim..(i + 1) * n_dim];
            let mut j = 0;
            while j < n_wide {
                let mut acc0 = F32x8::load(&out_row[j..]);
                let mut acc1 = F32x8::load(&out_row[j + LANES..]);
                let mut acc2 = F32x8::load(&out_row[j + 2 * LANES..]);
                let mut acc3 = F32x8::load(&out_row[j + 3 * LANES..]);
                for k in kb..k_end {
                    let a_val = F32x8::splat(a_row[k]);
                    let b_row = &b[k * n_dim + j..];
                    acc0 = acc0 + a_val * F32x8::load(b_row);
                    acc1 = acc1 + a_val * F32x8::load(&b_row[LANES..]);
                    acc2 = acc2 + a_val * F32x8::load(&b_row[2 * LANES..]);
                    acc3 = acc3 + a_val * F32x8::load(&b_row[3 * LANES..]);
                }
                acc0.store(&mut out_row[j..]);
                acc1.store(&mut out_row[j + LANES..]);
                acc2.store(&mut out_row[j + 2 * LANES..]);
                acc3.store(&mut out_row[j + 3 * LANES..]);
                j += TILES * LANES;
            }
            while j < n_main {
                let mut acc = F32x8::load(&out_row[j..]);
                for k in kb..k_end {
                    let a_val = F32x8::splat(a_row[k]);
                    let b_lane = F32x8::load(&b[k * n_dim + j..]);
                    acc = acc + a_val * b_lane;
                }
                acc.store(&mut out_row[j..]);
                j += LANES;
            }
            for j in n_main..n_dim {
                let mut acc = out_row[j];
                for k in kb..k_end {
                    acc += a_row[k] * b[k * n_dim + j];
                }
                out_row[j] = acc;
            }
        }
        kb = k_end;
    }
}

/// The scalar reference kernel (the pre-SIMD cache-blocked loop), kept as
/// the `NETSYN_SIMD=0` fallback and the ground truth the lane kernel is
/// tested against.
fn matmul_rows_scalar(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    row_start: usize,
    row_count: usize,
    k_dim: usize,
    n_dim: usize,
) {
    const IB: usize = 16;
    const KB: usize = 64;
    let mut ib = 0;
    while ib < row_count {
        let i_end = (ib + IB).min(row_count);
        let mut kb = 0;
        while kb < k_dim {
            let k_end = (kb + KB).min(k_dim);
            for i in ib..i_end {
                let a_row = &a[(row_start + i) * k_dim..(row_start + i + 1) * k_dim];
                let out_row = &mut out[i * n_dim..(i + 1) * n_dim];
                for k in kb..k_end {
                    let a_val = a_row[k];
                    let b_row = &b[k * n_dim..(k + 1) * n_dim];
                    for (o, &b_val) in out_row.iter_mut().zip(b_row.iter()) {
                        *o += a_val * b_val;
                    }
                }
            }
            kb = k_end;
        }
        ib = i_end;
    }
}

/// AVX-compiled wrapper of [`add_outer_slab_lanes`]; identical op order, so
/// identical bits — the `target_feature` attribute only licenses wider
/// codegen for the portable lane type.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn add_outer_slab_avx(
    out: &mut [f32],
    u: &[f32],
    v: &[f32],
    k_rows: usize,
    m: usize,
    n: usize,
) {
    add_outer_slab_lanes(out, u, v, k_rows, m, n);
}

/// Column-lane kernel of [`Matrix::add_outer_slab`]: for each output row
/// `i`, lane tiles of columns accumulate `u[r][i] * v[r][j]` with `r`
/// innermost — the eight partial sums stay in registers across the `r`
/// block instead of round-tripping through the output row per `r`. Per
/// element the op sequence is the `r`-ascending `acc + u[r][i] * v[r][j]`
/// chain (separate roundings), bit-identical to
/// [`add_outer_slab_scalar`] by construction.
#[inline(always)]
fn add_outer_slab_lanes(out: &mut [f32], u: &[f32], v: &[f32], k_rows: usize, m: usize, n: usize) {
    use crate::simd::{F32x8, LANES};
    // Blocking `r` keeps an `RB x n` panel of `v` hot in cache across the
    // output-row loop.
    const RB: usize = 64;
    // Four lane tiles (32 columns) advance together so the inner `r` loop
    // carries four independent add chains.
    const TILES: usize = 4;
    let n_main = n - n % LANES;
    let n_wide = n - n % (TILES * LANES);
    let mut rb = 0;
    while rb < k_rows {
        let r_end = (rb + RB).min(k_rows);
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            let mut j = 0;
            while j < n_wide {
                let mut acc0 = F32x8::load(&out_row[j..]);
                let mut acc1 = F32x8::load(&out_row[j + LANES..]);
                let mut acc2 = F32x8::load(&out_row[j + 2 * LANES..]);
                let mut acc3 = F32x8::load(&out_row[j + 3 * LANES..]);
                for r in rb..r_end {
                    let u_val = F32x8::splat(u[r * m + i]);
                    let v_row = &v[r * n + j..];
                    acc0 = acc0 + u_val * F32x8::load(v_row);
                    acc1 = acc1 + u_val * F32x8::load(&v_row[LANES..]);
                    acc2 = acc2 + u_val * F32x8::load(&v_row[2 * LANES..]);
                    acc3 = acc3 + u_val * F32x8::load(&v_row[3 * LANES..]);
                }
                acc0.store(&mut out_row[j..]);
                acc1.store(&mut out_row[j + LANES..]);
                acc2.store(&mut out_row[j + 2 * LANES..]);
                acc3.store(&mut out_row[j + 3 * LANES..]);
                j += TILES * LANES;
            }
            while j < n_main {
                let mut acc = F32x8::load(&out_row[j..]);
                for r in rb..r_end {
                    let u_val = F32x8::splat(u[r * m + i]);
                    acc = acc + u_val * F32x8::load(&v[r * n + j..]);
                }
                acc.store(&mut out_row[j..]);
                j += LANES;
            }
            for j in n_main..n {
                let mut acc = out_row[j];
                for r in rb..r_end {
                    acc += u[r * m + i] * v[r * n + j];
                }
                out_row[j] = acc;
            }
        }
        rb = r_end;
    }
}

/// Scalar reference kernel of [`Matrix::add_outer_slab`] — the
/// `NETSYN_SIMD=0` fallback and the ground truth the lane kernel is tested
/// against. Same `r`-blocked loop nest, same per-element chain.
fn add_outer_slab_scalar(out: &mut [f32], u: &[f32], v: &[f32], k_rows: usize, m: usize, n: usize) {
    const RB: usize = 64;
    let mut rb = 0;
    while rb < k_rows {
        let r_end = (rb + RB).min(k_rows);
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for j in 0..n {
                let mut acc = out_row[j];
                for r in rb..r_end {
                    acc += u[r * m + i] * v[r * n + j];
                }
                out_row[j] = acc;
            }
        }
        rb = r_end;
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

/// Vector helpers shared by the layer implementations.
pub mod vecops {
    /// In-place `dst[j] += a * src[j]`, lane-vectorized eight elements at a
    /// time with **separate** mul/add roundings (never fused). Elements are
    /// independent, so the lane form is bit-identical to the scalar loop —
    /// this is the row primitive under [`super::Matrix::add_outer`] and
    /// [`super::Matrix::matvec_transposed`], whose dense per-row chains are
    /// what the batched backward GEMMs
    /// ([`super::Matrix::add_outer_slab`] /
    /// [`super::Matrix::matmul_slab_to`]) replay element-for-element.
    ///
    /// # Panics
    ///
    /// Panics if `src` is shorter than `dst`.
    pub fn axpy(dst: &mut [f32], a: f32, src: &[f32]) {
        use crate::simd::{F32x8, LANES};
        let n = dst.len();
        let main = n - n % LANES;
        let av = F32x8::splat(a);
        let mut j = 0;
        while j < main {
            (F32x8::load(&dst[j..]) + av * F32x8::load(&src[j..])).store(&mut dst[j..]);
            j += LANES;
        }
        for (o, &s) in dst[main..].iter_mut().zip(src[main..n].iter()) {
            *o += a * s;
        }
    }

    /// Element-wise sum of two slices.
    #[must_use]
    pub fn add(a: &[f32], b: &[f32]) -> Vec<f32> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(&x, &y)| x + y).collect()
    }

    /// Element-wise product of two slices.
    #[must_use]
    pub fn hadamard(a: &[f32], b: &[f32]) -> Vec<f32> {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(&x, &y)| x * y).collect()
    }

    /// In-place `a += b`.
    pub fn add_assign(a: &mut [f32], b: &[f32]) {
        debug_assert_eq!(a.len(), b.len());
        for (x, &y) in a.iter_mut().zip(b.iter()) {
            *x += y;
        }
    }

    /// Concatenates slices into a single vector.
    #[must_use]
    pub fn concat(parts: &[&[f32]]) -> Vec<f32> {
        let mut out = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
        for p in parts {
            out.extend_from_slice(p);
        }
        out
    }

    /// Dot product.
    #[must_use]
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b.iter()).map(|(&x, &y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn construction_and_indexing() {
        let mut m = Matrix::zeros(2, 3);
        assert_eq!(m.shape(), (2, 3));
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
        let v = Matrix::row_vector(vec![1.0, 2.0]);
        assert_eq!(v.shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_validates_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_panics_on_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn blocked_matmul_matches_naive_reference() {
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        // Cover shapes below and above the blocking and parallel thresholds,
        // including non-multiples of the block sizes.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (17, 65, 33),
            (64, 64, 64),
            (130, 70, 190),
        ] {
            let a = Matrix::uniform(m, k, 1.0, &mut rng);
            let b = Matrix::uniform(k, n, 1.0, &mut rng);
            let blocked = a.matmul(&b);
            let naive = a.matmul_naive(&b);
            assert_eq!(blocked.shape(), (m, n));
            for (x, y) in blocked.data().iter().zip(naive.data().iter()) {
                assert_eq!(x.to_bits(), y.to_bits(), "{m}x{k}x{n} mismatch");
            }
        }
    }

    #[test]
    fn blocked_matmul_matches_matvec_per_row() {
        // The batched inference path relies on X * W^T computing, per row,
        // exactly what W.matvec(x) computes — bit for bit.
        let mut rng = ChaCha8Rng::seed_from_u64(34);
        let w = Matrix::uniform(7, 19, 1.0, &mut rng);
        let x = Matrix::uniform(5, 19, 1.0, &mut rng);
        let wt = w.transpose();
        let y = x.matmul(&wt);
        for r in 0..x.rows() {
            let single = w.matvec(x.row(r));
            for (a, b) in y.row(r).iter().zip(single.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn matmul_into_reuses_buffers_across_shapes() {
        let mut rng = ChaCha8Rng::seed_from_u64(35);
        let mut out = Matrix::zeros(1, 1);
        let a = Matrix::uniform(4, 6, 1.0, &mut rng);
        let b = Matrix::uniform(6, 3, 1.0, &mut rng);
        a.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (4, 3));
        assert_eq!(out, a.matmul_naive(&b));
        // Stale contents and the old shape must not leak into the result.
        let c = Matrix::uniform(2, 6, 1.0, &mut rng);
        c.matmul_into(&b, &mut out);
        assert_eq!(out.shape(), (2, 3));
        assert_eq!(out, c.matmul_naive(&b));
    }

    #[test]
    fn add_row_broadcast_and_truncate_rows() {
        let mut m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        m.add_row_broadcast(&[10.0, 20.0, 30.0]);
        assert_eq!(m.data(), &[11.0, 22.0, 33.0, 14.0, 25.0, 36.0]);
        m.truncate_rows(1);
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(m.data(), &[11.0, 22.0, 33.0]);
    }

    #[test]
    fn empty_matmul_shapes_are_handled() {
        let a = Matrix::zeros(0, 4);
        let b = Matrix::zeros(4, 3);
        assert_eq!(a.matmul(&b).shape(), (0, 3));
        let c = Matrix::zeros(2, 4);
        let d = Matrix::zeros(4, 0);
        assert_eq!(c.matmul(&d).shape(), (2, 0));
    }

    #[test]
    fn matvec_and_transposed_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.matvec_transposed(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let t = a.transpose();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn add_and_add_scaled() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).data(), &[11.0, 22.0, 33.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.data(), &[6.0, 12.0, 18.0]);
        c.fill_zero();
        assert_eq!(c.data(), &[0.0, 0.0, 0.0]);
    }

    #[test]
    fn map_and_norm() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert_eq!(a.norm(), 5.0);
        assert_eq!(a.map(|x| x * 2.0).data(), &[6.0, 8.0]);
    }

    #[test]
    fn add_outer_accumulates_rank_one_update() {
        let mut m = Matrix::zeros(2, 3);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], 1.0);
        assert_eq!(m.data(), &[1.0, 0.0, -1.0, 2.0, 0.0, -2.0]);
        m.add_outer(&[1.0, 2.0], &[1.0, 0.0, -1.0], -1.0);
        assert_eq!(m.data(), &[0.0; 6]);
    }

    #[test]
    fn add_outer_slab_is_bit_identical_to_sequential_add_outer() {
        let mut rng = ChaCha8Rng::seed_from_u64(97);
        // Sizes straddle the lane width, the 4-tile width and the `r`
        // block: columns hit the wide-tile, single-lane and scalar-tail
        // paths; 150 rows span three 64-row blocks.
        for (m, n, k) in [(5, 37, 150), (12, 8, 3), (3, 2, 1), (4, 33, 0)] {
            let mut reference = Matrix::uniform(m, n, 1.0, &mut rng);
            let mut batched = reference.clone();
            let mut u = Matrix::uniform(k.max(1), m, 1.0, &mut rng);
            let v = Matrix::uniform(k.max(1), n, 1.0, &mut rng);
            if k > 0 {
                // Exact zeros exercise the dense (no-skip) semantics.
                u.set(0, 0, 0.0);
            }
            for r in 0..k {
                reference.add_outer(u.row(r), v.row(r), 1.0);
            }
            batched.add_outer_slab(&u.data()[..k * m], &v.data()[..k * n], k);
            for (a, b) in batched.data().iter().zip(reference.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "({m}x{n}, k={k})");
            }
        }
    }

    #[test]
    fn matmul_slab_to_is_bit_identical_to_matvec_transposed() {
        let mut rng = ChaCha8Rng::seed_from_u64(98);
        let w = Matrix::uniform(37, 21, 1.0, &mut rng);
        let dz = Matrix::uniform(9, 37, 1.0, &mut rng);
        let mut out = vec![f32::NAN; 9 * 21];
        w.matmul_slab_to(dz.data(), 9, 37, &mut out);
        for r in 0..9 {
            let reference = w.matvec_transposed(dz.row(r));
            for (a, b) in out[r * 21..(r + 1) * 21].iter().zip(reference.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "row {r}");
            }
        }
    }

    #[test]
    fn random_initializers_are_bounded_and_deterministic() {
        let mut r1 = ChaCha8Rng::seed_from_u64(1);
        let mut r2 = ChaCha8Rng::seed_from_u64(1);
        let a = Matrix::xavier(8, 4, &mut r1);
        let b = Matrix::xavier(8, 4, &mut r2);
        assert_eq!(a, b);
        let scale = (6.0_f32 / 12.0).sqrt();
        assert!(a.data().iter().all(|&x| x.abs() <= scale));
        let u = Matrix::uniform(3, 3, 0.1, &mut r1);
        assert!(u.data().iter().all(|&x| x.abs() <= 0.1));
    }

    #[test]
    fn vecops_helpers() {
        use vecops::*;
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(hadamard(&[1.0, 2.0], &[3.0, 4.0]), vec![3.0, 8.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        let mut a = vec![1.0, 1.0];
        add_assign(&mut a, &[2.0, 3.0]);
        assert_eq!(a, vec![3.0, 4.0]);
        assert_eq!(concat(&[&[1.0][..], &[2.0, 3.0][..]]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_round_trip() {
        let m = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }
}
