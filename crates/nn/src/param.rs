//! Trainable parameters: a value matrix paired with its gradient accumulator
//! and a lazily cached transpose of the values for the batched forward paths.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// A trainable parameter: the weight values and their accumulated gradient.
///
/// The batched inference paths (`Linear::forward_batch_into`, the batched
/// LSTM sweeps) consume the weight *transposed*; [`Param::transposed`] memoizes
/// that transpose so it is computed once per weight update instead of once
/// per call. The memo is pure derived state held behind interior mutability:
/// `Clone` starts cold, `PartialEq` ignores it, and serialization stores
/// nothing.
#[derive(Debug)]
pub struct Param {
    /// Current parameter values.
    ///
    /// Mutating this matrix in place stales any transpose memoized by
    /// [`Param::transposed`]; every mutation site must call
    /// [`Param::invalidate_transpose`] afterwards (the workspace optimizers
    /// do). A shape-changing replacement is detected and recomputed
    /// automatically.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Cached `value.transpose()`, rebuilt lazily after invalidation.
    transpose: Mutex<Option<Arc<Matrix>>>,
    /// Number of transpose computations (cache misses) — makes the
    /// once-per-weight-update guarantee testable.
    transposes: AtomicUsize,
}

impl Param {
    /// Wraps a value matrix, creating a zeroed gradient of the same shape.
    #[must_use]
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            value,
            grad,
            transpose: Mutex::new(None),
            transposes: AtomicUsize::new(0),
        }
    }

    /// The transpose of [`Param::value`], memoized until the next
    /// [`Param::invalidate_transpose`] (or a shape-changing replacement of
    /// `value`, which is detected). Returns a shared handle so concurrent
    /// batched forward passes reuse one buffer.
    #[must_use]
    pub fn transposed(&self) -> Arc<Matrix> {
        let mut slot = self.transpose.lock().expect("transpose cache poisoned");
        if let Some(cached) = slot.as_ref() {
            if cached.rows() == self.value.cols() && cached.cols() == self.value.rows() {
                return Arc::clone(cached);
            }
        }
        let fresh = Arc::new(self.value.transpose());
        self.transposes.fetch_add(1, Ordering::Relaxed);
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// Drops the memoized transpose. Must be called after every in-place
    /// mutation of [`Param::value`] — the optimizers' `step` implementations
    /// do this for the training loops.
    pub fn invalidate_transpose(&self) {
        *self.transpose.lock().expect("transpose cache poisoned") = None;
    }

    /// How many times the transpose was actually computed (cache misses).
    #[must_use]
    pub fn transpose_count(&self) -> usize {
        self.transposes.load(Ordering::Relaxed)
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar values in the parameter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// Whether the parameter is empty (zero-sized).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Clones start with a cold transpose memo (derived state).
impl Clone for Param {
    fn clone(&self) -> Self {
        Param {
            value: self.value.clone(),
            grad: self.grad.clone(),
            transpose: Mutex::new(None),
            transposes: AtomicUsize::new(0),
        }
    }
}

/// Equality compares the trainable state only; the transpose memo is
/// derived from `value` and carries no information of its own.
impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value && self.grad == other.grad
    }
}

/// Serializes exactly what the old derived implementation did (a
/// `{value, grad}` map), so previously saved models keep loading; the
/// transpose memo is never persisted.
impl Serialize for Param {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            (String::from("value"), self.value.to_content()),
            (String::from("grad"), self.grad.to_content()),
        ])
    }
}

impl Deserialize for Param {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let map = serde::expect_map(content, "Param")?;
        let value = Matrix::from_content(serde::field(map, "value", "Param")?)?;
        let grad = Matrix::from_content(serde::field(map, "grad", "Param")?)?;
        Ok(Param {
            value,
            grad,
            transpose: Mutex::new(None),
            transposes: AtomicUsize::new(0),
        })
    }
}

/// Anything that owns trainable parameters.
///
/// Implementations return their parameters in a *stable order* across calls;
/// optimizers rely on that ordering to associate per-parameter state.
pub trait Parameterized {
    /// Mutable references to all parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Zeroes every parameter's gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// The global L2 norm of all gradients (used for clipping diagnostics).
    fn grad_norm(&mut self) -> f32 {
        let sum: f32 = self
            .params_mut()
            .iter()
            .map(|p| {
                let n = p.grad.norm();
                n * n
            })
            .sum();
        sum.sqrt()
    }

    /// Scales every gradient so that the global gradient norm does not exceed
    /// `max_norm`. Returns the scaling factor applied (1.0 when no clipping
    /// was needed).
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let scale = max_norm / norm;
        for p in self.params_mut() {
            let scaled = p.grad.map(|x| x * scale);
            p.grad = scaled;
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Parameterized for Toy {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.a, &mut self.b]
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0])),
            b: Param::new(Matrix::from_vec(2, 1, vec![3.0, 4.0])),
        }
    }

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::from_vec(2, 2, vec![1.0; 4]));
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets_everything() {
        let mut t = toy();
        t.a.grad.set(0, 0, 5.0);
        t.b.grad.set(1, 0, -3.0);
        t.zero_grad();
        assert_eq!(t.a.grad.data(), &[0.0, 0.0]);
        assert_eq!(t.b.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn parameter_count_sums_all_params() {
        let mut t = toy();
        assert_eq!(t.parameter_count(), 4);
    }

    #[test]
    fn transposed_is_memoized_until_invalidated() {
        let p = Param::new(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(p.transpose_count(), 0);
        let t = p.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(*t, p.value.transpose());
        assert_eq!(p.transpose_count(), 1);
        // Hits share the same buffer and do not recompute.
        for _ in 0..10 {
            assert!(Arc::ptr_eq(&t, &p.transposed()));
        }
        assert_eq!(p.transpose_count(), 1);
        // Invalidation forces a fresh transpose of the current values.
        p.invalidate_transpose();
        assert_eq!(*p.transposed(), p.value.transpose());
        assert_eq!(p.transpose_count(), 2);
    }

    #[test]
    fn transposed_tracks_value_mutation_after_invalidate() {
        let mut p = Param::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let stale = p.transposed();
        p.value.set(0, 1, 9.0);
        p.invalidate_transpose();
        let fresh = p.transposed();
        assert_eq!(fresh.get(1, 0), 9.0);
        assert_ne!(*stale, *fresh);
    }

    #[test]
    fn transposed_detects_shape_changing_replacement() {
        let mut p = Param::new(Matrix::from_vec(2, 3, vec![0.0; 6]));
        let _ = p.transposed();
        // Wholesale replacement with a different shape is caught even
        // without an explicit invalidation.
        p.value = Matrix::from_vec(4, 2, vec![1.0; 8]);
        assert_eq!(p.transposed().shape(), (2, 4));
        assert_eq!(*p.transposed(), p.value.transpose());
    }

    #[test]
    fn clone_equality_and_serde_ignore_the_transpose_memo() {
        let p = Param::new(Matrix::from_vec(1, 2, vec![1.5, -2.5]));
        let _ = p.transposed();
        let clone = p.clone();
        assert_eq!(clone, p);
        assert_eq!(clone.transpose_count(), 0, "clones start cold");
        let json = serde_json::to_string(&p).unwrap();
        let back: Param = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.transpose_count(), 0);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut t = toy();
        t.a.grad = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        t.b.grad = Matrix::from_vec(2, 1, vec![0.0, 4.0]);
        assert!((t.grad_norm() - 5.0).abs() < 1e-6);
        let scale = t.clip_grad_norm(1.0);
        assert!((scale - 0.2).abs() < 1e-6);
        assert!((t.grad_norm() - 1.0).abs() < 1e-5);
        // No clipping needed afterwards.
        assert_eq!(t.clip_grad_norm(10.0), 1.0);
    }
}
