//! Trainable parameters: a value matrix paired with its gradient accumulator
//! and a lazily cached transpose of the values for the batched forward paths.

use crate::sync_select::{AtomicPtr, AtomicU64, AtomicUsize, Mutex, Ordering};
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};
use std::ptr;
use std::sync::Arc;

/// Lock-free published handle to the memoized transpose.
///
/// The hot read path ([`Param::transposed`] on a warm memo — once per layer
/// per time step in the batched forward passes, from every scoring thread
/// at once) must not serialize readers on a mutex. This cell publishes the
/// transpose as a raw pointer obtained from [`Arc::into_raw`]; readers take
/// a snapshot with two atomic ops and an `Arc` refcount increment, never
/// blocking and never observing a torn matrix (the pointer swap is atomic
/// and the pointee is immutable once published).
///
/// Reclamation uses a reader count as a hazard: a reader increments
/// `readers` *before* loading the pointer and decrements after upgrading it
/// to a real `Arc`. A writer retiring an old pointer first unpublishes it
/// (swap), then spins until `readers` reaches zero before dropping its
/// refcount — any reader that loaded the old pointer is inside that window,
/// so the backing allocation outlives every dereference. All orderings are
/// `SeqCst` so the reader's increment is globally visible before its
/// pointer load: if the writer's drain sees zero readers, every later
/// reader's load sees the swapped (null/new) pointer. Writers (publish,
/// invalidate) additionally serialize on `writer`, and `generation` arms
/// the publish path against an invalidate racing in between a cache miss
/// and its recompute (see [`Param::transposed`]).
#[derive(Debug)]
struct TransposeCell {
    /// `Arc::into_raw` of the published transpose; null when invalidated.
    /// The cell owns one strong count for a non-null pointer.
    published: AtomicPtr<Matrix>,
    /// Readers currently between their increment and decrement (see above).
    readers: AtomicUsize,
    /// Bumped by every invalidation; publishing re-checks it so a stale
    /// recompute can never resurrect a transpose across an invalidation.
    generation: AtomicU64,
    /// Serializes publishers and invalidators (never held by readers).
    writer: Mutex<()>,
}

impl TransposeCell {
    fn new() -> Self {
        TransposeCell {
            published: AtomicPtr::new(ptr::null_mut()),
            readers: AtomicUsize::new(0),
            generation: AtomicU64::new(0),
            writer: Mutex::new(()),
        }
    }

    /// Lock-free snapshot of the published transpose.
    fn get(&self) -> Option<Arc<Matrix>> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let raw = self.published.load(Ordering::SeqCst);
        let snapshot = if raw.is_null() {
            None
        } else {
            // SAFETY: `raw` came from `Arc::into_raw` and the cell holds one
            // strong count for it; the hazard protocol above guarantees no
            // writer drops that count until `readers` drains back to zero,
            // which cannot happen before the decrement below.
            unsafe {
                Arc::increment_strong_count(raw);
                Some(Arc::from_raw(raw))
            }
        };
        self.readers.fetch_sub(1, Ordering::SeqCst);
        snapshot
    }

    /// Swaps in `next` (null to clear) and drops the previously published
    /// handle once no reader can still be dereferencing it. Callers hold
    /// the `writer` lock.
    fn swap_and_retire(&self, next: *mut Matrix) {
        let old = self.published.swap(next, Ordering::SeqCst);
        if old.is_null() {
            return;
        }
        // Readers hold `readers > 0` only for a few instructions (pointer
        // load + refcount increment), so this drain is near-instant when a
        // core is available; the yield bounds the stall when a reader is
        // preempted mid-window on an oversubscribed host (the spinner gives
        // up its only core instead of burning the reader's whole quantum).
        // Accepted imprecision: the single counter also counts readers that
        // arrived *after* the swap (they see the new/null pointer and need
        // no protection), so a sustained stream of overlapping reads could
        // in principle delay the drain. The workload makes that moot —
        // `transposed()` is called once per layer per time step between
        // matmuls orders of magnitude longer than the two-instruction
        // window, so read windows never chain; a snapshot/epoch scheme
        // would buy nothing here but complexity.
        while self.readers.load(Ordering::SeqCst) != 0 {
            crate::sync_select::yield_now();
        }
        // SAFETY: `old` was published via `Arc::into_raw` with the cell
        // owning one strong count; it is unpublished now and no reader is
        // mid-dereference, so releasing the cell's count is sound.
        unsafe { drop(Arc::from_raw(old)) }
    }
}

impl Drop for TransposeCell {
    fn drop(&mut self) {
        let raw = *self.published.get_mut();
        if !raw.is_null() {
            // SAFETY: dropping with exclusive access; the cell owns one
            // strong count for any published pointer.
            unsafe { drop(Arc::from_raw(raw)) }
        }
    }
}

/// A trainable parameter: the weight values and their accumulated gradient.
///
/// The batched inference paths (`Linear::forward_batch_into`, the batched
/// LSTM sweeps) consume the weight *transposed*; [`Param::transposed`] memoizes
/// that transpose so it is computed once per weight update instead of once
/// per call. The memo is pure derived state held behind interior mutability:
/// `Clone` starts cold, `PartialEq` ignores it, and serialization stores
/// nothing. Warm reads are lock-free (see the internal `TransposeCell`), so
/// concurrent scoring threads on the work-stealing pool never serialize on
/// the memo.
#[derive(Debug)]
pub struct Param {
    /// Current parameter values.
    ///
    /// Mutating this matrix in place stales any transpose memoized by
    /// [`Param::transposed`]; every mutation site must call
    /// [`Param::invalidate_transpose`] afterwards (the workspace optimizers
    /// do). A shape-changing replacement is detected and recomputed
    /// automatically. In-place mutation requires `&mut Param`, so no reader
    /// can race the mutation itself; the invalidate-on-step contract is
    /// about the *next* readers seeing a fresh transpose.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
    /// Lock-free published `value.transpose()`, rebuilt lazily after
    /// invalidation.
    transpose: TransposeCell,
    /// Number of transpose computations (cache misses) — makes the
    /// once-per-weight-update guarantee testable.
    transposes: AtomicUsize,
}

impl Param {
    /// Wraps a value matrix, creating a zeroed gradient of the same shape.
    #[must_use]
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            value,
            grad,
            transpose: TransposeCell::new(),
            transposes: AtomicUsize::new(0),
        }
    }

    fn is_transpose_of_value(&self, cached: &Matrix) -> bool {
        cached.rows() == self.value.cols() && cached.cols() == self.value.rows()
    }

    /// The transpose of [`Param::value`], memoized until the next
    /// [`Param::invalidate_transpose`] (or a shape-changing replacement of
    /// `value`, which is detected). Returns a shared handle so concurrent
    /// batched forward passes reuse one buffer.
    ///
    /// The warm path is **lock-free**: readers snapshot the published
    /// handle with two atomic ops and never touch a mutex, so scoring
    /// threads cannot serialize here. Only a cache miss (first call, or
    /// first call after an invalidation) takes the writer lock to compute
    /// and publish; the publish is generation-checked so an invalidation
    /// arriving between the miss and the recompute always wins — the next
    /// reader recomputes rather than resurrecting a pre-invalidation
    /// transpose.
    #[must_use]
    pub fn transposed(&self) -> Arc<Matrix> {
        loop {
            if let Some(cached) = self.transpose.get() {
                if self.is_transpose_of_value(&cached) {
                    return cached;
                }
            }
            let observed_generation = self.transpose.generation.load(Ordering::SeqCst);
            let guard = self.transpose.writer.lock().expect("transpose writer lock");
            // Another thread may have published while we waited for the
            // lock; an invalidation may also have raced our miss — retry
            // from the top so the generation we publish under is current.
            if self.transpose.generation.load(Ordering::SeqCst) != observed_generation {
                drop(guard);
                continue;
            }
            if let Some(cached) = self.transpose.get() {
                if self.is_transpose_of_value(&cached) {
                    return cached;
                }
            }
            let fresh = Arc::new(self.value.transpose());
            self.transposes.fetch_add(1, Ordering::Relaxed);
            self.transpose
                .swap_and_retire(Arc::into_raw(Arc::clone(&fresh)).cast_mut());
            return fresh;
        }
    }

    /// Drops the memoized transpose. Must be called after every in-place
    /// mutation of [`Param::value`] — the optimizers' `step` implementations
    /// do this for the training loops.
    pub fn invalidate_transpose(&self) {
        self.transpose.generation.fetch_add(1, Ordering::SeqCst);
        let _guard = self.transpose.writer.lock().expect("transpose writer lock");
        self.transpose.swap_and_retire(ptr::null_mut());
    }

    /// How many times the transpose was actually computed (cache misses).
    #[must_use]
    pub fn transpose_count(&self) -> usize {
        self.transposes.load(Ordering::Relaxed)
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar values in the parameter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// Whether the parameter is empty (zero-sized).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Clones start with a cold transpose memo (derived state).
impl Clone for Param {
    fn clone(&self) -> Self {
        Param {
            value: self.value.clone(),
            grad: self.grad.clone(),
            transpose: TransposeCell::new(),
            transposes: AtomicUsize::new(0),
        }
    }
}

/// Equality compares the trainable state only; the transpose memo is
/// derived from `value` and carries no information of its own.
impl PartialEq for Param {
    fn eq(&self, other: &Self) -> bool {
        self.value == other.value && self.grad == other.grad
    }
}

/// Serializes exactly what the old derived implementation did (a
/// `{value, grad}` map), so previously saved models keep loading; the
/// transpose memo is never persisted.
impl Serialize for Param {
    fn to_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            (String::from("value"), self.value.to_content()),
            (String::from("grad"), self.grad.to_content()),
        ])
    }
}

impl Deserialize for Param {
    fn from_content(content: &serde::Content) -> Result<Self, serde::DeError> {
        let map = serde::expect_map(content, "Param")?;
        let value = Matrix::from_content(serde::field(map, "value", "Param")?)?;
        let grad = Matrix::from_content(serde::field(map, "grad", "Param")?)?;
        Ok(Param {
            value,
            grad,
            transpose: TransposeCell::new(),
            transposes: AtomicUsize::new(0),
        })
    }
}

/// Anything that owns trainable parameters.
///
/// Implementations return their parameters in a *stable order* across calls;
/// optimizers rely on that ordering to associate per-parameter state.
pub trait Parameterized {
    /// Mutable references to all parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Zeroes every parameter's gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// The global L2 norm of all gradients (used for clipping diagnostics).
    fn grad_norm(&mut self) -> f32 {
        let sum: f32 = self
            .params_mut()
            .iter()
            .map(|p| {
                let n = p.grad.norm();
                n * n
            })
            .sum();
        sum.sqrt()
    }

    /// Scales every gradient so that the global gradient norm does not exceed
    /// `max_norm`. Returns the scaling factor applied (1.0 when no clipping
    /// was needed).
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let scale = max_norm / norm;
        for p in self.params_mut() {
            let scaled = p.grad.map(|x| x * scale);
            p.grad = scaled;
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Parameterized for Toy {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.a, &mut self.b]
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0])),
            b: Param::new(Matrix::from_vec(2, 1, vec![3.0, 4.0])),
        }
    }

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::from_vec(2, 2, vec![1.0; 4]));
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets_everything() {
        let mut t = toy();
        t.a.grad.set(0, 0, 5.0);
        t.b.grad.set(1, 0, -3.0);
        t.zero_grad();
        assert_eq!(t.a.grad.data(), &[0.0, 0.0]);
        assert_eq!(t.b.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn parameter_count_sums_all_params() {
        let mut t = toy();
        assert_eq!(t.parameter_count(), 4);
    }

    #[test]
    fn transposed_is_memoized_until_invalidated() {
        let p = Param::new(Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]));
        assert_eq!(p.transpose_count(), 0);
        let t = p.transposed();
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(*t, p.value.transpose());
        assert_eq!(p.transpose_count(), 1);
        // Hits share the same buffer and do not recompute.
        for _ in 0..10 {
            assert!(Arc::ptr_eq(&t, &p.transposed()));
        }
        assert_eq!(p.transpose_count(), 1);
        // Invalidation forces a fresh transpose of the current values.
        p.invalidate_transpose();
        assert_eq!(*p.transposed(), p.value.transpose());
        assert_eq!(p.transpose_count(), 2);
    }

    #[test]
    fn transposed_tracks_value_mutation_after_invalidate() {
        let mut p = Param::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let stale = p.transposed();
        p.value.set(0, 1, 9.0);
        p.invalidate_transpose();
        let fresh = p.transposed();
        assert_eq!(fresh.get(1, 0), 9.0);
        assert_ne!(*stale, *fresh);
    }

    #[test]
    fn transposed_detects_shape_changing_replacement() {
        let mut p = Param::new(Matrix::from_vec(2, 3, vec![0.0; 6]));
        let _ = p.transposed();
        // Wholesale replacement with a different shape is caught even
        // without an explicit invalidation.
        p.value = Matrix::from_vec(4, 2, vec![1.0; 8]);
        assert_eq!(p.transposed().shape(), (2, 4));
        assert_eq!(*p.transposed(), p.value.transpose());
    }

    #[test]
    fn clone_equality_and_serde_ignore_the_transpose_memo() {
        let p = Param::new(Matrix::from_vec(1, 2, vec![1.5, -2.5]));
        let _ = p.transposed();
        let clone = p.clone();
        assert_eq!(clone, p);
        assert_eq!(clone.transpose_count(), 0, "clones start cold");
        let json = serde_json::to_string(&p).unwrap();
        let back: Param = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.transpose_count(), 0);
    }

    #[test]
    fn concurrent_readers_survive_repeated_invalidation() {
        // The invalidate-on-step contract under a real multi-thread pool:
        // scoring threads hammer the lock-free read path while another
        // thread invalidates in a tight loop (the optimizer-step pattern —
        // the value itself cannot be mutated concurrently, `&mut` excludes
        // readers, so every published transpose must equal the one true
        // `value.transpose()`). A torn read, use-after-free, or a stale
        // resurrected buffer would fail the equality or crash.
        const READERS: usize = 4;
        const READS_PER_THREAD: usize = 2000;
        const INVALIDATIONS: usize = 2000;
        let p = Param::new(Matrix::from_vec(
            3,
            5,
            (0..15).map(|x| x as f32 * 0.5 - 3.0).collect(),
        ));
        let expected = p.value.transpose();
        std::thread::scope(|scope| {
            for _ in 0..READERS {
                scope.spawn(|| {
                    for _ in 0..READS_PER_THREAD {
                        let t = p.transposed();
                        assert_eq!(*t, expected, "readers must never see a torn transpose");
                    }
                });
            }
            scope.spawn(|| {
                for _ in 0..INVALIDATIONS {
                    p.invalidate_transpose();
                }
            });
        });
        // After the dust settles the memo still behaves: one more
        // invalidation forces exactly one recompute.
        let before = p.transpose_count();
        assert!(before >= 1);
        p.invalidate_transpose();
        assert_eq!(*p.transposed(), expected);
        assert_eq!(p.transpose_count(), before + 1);
        let _ = p.transposed();
        assert_eq!(p.transpose_count(), before + 1, "warm reads stay free");
    }

    #[test]
    fn invalidation_mid_miss_always_wins() {
        // Generation arming: an invalidation that lands between a cache
        // miss and its publish must not be erased by that publish. Threads
        // interleave misses and invalidations; afterwards, an explicit
        // invalidate followed by a read recomputes (the memo cannot have
        // been resurrected into a "pre-invalidation" state that the final
        // invalidate fails to clear).
        let p = Param::new(Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..500 {
                        let _ = p.transposed();
                        p.invalidate_transpose();
                    }
                });
            }
        });
        p.invalidate_transpose();
        let before = p.transpose_count();
        assert_eq!(*p.transposed(), p.value.transpose());
        assert_eq!(p.transpose_count(), before + 1);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut t = toy();
        t.a.grad = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        t.b.grad = Matrix::from_vec(2, 1, vec![0.0, 4.0]);
        assert!((t.grad_norm() - 5.0).abs() < 1e-6);
        let scale = t.clip_grad_norm(1.0);
        assert!((scale - 0.2).abs() < 1e-6);
        assert!((t.grad_norm() - 1.0).abs() < 1e-5);
        // No clipping needed afterwards.
        assert_eq!(t.clip_grad_norm(10.0), 1.0);
    }
}
