//! Trainable parameters: a value matrix paired with its gradient accumulator.

use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// A trainable parameter: the weight values and their accumulated gradient.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Matrix,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Matrix,
}

impl Param {
    /// Wraps a value matrix, creating a zeroed gradient of the same shape.
    #[must_use]
    pub fn new(value: Matrix) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param { value, grad }
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar values in the parameter.
    #[must_use]
    pub fn len(&self) -> usize {
        self.value.rows() * self.value.cols()
    }

    /// Whether the parameter is empty (zero-sized).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Anything that owns trainable parameters.
///
/// Implementations return their parameters in a *stable order* across calls;
/// optimizers rely on that ordering to associate per-parameter state.
pub trait Parameterized {
    /// Mutable references to all parameters, in a stable order.
    fn params_mut(&mut self) -> Vec<&mut Param>;

    /// Zeroes every parameter's gradient.
    fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    fn parameter_count(&mut self) -> usize {
        self.params_mut().iter().map(|p| p.len()).sum()
    }

    /// The global L2 norm of all gradients (used for clipping diagnostics).
    fn grad_norm(&mut self) -> f32 {
        let sum: f32 = self
            .params_mut()
            .iter()
            .map(|p| {
                let n = p.grad.norm();
                n * n
            })
            .sum();
        sum.sqrt()
    }

    /// Scales every gradient so that the global gradient norm does not exceed
    /// `max_norm`. Returns the scaling factor applied (1.0 when no clipping
    /// was needed).
    fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm <= max_norm || norm == 0.0 {
            return 1.0;
        }
        let scale = max_norm / norm;
        for p in self.params_mut() {
            let scaled = p.grad.map(|x| x * scale);
            p.grad = scaled;
        }
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        a: Param,
        b: Param,
    }

    impl Parameterized for Toy {
        fn params_mut(&mut self) -> Vec<&mut Param> {
            vec![&mut self.a, &mut self.b]
        }
    }

    fn toy() -> Toy {
        Toy {
            a: Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0])),
            b: Param::new(Matrix::from_vec(2, 1, vec![3.0, 4.0])),
        }
    }

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::from_vec(2, 2, vec![1.0; 4]));
        assert_eq!(p.grad.data(), &[0.0; 4]);
        assert_eq!(p.len(), 4);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets_everything() {
        let mut t = toy();
        t.a.grad.set(0, 0, 5.0);
        t.b.grad.set(1, 0, -3.0);
        t.zero_grad();
        assert_eq!(t.a.grad.data(), &[0.0, 0.0]);
        assert_eq!(t.b.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn parameter_count_sums_all_params() {
        let mut t = toy();
        assert_eq!(t.parameter_count(), 4);
    }

    #[test]
    fn grad_norm_and_clipping() {
        let mut t = toy();
        t.a.grad = Matrix::from_vec(1, 2, vec![3.0, 0.0]);
        t.b.grad = Matrix::from_vec(2, 1, vec![0.0, 4.0]);
        assert!((t.grad_norm() - 5.0).abs() < 1e-6);
        let scale = t.clip_grad_norm(1.0);
        assert!((scale - 0.2).abs() < 1e-6);
        assert!((t.grad_norm() - 1.0).abs() < 1e-5);
        // No clipping needed afterwards.
        assert_eq!(t.clip_grad_norm(10.0), 1.0);
    }
}
