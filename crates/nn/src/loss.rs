//! Loss functions with analytic gradients with respect to the logits.

use crate::activation::{sigmoid, softmax};

/// Softmax cross-entropy for a single multi-class sample.
///
/// Returns `(loss, dloss/dlogits)`.
///
/// # Panics
///
/// Panics if `target >= logits.len()` or `logits` is empty.
#[must_use]
pub fn softmax_cross_entropy(logits: &[f32], target: usize) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "logits must be non-empty");
    assert!(target < logits.len(), "target class out of range");
    let probs = softmax(logits);
    let loss = -(probs[target].max(1e-12)).ln();
    let mut grad = probs;
    grad[target] -= 1.0;
    (loss, grad)
}

/// Element-wise binary cross-entropy on logits (multi-label targets in
/// `[0, 1]`), averaged over the elements.
///
/// Returns `(loss, dloss/dlogits)`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn binary_cross_entropy_with_logits(logits: &[f32], targets: &[f32]) -> (f32, Vec<f32>) {
    assert!(!logits.is_empty(), "logits must be non-empty");
    assert_eq!(
        logits.len(),
        targets.len(),
        "logits/targets length mismatch"
    );
    let n = logits.len() as f32;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(logits.len());
    for (&z, &t) in logits.iter().zip(targets.iter()) {
        let p = sigmoid(z);
        // Numerically stable BCE: max(z,0) - z*t + ln(1 + exp(-|z|))
        loss += z.max(0.0) - z * t + (1.0 + (-z.abs()).exp()).ln();
        grad.push((p - t) / n);
    }
    (loss / n, grad)
}

/// Mean squared error between a prediction vector and a target vector.
///
/// Returns `(loss, dloss/dpred)`.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
#[must_use]
pub fn mean_squared_error(pred: &[f32], target: &[f32]) -> (f32, Vec<f32>) {
    assert!(!pred.is_empty(), "prediction must be non-empty");
    assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
    let n = pred.len() as f32;
    let mut loss = 0.0;
    let mut grad = Vec::with_capacity(pred.len());
    for (&p, &t) in pred.iter().zip(target.iter()) {
        let d = p - t;
        loss += d * d;
        grad.push(2.0 * d / n);
    }
    (loss / n, grad)
}

/// Index of the maximum value (argmax). Ties resolve to the first maximum.
///
/// # Panics
///
/// Panics if `xs` is empty.
#[must_use]
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &x) in xs.iter().enumerate().skip(1) {
        if x > xs[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numerical_grad<F: Fn(&[f32]) -> f32>(f: F, xs: &[f32]) -> Vec<f32> {
        let eps = 1e-3_f32;
        (0..xs.len())
            .map(|i| {
                let mut xp = xs.to_vec();
                xp[i] += eps;
                let mut xm = xs.to_vec();
                xm[i] -= eps;
                (f(&xp) - f(&xm)) / (2.0 * eps)
            })
            .collect()
    }

    #[test]
    fn cross_entropy_matches_numerical_gradient() {
        let logits = vec![0.5, -1.2, 2.0, 0.1];
        let (loss, grad) = softmax_cross_entropy(&logits, 2);
        assert!(loss > 0.0);
        let num = numerical_grad(|x| softmax_cross_entropy(x, 2).0, &logits);
        for (a, n) in grad.iter().zip(num.iter()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numerical {n}");
        }
    }

    #[test]
    fn cross_entropy_of_confident_correct_prediction_is_small() {
        let (loss_good, _) = softmax_cross_entropy(&[10.0, -10.0], 0);
        let (loss_bad, _) = softmax_cross_entropy(&[10.0, -10.0], 1);
        assert!(loss_good < 1e-3);
        assert!(loss_bad > 5.0);
    }

    #[test]
    fn bce_matches_numerical_gradient() {
        let logits = vec![0.3, -0.7, 1.5];
        let targets = vec![1.0, 0.0, 0.5];
        let (loss, grad) = binary_cross_entropy_with_logits(&logits, &targets);
        assert!(loss > 0.0);
        let num = numerical_grad(|x| binary_cross_entropy_with_logits(x, &targets).0, &logits);
        for (a, n) in grad.iter().zip(num.iter()) {
            assert!((a - n).abs() < 1e-2, "analytic {a} vs numerical {n}");
        }
    }

    #[test]
    fn bce_is_stable_for_extreme_logits() {
        let (loss, grad) = binary_cross_entropy_with_logits(&[100.0, -100.0], &[1.0, 0.0]);
        assert!(loss.is_finite());
        assert!(loss < 1e-3);
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn mse_matches_numerical_gradient() {
        let pred = vec![1.0, -2.0, 0.5];
        let target = vec![0.5, -1.0, 0.5];
        let (loss, grad) = mean_squared_error(&pred, &target);
        assert!((loss - ((0.25 + 1.0 + 0.0) / 3.0)).abs() < 1e-6);
        let num = numerical_grad(|x| mean_squared_error(x, &target).0, &pred);
        for (a, n) in grad.iter().zip(num.iter()) {
            assert!((a - n).abs() < 1e-2);
        }
    }

    #[test]
    fn argmax_picks_first_maximum() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }

    #[test]
    #[should_panic(expected = "target class out of range")]
    fn cross_entropy_validates_target() {
        let _ = softmax_cross_entropy(&[0.0, 1.0], 2);
    }
}
