//! `cfg(loom)`-switched synchronization primitives for the `Param`
//! transpose hazard cell.
//!
//! Under `--cfg loom` (the CI `model-check` job) `param.rs` runs on the
//! loom shim's model-aware atomics/mutex, so `tests/param_model.rs` can
//! exhaustively schedule the reader-counted `AtomicPtr` protocol; outside a
//! model run (and in all normal builds) these are the std primitives with
//! identical behavior.

#[cfg(loom)]
pub(crate) use loom::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub(crate) use loom::sync::Mutex;
#[cfg(loom)]
pub(crate) use loom::thread::yield_now;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;
#[cfg(not(loom))]
pub(crate) use std::thread::yield_now;
