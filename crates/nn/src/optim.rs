//! First-order optimizers: SGD with momentum and Adam.
//!
//! Optimizers keep per-parameter state keyed by the *position* of the
//! parameter in the slice passed to `step`, so callers must pass parameters
//! in a stable order (the [`crate::param::Parameterized`] contract).

use crate::param::Param;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Stochastic gradient descent with optional momentum.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sgd {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0.0 disables momentum).
    pub momentum: f32,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    #[must_use]
    pub fn new(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            learning_rate,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Applies one update to every parameter using its accumulated gradient.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        for (idx, p) in params.iter_mut().enumerate() {
            let v = &mut self.velocity[idx];
            for (vi, &gi) in v.data_mut().iter_mut().zip(p.grad.data().iter()) {
                *vi = self.momentum * *vi + gi;
            }
            let lr = self.learning_rate;
            for (w, &vi) in p.value.data_mut().iter_mut().zip(v.data().iter()) {
                *w -= lr * vi;
            }
            p.invalidate_transpose();
        }
    }
}

/// The Adam optimizer (Kingma & Ba, 2015).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate.
    pub learning_rate: f32,
    /// Exponential decay for the first moment.
    pub beta1: f32,
    /// Exponential decay for the second moment.
    pub beta2: f32,
    /// Numerical stabilizer.
    pub epsilon: f32,
    t: u64,
    first_moment: Vec<Matrix>,
    second_moment: Vec<Matrix>,
}

impl Adam {
    /// Creates an Adam optimizer with the standard β defaults.
    #[must_use]
    pub fn new(learning_rate: f32) -> Self {
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
        }
    }

    /// Number of update steps taken so far.
    #[must_use]
    pub fn steps_taken(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every parameter using its accumulated
    /// gradient.
    pub fn step(&mut self, params: &mut [&mut Param]) {
        if self.first_moment.len() != params.len() {
            self.first_moment = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
            self.second_moment = params
                .iter()
                .map(|p| Matrix::zeros(p.value.rows(), p.value.cols()))
                .collect();
        }
        self.t += 1;
        let bias1 = 1.0 - self.beta1.powi(self.t as i32);
        let bias2 = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.first_moment[idx];
            let v = &mut self.second_moment[idx];
            // Split borrows of the parameter's disjoint fields — the grads
            // are read-only here, so no copy of them is needed.
            let grads = &p.grad;
            let values = &mut p.value;
            for ((mi, vi), (&gi, wi)) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grads.data().iter().zip(values.data_mut().iter_mut()))
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bias1;
                let v_hat = *vi / bias2;
                *wi -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            p.invalidate_transpose();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizing f(w) = (w - 3)^2 converges with both optimizers.
    fn quadratic_convergence<F: FnMut(&mut [&mut Param])>(mut step: F) -> f32 {
        let mut p = Param::new(Matrix::from_vec(1, 1, vec![-5.0]));
        for _ in 0..400 {
            let w = p.value.get(0, 0);
            p.grad.set(0, 0, 2.0 * (w - 3.0));
            step(&mut [&mut p]);
            p.zero_grad();
        }
        p.value.get(0, 0)
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut opt = Sgd::new(0.05, 0.0);
        let w = quadratic_convergence(|ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-3, "converged to {w}");
    }

    #[test]
    fn sgd_with_momentum_minimizes_quadratic() {
        let mut opt = Sgd::new(0.02, 0.9);
        let w = quadratic_convergence(|ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "converged to {w}");
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut opt = Adam::new(0.1);
        let w = quadratic_convergence(|ps| opt.step(ps));
        assert!((w - 3.0).abs() < 1e-2, "converged to {w}");
        assert_eq!(opt.steps_taken(), 400);
    }

    #[test]
    fn adam_handles_multiple_parameters_independently() {
        let mut a = Param::new(Matrix::from_vec(1, 1, vec![10.0]));
        let mut b = Param::new(Matrix::from_vec(1, 2, vec![-4.0, 8.0]));
        let mut opt = Adam::new(0.2);
        for _ in 0..600 {
            let wa = a.value.get(0, 0);
            a.grad.set(0, 0, 2.0 * (wa - 1.0));
            let wb0 = b.value.get(0, 0);
            let wb1 = b.value.get(0, 1);
            b.grad.set(0, 0, 2.0 * (wb0 + 2.0));
            b.grad.set(0, 1, 2.0 * (wb1 - 5.0));
            opt.step(&mut [&mut a, &mut b]);
            a.zero_grad();
            b.zero_grad();
        }
        assert!((a.value.get(0, 0) - 1.0).abs() < 0.05);
        assert!((b.value.get(0, 0) + 2.0).abs() < 0.05);
        assert!((b.value.get(0, 1) - 5.0).abs() < 0.05);
    }

    #[test]
    fn optimizer_steps_evict_the_cached_transpose() {
        use crate::linear::Linear;
        use crate::param::Parameterized;
        use rand::SeedableRng;
        use rand_chacha::ChaCha8Rng;

        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let mut layer = Linear::new(6, 4, &mut rng);
        let batch = Matrix::uniform(5, 6, 1.0, &mut rng);

        // Warm the transpose memo through the batched path.
        let before_step = layer.forward_batch(&batch);
        let misses_before = layer.params_mut()[0].transpose_count();
        assert_eq!(
            misses_before, 1,
            "first batched call computes the transpose"
        );
        let _ = layer.forward_batch(&batch);
        assert_eq!(
            layer.params_mut()[0].transpose_count(),
            1,
            "repeat batched calls reuse the memoized transpose"
        );

        // An optimizer step mutates the weights; the stale transpose must be
        // evicted so the next batched pass sees the updated values. The
        // input gradient is dead here, so the params-only entry point skips
        // building it.
        let grad_out = vec![1.0; 4];
        for row in 0..batch.rows() {
            layer.backward_params_only(batch.row(row), &grad_out);
        }
        let mut adam = Adam::new(0.05);
        adam.step(&mut layer.params_mut());
        layer.zero_grad();

        let after_step = layer.forward_batch(&batch);
        assert_ne!(after_step, before_step, "the step changed the weights");
        assert_eq!(
            layer.params_mut()[0].transpose_count(),
            2,
            "the post-step call recomputes the transpose exactly once"
        );
        // The recomputed transpose gives bit-identical results to the
        // never-cached per-sample path.
        for row in 0..batch.rows() {
            let single = layer.forward(batch.row(row));
            for (a, b) in after_step.row(row).iter().zip(single.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        // SGD evicts too.
        let mut sgd = Sgd::new(0.1, 0.0);
        for row in 0..batch.rows() {
            layer.backward_params_only(batch.row(row), &grad_out);
        }
        sgd.step(&mut layer.params_mut());
        let _ = layer.forward_batch(&batch);
        assert_eq!(layer.params_mut()[0].transpose_count(), 3);
    }

    #[test]
    fn zero_gradient_leaves_parameters_unchanged_for_sgd() {
        let mut p = Param::new(Matrix::from_vec(1, 2, vec![1.5, -2.5]));
        let before = p.value.clone();
        let mut opt = Sgd::new(0.1, 0.0);
        opt.step(&mut [&mut p]);
        assert_eq!(p.value, before);
    }
}
