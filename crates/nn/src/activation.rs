//! Scalar activation functions and their derivatives, plus row-batched
//! variants used by the batched inference path.

use crate::simd;
use crate::tensor::Matrix;
use serde::{Deserialize, Serialize};

/// Logistic sigmoid.
#[must_use]
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Derivative of the sigmoid expressed in terms of its output `s`.
#[must_use]
pub fn sigmoid_deriv_from_output(s: f32) -> f32 {
    s * (1.0 - s)
}

/// Hyperbolic tangent.
#[must_use]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

/// Derivative of tanh expressed in terms of its output `t`.
#[must_use]
pub fn tanh_deriv_from_output(t: f32) -> f32 {
    1.0 - t * t
}

/// Rectified linear unit.
#[must_use]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

/// Derivative of ReLU.
#[must_use]
pub fn relu_deriv(x: f32) -> f32 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

/// Numerically stable softmax over a slice.
#[must_use]
pub fn softmax(xs: &[f32]) -> Vec<f32> {
    if xs.is_empty() {
        return Vec::new();
    }
    let max = xs.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let exps: Vec<f32> = xs.iter().map(|&x| (x - max).exp()).collect();
    let sum: f32 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Row-wise softmax over a batch of logits (one distribution per row).
///
/// Each row performs exactly the same operations as [`softmax`] — the max
/// reduction and the exp sum stay sequential scalar reductions, only the
/// element-wise shift, `exp` and normalization run through the lane
/// kernels — so batched inference is bit-identical to the per-sample path.
#[must_use]
pub fn softmax_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        if row.is_empty() {
            continue;
        }
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        for x in row.iter_mut() {
            *x -= max;
        }
        simd::vexp_slice(row);
        let sum: f32 = row.iter().sum();
        for x in row.iter_mut() {
            *x /= sum;
        }
    }
    out
}

/// Element-wise sigmoid over a batch of logits, lane-vectorized and
/// bit-identical to [`sigmoid`] per element.
#[must_use]
pub fn sigmoid_rows(logits: &Matrix) -> Matrix {
    let mut out = logits.clone();
    simd::vsigmoid_slice(out.data_mut());
    out
}

/// Element-wise activation used between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[must_use]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Activation::Relu => relu(x),
            Activation::Tanh => tanh(x),
            Activation::Sigmoid => sigmoid(x),
        }
    }

    /// Applies the activation element-wise to a slice.
    #[must_use]
    pub fn apply_slice(self, xs: &[f32]) -> Vec<f32> {
        xs.iter().map(|&x| self.apply(x)).collect()
    }

    /// Applies the activation element-wise to every row of a matrix, in
    /// place (the batched counterpart of [`Activation::apply_slice`]).
    ///
    /// Tanh and sigmoid run through the lane-vectorized, bitwise
    /// libm-compatible kernels in [`crate::simd`]; ReLU is a plain `max`
    /// that LLVM vectorizes on its own. All paths are bit-identical to
    /// [`Activation::apply`] per element.
    pub fn apply_rows(self, m: &mut Matrix) {
        match self {
            Activation::Relu => {
                for x in m.data_mut() {
                    *x = relu(*x);
                }
            }
            Activation::Tanh => simd::vtanh_slice(m.data_mut()),
            Activation::Sigmoid => simd::vsigmoid_slice(m.data_mut()),
        }
    }

    /// Derivative of the activation with respect to its *pre-activation*
    /// input `x` (the value before the nonlinearity).
    #[must_use]
    pub fn derivative(self, x: f32) -> f32 {
        match self {
            Activation::Relu => relu_deriv(x),
            Activation::Tanh => tanh_deriv_from_output(tanh(x)),
            Activation::Sigmoid => sigmoid_deriv_from_output(sigmoid(x)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn derivative_identities() {
        let s = sigmoid(0.7);
        assert!((sigmoid_deriv_from_output(s) - s * (1.0 - s)).abs() < 1e-7);
        let t = tanh(0.3);
        assert!((tanh_deriv_from_output(t) - (1.0 - t * t)).abs() < 1e-7);
        assert_eq!(relu(-2.0), 0.0);
        assert_eq!(relu(3.0), 3.0);
        assert_eq!(relu_deriv(-2.0), 0.0);
        assert_eq!(relu_deriv(3.0), 1.0);
    }

    #[test]
    fn softmax_is_a_distribution() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert_eq!(p.len(), 3);
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
        assert!(p[2] > p[1] && p[1] > p[0]);
        assert!(softmax(&[]).is_empty());
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|x| x.is_finite()));
        assert!((p.iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn activation_enum_matches_free_functions() {
        for &x in &[-2.0_f32, -0.5, 0.0, 0.5, 2.0] {
            assert_eq!(Activation::Relu.apply(x), relu(x));
            assert_eq!(Activation::Tanh.apply(x), tanh(x));
            assert_eq!(Activation::Sigmoid.apply(x), sigmoid(x));
        }
        let xs = [-1.0, 0.0, 1.0];
        assert_eq!(Activation::Relu.apply_slice(&xs), vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn batched_softmax_and_sigmoid_match_single_rows() {
        let logits = Matrix::from_vec(
            3,
            4,
            vec![
                1.0, 2.0, 3.0, 4.0, -1.0, 0.0, 1.0, 1000.0, 0.5, 0.5, 0.5, 0.5,
            ],
        );
        let soft = softmax_rows(&logits);
        let sig = sigmoid_rows(&logits);
        for r in 0..logits.rows() {
            let expected_soft = softmax(logits.row(r));
            let expected_sig: Vec<f32> = logits.row(r).iter().map(|&x| sigmoid(x)).collect();
            for c in 0..logits.cols() {
                assert_eq!(soft.get(r, c).to_bits(), expected_soft[c].to_bits());
                assert_eq!(sig.get(r, c).to_bits(), expected_sig[c].to_bits());
            }
        }
    }

    #[test]
    fn apply_rows_matches_apply_slice() {
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let mut m = Matrix::from_vec(2, 3, vec![-1.0, 0.0, 1.0, 2.0, -2.0, 0.5]);
            let expected: Vec<f32> = m.data().iter().map(|&x| act.apply(x)).collect();
            act.apply_rows(&mut m);
            assert_eq!(m.data(), &expected[..]);
        }
    }

    #[test]
    fn numerical_derivative_agrees() {
        let eps = 1e-3_f32;
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            for &x in &[-1.2_f32, 0.4, 0.9] {
                if act == Activation::Relu && x.abs() < 2.0 * eps {
                    continue;
                }
                let num = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let ana = act.derivative(x);
                assert!(
                    (num - ana).abs() < 1e-2,
                    "{act:?} at {x}: numerical {num} vs analytic {ana}"
                );
            }
        }
    }
}
