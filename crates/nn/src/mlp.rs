//! A multi-layer perceptron head: stacked dense layers with a configurable
//! hidden activation and raw (linear) output logits.

use crate::activation::Activation;
use crate::linear::Linear;
use crate::param::{Param, Parameterized};
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A feed-forward network `Linear -> act -> Linear -> act -> ... -> Linear`.
///
/// The final layer has no activation so the output can be fed into
/// softmax-cross-entropy or sigmoid-BCE losses directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    activation: Activation,
}

/// Cached intermediate values of an [`Mlp::forward`] pass, needed by
/// [`Mlp::backward`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlpCache {
    /// Input to each layer (length = number of layers).
    layer_inputs: Vec<Vec<f32>>,
    /// Pre-activation output of each layer (length = number of layers).
    pre_activations: Vec<Vec<f32>>,
}

/// Cached intermediate values of an [`Mlp::forward_batch_train`] pass,
/// needed by [`Mlp::backward_batch`] — the batched counterpart of
/// [`MlpCache`], one matrix row per sample.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MlpBatchCache {
    /// Input to each layer (length = number of layers).
    layer_inputs: Vec<Matrix>,
    /// Pre-activation output of each layer (length = number of layers).
    pre_activations: Vec<Matrix>,
}

impl Mlp {
    /// Creates an MLP with the given layer sizes, e.g. `[64, 32, 6]` builds
    /// `Linear(64→32) -> act -> Linear(32→6)`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(sizes: &[usize], activation: Activation, rng: &mut R) -> Self {
        assert!(
            sizes.len() >= 2,
            "an MLP needs at least input and output sizes"
        );
        let layers = sizes
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers, activation }
    }

    /// Input dimension.
    #[must_use]
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::in_dim)
    }

    /// Output dimension.
    #[must_use]
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::out_dim)
    }

    /// Forward pass returning the output logits and the cache for backward.
    #[must_use]
    pub fn forward(&self, x: &[f32]) -> (Vec<f32>, MlpCache) {
        let mut cache = MlpCache::default();
        let mut current = x.to_vec();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            cache.layer_inputs.push(current.clone());
            let pre = layer.forward(&current);
            cache.pre_activations.push(pre.clone());
            current = if i == last {
                pre
            } else {
                self.activation.apply_slice(&pre)
            };
        }
        (current, cache)
    }

    /// Convenience forward pass without keeping the cache.
    #[must_use]
    pub fn predict(&self, x: &[f32]) -> Vec<f32> {
        self.forward(x).0
    }

    /// Batched inference pass: one input per row of `x` (shape
    /// `batch x in_dim`), producing a `batch x out_dim` logit matrix. Each
    /// layer runs as a single matrix product over the whole batch, and the
    /// hidden activations run through the lane-vectorized row sweeps
    /// ([`Activation::apply_rows`]); no cache is kept, so this is
    /// inference-only.
    ///
    /// Per row, results are bit-identical to [`Mlp::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    #[must_use]
    pub fn forward_batch(&self, x: &Matrix) -> Matrix {
        let last = self.layers.len() - 1;
        let mut current = self.layers[0].forward_batch(x);
        if last != 0 {
            self.activation.apply_rows(&mut current);
        }
        let mut next = Matrix::zeros(0, 0);
        for (i, layer) in self.layers.iter().enumerate().skip(1) {
            layer.forward_batch_into(&current, &mut next);
            if i != last {
                self.activation.apply_rows(&mut next);
            }
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// Batched training forward pass: like [`Mlp::forward_batch`] but keeps
    /// every layer input and pre-activation matrix for
    /// [`Mlp::backward_batch`]. Per row, outputs (and cached values) are
    /// bit-identical to [`Mlp::forward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != in_dim()`.
    #[must_use]
    pub fn forward_batch_train(&self, x: &Matrix) -> (Matrix, MlpBatchCache) {
        let mut cache = MlpBatchCache::default();
        let last = self.layers.len() - 1;
        let mut current = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward_batch(&current);
            cache.layer_inputs.push(current);
            current = pre.clone();
            cache.pre_activations.push(pre);
            if i != last {
                self.activation.apply_rows(&mut current);
            }
        }
        (current, cache)
    }

    /// Batched backward pass: row `r` of `grad_out` is sample `r`'s upstream
    /// gradient. Accumulates parameter gradients for the whole batch and
    /// returns per-row input gradients.
    ///
    /// Gradients are **bit-identical** to looping [`Mlp::backward`] over the
    /// samples in row order: every layer's weight/bias gradient accumulates
    /// its samples row-ascending through [`Linear::backward_batch`], which is
    /// the per-sample accumulation order — processing layers as batched
    /// stages only interleaves updates *across different parameters*, never
    /// reorders the sum within one.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not correspond to this network.
    pub fn backward_batch(&mut self, cache: &MlpBatchCache, grad_out: &Matrix) -> Matrix {
        assert_eq!(
            cache.layer_inputs.len(),
            self.layers.len(),
            "cache does not match network depth"
        );
        let last = self.layers.len() - 1;
        let mut grad = grad_out.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i != last {
                // Undo the hidden activation, with the exact per-element
                // expression of the per-sample path.
                let pre = &cache.pre_activations[i];
                for (g, &z) in grad.data_mut().iter_mut().zip(pre.data().iter()) {
                    *g *= self.activation.derivative(z);
                }
            }
            grad = layer.backward_batch(&cache.layer_inputs[i], &grad);
        }
        grad
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not correspond to this network.
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &[f32]) -> Vec<f32> {
        assert_eq!(
            cache.layer_inputs.len(),
            self.layers.len(),
            "cache does not match network depth"
        );
        let last = self.layers.len() - 1;
        let mut grad = grad_out.to_vec();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            if i != last {
                // Undo the hidden activation.
                let pre = &cache.pre_activations[i];
                grad = grad
                    .iter()
                    .zip(pre.iter())
                    .map(|(&g, &z)| g * self.activation.derivative(z))
                    .collect();
            }
            grad = layer.backward(&cache.layer_inputs[i], &grad);
        }
        grad
    }

    /// Number of dense layers.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

impl Parameterized for Mlp {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(Parameterized::params_mut)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::softmax_cross_entropy;
    use crate::optim::Adam;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(21)
    }

    #[test]
    fn shapes_and_depth() {
        let mlp = Mlp::new(&[6, 8, 3], Activation::Tanh, &mut rng());
        assert_eq!(mlp.in_dim(), 6);
        assert_eq!(mlp.out_dim(), 3);
        assert_eq!(mlp.depth(), 2);
        let (y, cache) = mlp.forward(&[0.1; 6]);
        assert_eq!(y.len(), 3);
        assert_eq!(cache.layer_inputs.len(), 2);
        assert_eq!(mlp.predict(&[0.1; 6]), y);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_too_few_sizes() {
        let _ = Mlp::new(&[4], Activation::Relu, &mut rng());
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let mut r = rng();
            let mlp = Mlp::new(&[6, 12, 5, 3], act, &mut r);
            let batch = Matrix::uniform(17, 6, 1.0, &mut r);
            let out = mlp.forward_batch(&batch);
            assert_eq!(out.shape(), (17, 3));
            for row in 0..batch.rows() {
                let single = mlp.predict(batch.row(row));
                for (a, b) in out.row(row).iter().zip(single.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{act:?} row {row}");
                }
            }
        }
    }

    #[test]
    fn numerical_gradient_check() {
        let mut mlp = Mlp::new(&[4, 5, 3], Activation::Tanh, &mut rng());
        let x: Vec<f32> = vec![0.2, -0.4, 0.8, -0.1];
        let target = 1usize;
        let loss_of = |mlp: &Mlp, x: &[f32]| -> f32 {
            let (logits, _) = mlp.forward(x);
            softmax_cross_entropy(&logits, target).0
        };
        let (logits, cache) = mlp.forward(&x);
        let (_, grad_logits) = softmax_cross_entropy(&logits, target);
        mlp.zero_grad();
        let grad_in = mlp.backward(&cache, &grad_logits);

        let eps = 1e-2_f32;
        for i in 0..x.len() {
            let mut xp = x.clone();
            xp[i] += eps;
            let mut xm = x.clone();
            xm[i] -= eps;
            let num = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (num - grad_in[i]).abs() < 5e-3,
                "dx[{i}]: numerical {num} vs analytic {}",
                grad_in[i]
            );
        }
        // Check a handful of parameter gradients.
        let checks = [(0usize, 0usize, 0usize), (1, 0, 1), (2, 2, 4), (3, 0, 2)];
        for (which, r, c) in checks {
            let orig = mlp.params_mut()[which].value.get(r, c);
            mlp.params_mut()[which].value.set(r, c, orig + eps);
            let lp = loss_of(&mlp, &x);
            mlp.params_mut()[which].value.set(r, c, orig - eps);
            let lm = loss_of(&mlp, &x);
            mlp.params_mut()[which].value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = mlp.params_mut()[which].grad.get(r, c);
            assert!(
                (num - ana).abs() < 5e-3,
                "param {which} [{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn batched_backward_is_bit_identical_to_per_sample() {
        // ReLU matters here: its backward produces exact zeros, exercising
        // the dense (no zero-skip) gradient kernel semantics.
        for act in [Activation::Relu, Activation::Tanh, Activation::Sigmoid] {
            let mut r = rng();
            let init = Mlp::new(&[6, 12, 5, 3], act, &mut r);
            let mut reference = init.clone();
            let mut batched = init;
            let batch = Matrix::uniform(11, 6, 1.0, &mut r);

            let (out, cache) = batched.forward_batch_train(&batch);
            // Upstream gradient dL/dy = y (loss 0.5||y||^2 per row).
            let grad_in = batched.backward_batch(&cache, &out);

            let mut ref_grad_in = Vec::new();
            for row in 0..batch.rows() {
                let (y, sample_cache) = reference.forward(batch.row(row));
                for (a, b) in out.row(row).iter().zip(y.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{act:?} forward row {row}");
                }
                ref_grad_in.push(reference.backward(&sample_cache, &y));
            }
            for (row, reference_row) in ref_grad_in.iter().enumerate() {
                for (a, b) in grad_in.row(row).iter().zip(reference_row.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{act:?} grad-in row {row}");
                }
            }
            for (pr, pb) in reference
                .params_mut()
                .iter()
                .zip(batched.params_mut().iter())
            {
                for (a, b) in pb.grad.data().iter().zip(pr.grad.data().iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "{act:?} param grads");
                }
            }
        }
    }

    #[test]
    fn batched_backward_numerical_gradient_check() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[4, 6, 3], Activation::Tanh, &mut r);
        let batch = Matrix::uniform(5, 4, 0.7, &mut r);
        let loss = |mlp: &Mlp, x: &Matrix| -> f32 {
            (0..x.rows())
                .map(|row| {
                    mlp.predict(x.row(row))
                        .iter()
                        .map(|&v| 0.5 * v * v)
                        .sum::<f32>()
                })
                .sum()
        };
        let (out, cache) = mlp.forward_batch_train(&batch);
        mlp.zero_grad();
        let grad_in = mlp.backward_batch(&cache, &out);

        let eps = 1e-2_f32;
        let checks = [(0usize, 0usize, 0usize), (1, 0, 1), (2, 2, 4), (3, 0, 2)];
        for (which, pr, pc) in checks {
            let orig = mlp.params_mut()[which].value.get(pr, pc);
            mlp.params_mut()[which].value.set(pr, pc, orig + eps);
            mlp.params_mut()[which].invalidate_transpose();
            let lp = loss(&mlp, &batch);
            mlp.params_mut()[which].value.set(pr, pc, orig - eps);
            mlp.params_mut()[which].invalidate_transpose();
            let lm = loss(&mlp, &batch);
            mlp.params_mut()[which].value.set(pr, pc, orig);
            mlp.params_mut()[which].invalidate_transpose();
            let num = (lp - lm) / (2.0 * eps);
            let ana = mlp.params_mut()[which].grad.get(pr, pc);
            assert!(
                (num - ana).abs() < 5e-2,
                "param {which} [{pr},{pc}]: numerical {num} vs analytic {ana}"
            );
        }
        for i in 0..4 {
            let mut xp = batch.clone();
            let mut xm = batch.clone();
            xp.row_mut(1)[i] += eps;
            xm.row_mut(1)[i] -= eps;
            let num = (loss(&mlp, &xp) - loss(&mlp, &xm)) / (2.0 * eps);
            let ana = grad_in.get(1, i);
            assert!(
                (num - ana).abs() < 5e-2,
                "dx[1][{i}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    /// End-to-end sanity: a small MLP can learn a separable 3-class problem.
    #[test]
    fn learns_a_simple_classification_task() {
        let mut r = rng();
        let mut mlp = Mlp::new(&[2, 16, 3], Activation::Relu, &mut r);
        let mut opt = Adam::new(0.01);
        // Three clusters at (2,0), (-2,0), (0,2).
        let centers = [(2.0_f32, 0.0_f32), (-2.0, 0.0), (0.0, 2.0)];
        let data: Vec<([f32; 2], usize)> = (0..150)
            .map(|i| {
                let class = i % 3;
                let (cx, cy) = centers[class];
                use rand::Rng;
                let x = cx + r.gen_range(-0.5..0.5);
                let y = cy + r.gen_range(-0.5..0.5);
                ([x, y], class)
            })
            .collect();
        for _epoch in 0..20 {
            for (x, t) in &data {
                let (logits, cache) = mlp.forward(x);
                let (_, grad) = softmax_cross_entropy(&logits, *t);
                mlp.backward(&cache, &grad);
                opt.step(&mut mlp.params_mut());
                mlp.zero_grad();
            }
        }
        let correct = data
            .iter()
            .filter(|(x, t)| crate::loss::argmax(&mlp.predict(x)) == *t)
            .count();
        assert!(
            correct as f64 / data.len() as f64 > 0.9,
            "only {correct}/{} correct",
            data.len()
        );
    }

    #[test]
    fn serde_round_trip() {
        let mlp = Mlp::new(&[3, 4, 2], Activation::Sigmoid, &mut rng());
        let json = serde_json::to_string(&mlp).unwrap();
        let back: Mlp = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mlp);
    }
}
