//! Token embedding layer.

use crate::error::NnError;
use crate::param::{Param, Parameterized};
use crate::tensor::Matrix;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A lookup table mapping token ids to dense vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Embedding {
    weight: Param,
}

impl Embedding {
    /// Creates an embedding table of shape `(vocab_size, dim)` with small
    /// uniform random initialization.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(vocab_size: usize, dim: usize, rng: &mut R) -> Self {
        Embedding {
            weight: Param::new(Matrix::uniform(vocab_size, dim, 0.1, rng)),
        }
    }

    /// Vocabulary size.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.weight.value.rows()
    }

    /// Embedding dimension.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.weight.value.cols()
    }

    /// Looks up one token.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if the token id is out of range.
    pub fn lookup(&self, token: usize) -> Result<Vec<f32>, NnError> {
        self.row(token).map(<[f32]>::to_vec)
    }

    /// Borrows one token's embedding row — the allocation-free
    /// [`Embedding::lookup`], for batch builders that copy rows into flat
    /// storage.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if the token id is out of range.
    pub fn row(&self, token: usize) -> Result<&[f32], NnError> {
        if token >= self.vocab_size() {
            return Err(NnError::VocabOutOfRange {
                token,
                vocab: self.vocab_size(),
            });
        }
        Ok(self.weight.value.row(token))
    }

    /// Looks up a sequence of tokens.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token id is out of range.
    pub fn forward(&self, tokens: &[usize]) -> Result<Vec<Vec<f32>>, NnError> {
        tokens.iter().map(|&t| self.lookup(t)).collect()
    }

    /// Accumulates gradients for the rows used in a forward pass.
    ///
    /// # Panics
    ///
    /// Panics if `tokens` and `grads` have different lengths or a gradient
    /// vector has the wrong dimension; token ids must have been validated by
    /// the forward pass.
    pub fn backward(&mut self, tokens: &[usize], grads: &[Vec<f32>]) {
        assert_eq!(tokens.len(), grads.len(), "token/gradient count mismatch");
        for (&t, g) in tokens.iter().zip(grads.iter()) {
            self.backward_row(t, g);
        }
    }

    /// Accumulates the gradient for a single token occurrence — the
    /// scatter primitive under [`Embedding::backward`] and the batched
    /// encoder backward (which replays occurrences in the same
    /// token-order-per-sequence the per-sample path uses).
    ///
    /// # Panics
    ///
    /// Panics if the gradient has the wrong dimension; the token id must
    /// have been validated by the forward pass.
    pub fn backward_row(&mut self, token: usize, grad: &[f32]) {
        assert_eq!(grad.len(), self.dim(), "gradient dimension mismatch");
        let row = self.weight.grad.row_mut(token);
        for (r, &gi) in row.iter_mut().zip(grad.iter()) {
            *r += gi;
        }
    }
}

impl Parameterized for Embedding {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn embedding() -> Embedding {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        Embedding::new(5, 4, &mut rng)
    }

    #[test]
    fn shapes_and_lookup() {
        let e = embedding();
        assert_eq!(e.vocab_size(), 5);
        assert_eq!(e.dim(), 4);
        let v = e.lookup(2).unwrap();
        assert_eq!(v.len(), 4);
        assert!(e.lookup(5).is_err());
    }

    #[test]
    fn forward_returns_one_vector_per_token() {
        let e = embedding();
        let out = e.forward(&[0, 1, 1, 4]).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out[1], out[2], "same token maps to the same vector");
        assert!(e.forward(&[0, 9]).is_err());
    }

    #[test]
    fn backward_accumulates_per_row() {
        let mut e = embedding();
        let g = vec![1.0, 2.0, 3.0, 4.0];
        e.backward(&[1, 1, 3], &[g.clone(), g.clone(), g.clone()]);
        // Row 1 was used twice, row 3 once, others never.
        let grad = &e.params_mut()[0].grad;
        assert_eq!(grad.row(1), &[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(grad.row(3), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(grad.row(0), &[0.0; 4]);
    }

    #[test]
    fn serde_round_trip() {
        let e = embedding();
        let json = serde_json::to_string(&e).unwrap();
        let back: Embedding = serde_json::from_str(&json).unwrap();
        assert_eq!(back, e);
    }
}
