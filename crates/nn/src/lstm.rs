//! A single-layer LSTM with full backpropagation through time.
//!
//! The paper's fitness-function architecture (Figure 2) encodes each variable
//! -length component (inputs, outputs, execution-trace values, per-example
//! hidden vectors) with LSTM encoders whose final hidden state summarizes the
//! sequence. This module provides exactly that: `forward` consumes a sequence
//! of input vectors and returns the final hidden state plus a cache, and
//! `backward` propagates a gradient on the final hidden state through time,
//! accumulating parameter gradients and returning per-step input gradients.

use crate::activation::{sigmoid, tanh};
use crate::batch::{SequenceBatch, SequenceTrie};
use crate::param::{Param, Parameterized};
use crate::simd;
use crate::tensor::{vecops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cached activations of one LSTM time step (needed for BPTT).
#[derive(Debug, Clone, PartialEq)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Cache of a full forward pass over a sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmCache {
    steps: Vec<StepCache>,
}

impl LstmCache {
    /// Number of time steps in the cached sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the cached sequence was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Hidden state after each time step (h_1 .. h_T).
    #[must_use]
    pub fn hidden_states(&self) -> Vec<Vec<f32>> {
        self.steps
            .iter()
            .map(|s| {
                s.o.iter()
                    .zip(s.tanh_c.iter())
                    .map(|(&o, &tc)| o * tc)
                    .collect()
            })
            .collect()
    }
}

/// A single-layer LSTM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    w_ih: Param,
    w_hh: Param,
    bias: Param,
    input_dim: usize,
    hidden_dim: usize,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights. The forget-gate bias
    /// is initialized to 1.0, a standard trick that eases learning of
    /// long-range dependencies.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let mut bias = Matrix::zeros(1, 4 * hidden_dim);
        for j in hidden_dim..2 * hidden_dim {
            bias.set(0, j, 1.0);
        }
        Lstm {
            w_ih: Param::new(Matrix::xavier(4 * hidden_dim, input_dim, rng)),
            w_hh: Param::new(Matrix::xavier(4 * hidden_dim, hidden_dim, rng)),
            bias: Param::new(bias),
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimension.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> StepCache {
        let h = self.hidden_dim;
        let mut z = self.w_ih.value.matvec(x);
        vecops::add_assign(&mut z, &self.w_hh.value.matvec(h_prev));
        vecops::add_assign(&mut z, self.bias.value.row(0));
        let i: Vec<f32> = z[0..h].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = z[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f32> = z[2 * h..3 * h].iter().map(|&v| tanh(v)).collect();
        let o: Vec<f32> = z[3 * h..4 * h].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f32> = (0..h).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let tanh_c: Vec<f32> = c.iter().map(|&v| tanh(v)).collect();
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
        }
    }

    /// Runs the LSTM over `inputs`, returning the final hidden state and the
    /// cache required for [`Lstm::backward`]. An empty sequence yields the
    /// all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if any input vector does not have dimension `input_dim`.
    #[must_use]
    pub fn forward(&self, inputs: &[Vec<f32>]) -> (Vec<f32>, LstmCache) {
        let mut h = vec![0.0; self.hidden_dim];
        let mut c = vec![0.0; self.hidden_dim];
        let mut cache = LstmCache::default();
        for x in inputs {
            assert_eq!(x.len(), self.input_dim, "lstm input dimension mismatch");
            let step = self.step(x, &h, &c);
            h = step
                .o
                .iter()
                .zip(step.tanh_c.iter())
                .map(|(&o, &tc)| o * tc)
                .collect();
            c = step.c.clone();
            cache.steps.push(step);
        }
        (h, cache)
    }

    /// Batched inference over many sequences at once: returns the final
    /// hidden state of every sequence, in input order. No cache is kept, so
    /// this is inference-only.
    ///
    /// This is a convenience wrapper that copies the nested sequences into
    /// one flat [`SequenceBatch`] and calls [`Lstm::forward_batch_flat`];
    /// hot paths (the fitness network's batched stages) build the
    /// [`SequenceBatch`] directly and skip the copy.
    ///
    /// # Panics
    ///
    /// Panics if any input vector does not have dimension `input_dim`.
    #[must_use]
    pub fn forward_batch(&self, sequences: &[Vec<Vec<f32>>]) -> Vec<Vec<f32>> {
        let rows: usize = sequences.iter().map(Vec::len).sum();
        let mut batch = SequenceBatch::with_capacity(self.input_dim, rows, sequences.len());
        for sequence in sequences {
            batch.begin_sequence();
            for x in sequence {
                assert_eq!(x.len(), self.input_dim, "lstm input dimension mismatch");
                batch.push_row().copy_from_slice(x);
            }
        }
        self.forward_batch_flat(&batch)
    }

    /// Batched inference over a flat [`SequenceBatch`] — the allocation-lean
    /// core of [`Lstm::forward_batch`].
    ///
    /// Sequences are sorted by length internally (longest first) so that at
    /// each time step the still-active sequences form a contiguous prefix —
    /// same-length sequences are thereby stepped together — and each step
    /// computes the four gates for the whole prefix with two matrix
    /// products instead of `2 x batch` GEMVs. Results are bit-identical to
    /// calling [`Lstm::forward`] per sequence; empty sequences yield the
    /// all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the batch's row dimension is not `input_dim` (empty batches
    /// are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_flat(&self, batch: &SequenceBatch) -> Vec<Vec<f32>> {
        let h_dim = self.hidden_dim;
        let mut finals = vec![vec![0.0; h_dim]; batch.num_sequences()];
        // Longest first; ties keep input order for determinism.
        let mut order: Vec<usize> = (0..batch.num_sequences()).collect();
        order.sort_by(|&a, &b| batch.seq_len(b).cmp(&batch.seq_len(a)).then(a.cmp(&b)));
        let mut active = order
            .iter()
            .take_while(|&&idx| batch.seq_len(idx) > 0)
            .count();
        if active == 0 {
            return finals;
        }
        assert_eq!(batch.dim(), self.input_dim, "lstm input dimension mismatch");
        let max_len = batch.seq_len(order[0]);

        // The transposed weights every step's matmuls consume are memoized
        // on the parameters (`Param::transposed`), valid until the next
        // optimizer step.
        let w_ih_t = self.w_ih.transposed();
        let w_hh_t = self.w_hh.transposed();

        let mut h_mat = Matrix::zeros(active, h_dim);
        let mut c_mat = Matrix::zeros(active, h_dim);
        let mut x_mat = Matrix::zeros(active, self.input_dim);
        let mut zx = Matrix::zeros(0, 0);
        let mut zh = Matrix::zeros(0, 0);
        for t in 0..max_len {
            // Sequences shorter than t + 1 drop out of the active prefix;
            // their hidden state is final.
            let still_active = order[..active]
                .iter()
                .take_while(|&&idx| batch.seq_len(idx) > t)
                .count();
            for slot in still_active..active {
                finals[order[slot]] = h_mat.row(slot).to_vec();
            }
            active = still_active;
            h_mat.truncate_rows(active);
            c_mat.truncate_rows(active);
            x_mat.truncate_rows(active);

            for (slot, &idx) in order[..active].iter().enumerate() {
                x_mat.row_mut(slot).copy_from_slice(batch.row(idx, t));
            }
            x_mat.matmul_into(&w_ih_t, &mut zx);
            h_mat.matmul_into(&w_hh_t, &mut zh);
            self.batched_gate_pass(&zx, &zh, &mut c_mat, &mut h_mat, active);
        }
        for slot in 0..active {
            finals[order[slot]] = h_mat.row(slot).to_vec();
        }
        finals
    }

    /// The batched gate pass shared by every batch-inference path: given the
    /// pre-activations `zx` and `zh` for `active` rows, updates `c_mat`
    /// (holding each row's previous cell state) to the new cell state and
    /// writes the new hidden state into `h_mat`.
    ///
    /// Split in two element-wise sweeps so each can be parallelized across
    /// rows: first `c = f * c_prev + i * g` in place, then
    /// `h = o * tanh(c)`. Both sweeps run through the lane-vectorized
    /// [`simd::lstm_gate_c`]/[`simd::lstm_gate_h`] kernels, whose
    /// transcendentals are bitwise libm-compatible and whose op order is
    /// `z = (x W_ih^T + h W_hh^T) + bias` — exactly [`Lstm::step`] — so
    /// results stay bit-identical however the work is split or vectorized.
    fn batched_gate_pass(
        &self,
        zx: &Matrix,
        zh: &Matrix,
        c_mat: &mut Matrix,
        h_mat: &mut Matrix,
        active: usize,
    ) {
        let h_dim = self.hidden_dim;
        let bias = self.bias.value.row(0);
        // The sigmoid/tanh evaluations dominate large batches; spread
        // rows over the worker pool once the batch is big enough to
        // amortize the dispatch. Chunks are over-decomposed (more chunks
        // than pool threads) so the work-stealing scheduler balances them;
        // each row's gate expressions run in a fixed order, so the split is
        // bit-identity-preserving whatever thread takes which chunk.
        const GATE_PAR_THRESHOLD: usize = 1 << 13;
        let tasks = if active * h_dim >= GATE_PAR_THRESHOLD {
            (rayon::current_num_threads() * rayon::TASKS_PER_THREAD)
                .min(active)
                .max(1)
        } else {
            1
        };
        if tasks <= 1 {
            // Single-worker fast path: both sweeps per row while its gate
            // rows are hot.
            for slot in 0..active {
                let zx_row = zx.row(slot);
                let zh_row = zh.row(slot);
                simd::lstm_gate_c(zx_row, zh_row, bias, c_mat.row_mut(slot));
                simd::lstm_gate_h(zx_row, zh_row, bias, c_mat.row(slot), h_mat.row_mut(slot));
            }
            return;
        }
        let rows_per_chunk = active.div_ceil(tasks).max(1);
        {
            use rayon::prelude::ParallelSliceMut;
            c_mat
                .data_mut()
                .par_chunks_mut(rows_per_chunk * h_dim)
                .enumerate()
                .for_each(|(chunk_index, chunk)| {
                    let first_slot = chunk_index * rows_per_chunk;
                    for (local, c_row) in chunk.chunks_mut(h_dim).enumerate() {
                        let slot = first_slot + local;
                        simd::lstm_gate_c(zx.row(slot), zh.row(slot), bias, c_row);
                    }
                });
        }
        let c_ref = &*c_mat;
        {
            use rayon::prelude::ParallelSliceMut;
            h_mat
                .data_mut()
                .par_chunks_mut(rows_per_chunk * h_dim)
                .enumerate()
                .for_each(|(chunk_index, chunk)| {
                    let first_slot = chunk_index * rows_per_chunk;
                    for (local, h_row) in chunk.chunks_mut(h_dim).enumerate() {
                        let slot = first_slot + local;
                        simd::lstm_gate_h(zx.row(slot), zh.row(slot), bias, c_ref.row(slot), h_row);
                    }
                });
        }
    }

    /// Batched inference over a prefix-sharing [`SequenceTrie`]: every
    /// distinct sequence *prefix* is stepped exactly once, and sequences
    /// read their final hidden state off the trie node their last step
    /// landed on.
    ///
    /// An LSTM state is a function of the consumed prefix alone, and every
    /// node's step uses the same matmul row semantics and gate expressions
    /// as [`Lstm::forward`], so results are bit-identical to per-sequence
    /// calls — the trie only removes duplicated work (~30% of the fitness
    /// network's trace-value encoding steps in a GA population batch).
    /// Empty sequences yield the all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the trie's row dimension is not `input_dim` (tries with no
    /// nodes are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_trie(&self, trie: &SequenceTrie) -> Vec<Vec<f32>> {
        let h_dim = self.hidden_dim;
        let mut finals = vec![vec![0.0; h_dim]; trie.num_sequences()];
        if trie.node_count() == 0 {
            return finals;
        }
        assert_eq!(trie.dim(), self.input_dim, "lstm input dimension mismatch");

        // Memoized transposed weights, shared with every other batched path
        // (see `Param::transposed`).
        let w_ih_t = self.w_ih.transposed();
        let w_hh_t = self.w_hh.transposed();

        // Hidden states of every level are kept (terminals read them);
        // cell states only feed the next level.
        let mut level_h: Vec<Matrix> = Vec::with_capacity(trie.levels().len());
        let mut prev_c = Matrix::zeros(0, h_dim);
        let mut zx = Matrix::zeros(0, 0);
        let mut zh = Matrix::zeros(0, 0);
        for (depth, level) in trie.levels().iter().enumerate() {
            let nodes = level.parents.len();
            let x_mat = Matrix::from_vec(nodes, self.input_dim, level.rows.clone());
            // Gather each node's previous (h, c) from its parent; depth 0
            // starts from the zero state.
            let mut h_prev = Matrix::zeros(nodes, h_dim);
            let mut c_mat = Matrix::zeros(nodes, h_dim);
            if depth > 0 {
                let parent_h = &level_h[depth - 1];
                for (slot, &parent) in level.parents.iter().enumerate() {
                    h_prev.row_mut(slot).copy_from_slice(parent_h.row(parent));
                    c_mat.row_mut(slot).copy_from_slice(prev_c.row(parent));
                }
            }
            x_mat.matmul_into(&w_ih_t, &mut zx);
            if depth == 0 {
                // Every depth-0 node starts from the zero state, so its zh
                // row is the same vector: compute it once with the exact
                // per-sequence expression and broadcast.
                let zh_root = self.w_hh.value.matvec(&vec![0.0; h_dim]);
                zh = Matrix::zeros(nodes, 4 * h_dim);
                for slot in 0..nodes {
                    zh.row_mut(slot).copy_from_slice(&zh_root);
                }
            } else {
                h_prev.matmul_into(&w_hh_t, &mut zh);
            }
            // The gate pass overwrites every row of its h output; reuse the
            // gathered h_prev buffer for it.
            let mut h_mat = h_prev;
            self.batched_gate_pass(&zx, &zh, &mut c_mat, &mut h_mat, nodes);
            level_h.push(h_mat);
            prev_c = c_mat;
        }
        for (sequence, terminal) in trie.terminals().iter().enumerate() {
            if let Some((depth, slot)) = *terminal {
                finals[sequence] = level_h[depth].row(slot).to_vec();
            }
        }
        finals
    }

    /// Backpropagates a gradient on the final hidden state through the cached
    /// sequence. Parameter gradients are accumulated in place and the
    /// gradient with respect to each input vector is returned (in sequence
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `grad_final_h` does not have dimension `hidden_dim`.
    pub fn backward(&mut self, cache: &LstmCache, grad_final_h: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(
            grad_final_h.len(),
            self.hidden_dim,
            "lstm gradient dimension mismatch"
        );
        let h_dim = self.hidden_dim;
        let mut dh = grad_final_h.to_vec();
        let mut dc = vec![0.0; h_dim];
        let mut input_grads = vec![Vec::new(); cache.steps.len()];
        for (t, step) in cache.steps.iter().enumerate().rev() {
            // h = o * tanh(c)
            let do_: Vec<f32> = (0..h_dim).map(|j| dh[j] * step.tanh_c[j]).collect();
            for j in 0..h_dim {
                dc[j] += dh[j] * step.o[j] * (1.0 - step.tanh_c[j] * step.tanh_c[j]);
            }
            // c = f * c_prev + i * g
            let di: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.g[j]).collect();
            let dg: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.i[j]).collect();
            let df: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.c_prev[j]).collect();
            let dc_prev: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.f[j]).collect();
            // Pre-activation gradients.
            let mut dz = vec![0.0; 4 * h_dim];
            for j in 0..h_dim {
                dz[j] = di[j] * step.i[j] * (1.0 - step.i[j]);
                dz[h_dim + j] = df[j] * step.f[j] * (1.0 - step.f[j]);
                dz[2 * h_dim + j] = dg[j] * (1.0 - step.g[j] * step.g[j]);
                dz[3 * h_dim + j] = do_[j] * step.o[j] * (1.0 - step.o[j]);
            }
            // Parameter gradients.
            self.w_ih.grad.add_outer(&dz, &step.x, 1.0);
            self.w_hh.grad.add_outer(&dz, &step.h_prev, 1.0);
            for (b, &d) in self.bias.grad.row_mut(0).iter_mut().zip(dz.iter()) {
                *b += d;
            }
            // Gradients flowing to the input and the previous step.
            input_grads[t] = self.w_ih.value.matvec_transposed(&dz);
            dh = self.w_hh.value.matvec_transposed(&dz);
            dc = dc_prev;
        }
        input_grads
    }
}

impl Parameterized for Lstm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn sample_sequence(len: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| {
                (0..dim)
                    .map(|d| ((t * dim + d) as f32) * 0.1 - 0.3)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_empty_sequence() {
        let lstm = Lstm::new(3, 4, &mut rng());
        assert_eq!(lstm.input_dim(), 3);
        assert_eq!(lstm.hidden_dim(), 4);
        let (h, cache) = lstm.forward(&[]);
        assert_eq!(h, vec![0.0; 4]);
        assert!(cache.is_empty());
        let (h, cache) = lstm.forward(&sample_sequence(5, 3));
        assert_eq!(h.len(), 4);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.hidden_states().len(), 5);
        assert_eq!(cache.hidden_states()[4], h);
    }

    #[test]
    fn hidden_state_is_bounded_by_one() {
        // h = o * tanh(c) with o in (0,1) and |tanh| < 1.
        let lstm = Lstm::new(2, 6, &mut rng());
        let big_inputs: Vec<Vec<f32>> = (0..20).map(|_| vec![5.0, -5.0]).collect();
        let (h, _) = lstm.forward(&big_inputs);
        assert!(h.iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn forward_is_deterministic_and_order_sensitive() {
        let lstm = Lstm::new(3, 4, &mut rng());
        let seq = sample_sequence(4, 3);
        let (h1, _) = lstm.forward(&seq);
        let (h2, _) = lstm.forward(&seq);
        assert_eq!(h1, h2);
        let mut reversed = seq.clone();
        reversed.reverse();
        let (h3, _) = lstm.forward(&reversed);
        assert_ne!(h1, h3, "an LSTM should be sensitive to sequence order");
    }

    #[test]
    fn backward_returns_one_gradient_per_input() {
        let mut lstm = Lstm::new(3, 4, &mut rng());
        let seq = sample_sequence(5, 3);
        let (h, cache) = lstm.forward(&seq);
        let grads = lstm.backward(&cache, &vec![1.0; h.len()]);
        assert_eq!(grads.len(), 5);
        assert!(grads.iter().all(|g| g.len() == 3));
        // Backward on an empty cache is a no-op.
        let (_, empty_cache) = lstm.forward(&[]);
        let grads = lstm.backward(&empty_cache, &[0.0; 4]);
        assert!(grads.is_empty());
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        let lstm = Lstm::new(3, 5, &mut rng());
        // Mixed lengths, duplicates, and an empty sequence.
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            sample_sequence(4, 3),
            sample_sequence(7, 3),
            Vec::new(),
            sample_sequence(1, 3),
            sample_sequence(4, 3),
            sample_sequence(2, 3),
        ];
        let batched = lstm.forward_batch(&sequences);
        assert_eq!(batched.len(), sequences.len());
        for (seq, batch_h) in sequences.iter().zip(batched.iter()) {
            let (single_h, _) = lstm.forward(seq);
            assert_eq!(batch_h.len(), single_h.len());
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "length {}", seq.len());
            }
        }
    }

    #[test]
    fn trie_forward_is_bit_identical_to_single() {
        let lstm = Lstm::new(3, 5, &mut rng());
        // Sequences with shared prefixes, duplicates, and an empty one.
        let base = sample_sequence(6, 3);
        let mut shorter = base.clone();
        shorter.truncate(3);
        let mut diverging = base.clone();
        diverging[4] = vec![9.0, -9.0, 0.5];
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            base.clone(),
            shorter,
            diverging,
            Vec::new(),
            base.clone(),
            sample_sequence(2, 3),
        ];
        // Key steps by their position in a canonical list of distinct rows,
        // mirroring how callers intern inputs before building the trie.
        let mut distinct: Vec<&Vec<f32>> = Vec::new();
        let mut trie = SequenceTrie::new(3);
        for sequence in &sequences {
            trie.begin_sequence();
            for x in sequence {
                let key = match distinct.iter().position(|d| *d == x) {
                    Some(at) => at,
                    None => {
                        distinct.push(x);
                        distinct.len() - 1
                    }
                } as u64;
                if let Some(row) = trie.push_step(key) {
                    row.copy_from_slice(x);
                }
            }
        }
        assert!(trie.node_count() < sequences.iter().map(Vec::len).sum::<usize>());
        let batched = lstm.forward_batch_trie(&trie);
        assert_eq!(batched.len(), sequences.len());
        for (seq, batch_h) in sequences.iter().zip(batched.iter()) {
            let (single_h, _) = lstm.forward(seq);
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "length {}", seq.len());
            }
        }
        // An empty trie yields zero states without touching the weights.
        let empty = SequenceTrie::new(7); // wrong dim: fine while empty
        assert!(lstm.forward_batch_trie(&empty).is_empty());
    }

    #[test]
    fn batched_forward_handles_degenerate_batches() {
        let lstm = Lstm::new(2, 3, &mut rng());
        assert!(lstm.forward_batch(&[]).is_empty());
        let all_empty = lstm.forward_batch(&[Vec::new(), Vec::new()]);
        assert_eq!(all_empty, vec![vec![0.0; 3], vec![0.0; 3]]);
        let one = lstm.forward_batch(&[sample_sequence(5, 2)]);
        let (single, _) = lstm.forward(&sample_sequence(5, 2));
        assert_eq!(one[0], single);
    }

    /// Full numerical gradient check of the LSTM through time: parameters,
    /// and inputs, on a small configuration.
    #[test]
    fn numerical_gradient_check() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let seq = sample_sequence(4, 2);
        // Loss = 0.5 * ||h_T||^2 so dL/dh_T = h_T.
        let loss = |lstm: &Lstm, seq: &[Vec<f32>]| -> f32 {
            let (h, _) = lstm.forward(seq);
            h.iter().map(|&v| 0.5 * v * v).sum()
        };
        let (h, cache) = lstm.forward(&seq);
        lstm.zero_grad();
        let input_grads = lstm.backward(&cache, &h);
        let eps = 1e-2_f32;

        // Input gradients.
        for t in 0..seq.len() {
            for d in 0..2 {
                let mut sp = seq.clone();
                sp[t][d] += eps;
                let mut sm = seq.clone();
                sm[t][d] -= eps;
                let num = (loss(&lstm, &sp) - loss(&lstm, &sm)) / (2.0 * eps);
                let ana = input_grads[t][d];
                assert!(
                    (num - ana).abs() < 5e-3,
                    "dx[{t}][{d}]: numerical {num} vs analytic {ana}"
                );
            }
        }

        // A sample of parameter gradients from each matrix.
        let param_checks: Vec<(usize, usize, usize)> = vec![
            (0, 0, 0),
            (0, 5, 1),
            (1, 2, 2),
            (1, 11, 0),
            (2, 0, 3),
            (2, 0, 9),
        ];
        for (which, r, c) in param_checks {
            let orig = lstm.params_mut()[which].value.get(r, c);
            lstm.params_mut()[which].value.set(r, c, orig + eps);
            let lp = loss(&lstm, &seq);
            lstm.params_mut()[which].value.set(r, c, orig - eps);
            let lm = loss(&lstm, &seq);
            lstm.params_mut()[which].value.set(r, c, orig);
            let ana = lstm.params_mut()[which].grad.get(r, c);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-3,
                "param {which} [{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let lstm = Lstm::new(3, 2, &mut rng());
        let json = serde_json::to_string(&lstm).unwrap();
        let back: Lstm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lstm);
    }
}
