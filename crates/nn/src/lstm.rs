//! A single-layer LSTM with full backpropagation through time.
//!
//! The paper's fitness-function architecture (Figure 2) encodes each variable
//! -length component (inputs, outputs, execution-trace values, per-example
//! hidden vectors) with LSTM encoders whose final hidden state summarizes the
//! sequence. This module provides exactly that: `forward` consumes a sequence
//! of input vectors and returns the final hidden state plus a cache, and
//! `backward` propagates a gradient on the final hidden state through time,
//! accumulating parameter gradients and returning per-step input gradients.

use crate::activation::{sigmoid, tanh};
use crate::batch::{SequenceBatch, SequenceTrie, TimeMajorBatch};
use crate::param::{Param, Parameterized};
use crate::simd;
use crate::tensor::{vecops, Matrix};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Cached activations of one LSTM time step (needed for BPTT).
#[derive(Debug, Clone, PartialEq)]
struct StepCache {
    x: Vec<f32>,
    h_prev: Vec<f32>,
    c_prev: Vec<f32>,
    i: Vec<f32>,
    f: Vec<f32>,
    g: Vec<f32>,
    o: Vec<f32>,
    c: Vec<f32>,
    tanh_c: Vec<f32>,
}

/// Cache of a full forward pass over a sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmCache {
    steps: Vec<StepCache>,
}

impl LstmCache {
    /// Number of time steps in the cached sequence.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the cached sequence was empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Hidden state after each time step (h_1 .. h_T).
    #[must_use]
    pub fn hidden_states(&self) -> Vec<Vec<f32>> {
        self.steps
            .iter()
            .map(|s| {
                s.o.iter()
                    .zip(s.tanh_c.iter())
                    .map(|(&o, &tc)| o * tc)
                    .collect()
            })
            .collect()
    }
}

/// Cached activations of one batched LSTM time step (rows = sequences still
/// active at that step, in slot order of the driving [`TimeMajorBatch`]).
#[derive(Debug, Clone, PartialEq)]
struct BatchStep {
    /// Post-activation gates in PyTorch block order: `i` at `[0, h)`, `f`
    /// at `[h, 2h)`, `g` at `[2h, 3h)`, `o` at `[3h, 4h)`.
    gates: Matrix,
    c: Matrix,
    tanh_c: Matrix,
    h: Matrix,
}

/// Cache of a batched training forward pass ([`Lstm::forward_batch_train`])
/// over a [`TimeMajorBatch`], consumed by [`Lstm::backward_batch`].
///
/// Step `t`'s matrices have `batch.active_rows(t)` rows addressed by slot;
/// a slot's previous hidden/cell state is row `slot` of step `t - 1` (the
/// active prefix only ever shrinks with `t`, so the row exists).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LstmBatchCache {
    steps: Vec<BatchStep>,
}

impl LstmBatchCache {
    /// Number of time steps in the cached batch (its longest sequence).
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the cached batch had no steps.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// A single-layer LSTM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lstm {
    w_ih: Param,
    w_hh: Param,
    bias: Param,
    input_dim: usize,
    hidden_dim: usize,
}

impl Lstm {
    /// Creates an LSTM with Xavier-initialized weights. The forget-gate bias
    /// is initialized to 1.0, a standard trick that eases learning of
    /// long-range dependencies.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(input_dim: usize, hidden_dim: usize, rng: &mut R) -> Self {
        let mut bias = Matrix::zeros(1, 4 * hidden_dim);
        for j in hidden_dim..2 * hidden_dim {
            bias.set(0, j, 1.0);
        }
        Lstm {
            w_ih: Param::new(Matrix::xavier(4 * hidden_dim, input_dim, rng)),
            w_hh: Param::new(Matrix::xavier(4 * hidden_dim, hidden_dim, rng)),
            bias: Param::new(bias),
            input_dim,
            hidden_dim,
        }
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Hidden-state dimension.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.hidden_dim
    }

    fn step(&self, x: &[f32], h_prev: &[f32], c_prev: &[f32]) -> StepCache {
        let h = self.hidden_dim;
        let mut z = self.w_ih.value.matvec(x);
        vecops::add_assign(&mut z, &self.w_hh.value.matvec(h_prev));
        vecops::add_assign(&mut z, self.bias.value.row(0));
        let i: Vec<f32> = z[0..h].iter().map(|&v| sigmoid(v)).collect();
        let f: Vec<f32> = z[h..2 * h].iter().map(|&v| sigmoid(v)).collect();
        let g: Vec<f32> = z[2 * h..3 * h].iter().map(|&v| tanh(v)).collect();
        let o: Vec<f32> = z[3 * h..4 * h].iter().map(|&v| sigmoid(v)).collect();
        let c: Vec<f32> = (0..h).map(|j| f[j] * c_prev[j] + i[j] * g[j]).collect();
        let tanh_c: Vec<f32> = c.iter().map(|&v| tanh(v)).collect();
        StepCache {
            x: x.to_vec(),
            h_prev: h_prev.to_vec(),
            c_prev: c_prev.to_vec(),
            i,
            f,
            g,
            o,
            c,
            tanh_c,
        }
    }

    /// Runs the LSTM over `inputs`, returning the final hidden state and the
    /// cache required for [`Lstm::backward`]. An empty sequence yields the
    /// all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if any input vector does not have dimension `input_dim`.
    #[must_use]
    pub fn forward(&self, inputs: &[Vec<f32>]) -> (Vec<f32>, LstmCache) {
        let mut h = vec![0.0; self.hidden_dim];
        let mut c = vec![0.0; self.hidden_dim];
        let mut cache = LstmCache::default();
        for x in inputs {
            assert_eq!(x.len(), self.input_dim, "lstm input dimension mismatch");
            let step = self.step(x, &h, &c);
            h = step
                .o
                .iter()
                .zip(step.tanh_c.iter())
                .map(|(&o, &tc)| o * tc)
                .collect();
            c = step.c.clone();
            cache.steps.push(step);
        }
        (h, cache)
    }

    /// Batched inference over many sequences at once: returns the final
    /// hidden state of every sequence, in input order. No cache is kept, so
    /// this is inference-only.
    ///
    /// This is a convenience wrapper that copies the nested sequences into
    /// one flat [`SequenceBatch`] and calls [`Lstm::forward_batch_flat`];
    /// hot paths (the fitness network's batched stages) build the
    /// [`SequenceBatch`] directly and skip the copy.
    ///
    /// # Panics
    ///
    /// Panics if any input vector does not have dimension `input_dim`.
    #[must_use]
    pub fn forward_batch(&self, sequences: &[Vec<Vec<f32>>]) -> Vec<Vec<f32>> {
        let rows: usize = sequences.iter().map(Vec::len).sum();
        let mut batch = SequenceBatch::with_capacity(self.input_dim, rows, sequences.len());
        for sequence in sequences {
            batch.begin_sequence();
            for x in sequence {
                assert_eq!(x.len(), self.input_dim, "lstm input dimension mismatch");
                batch.push_row().copy_from_slice(x);
            }
        }
        self.forward_batch_flat(&batch)
    }

    /// Batched inference over a flat [`SequenceBatch`] — the allocation-lean
    /// core of [`Lstm::forward_batch`]. Repacks the batch into the
    /// length-sorted time-major layout once and runs the gather-free
    /// [`Lstm::forward_batch_time_major`].
    ///
    /// # Panics
    ///
    /// Panics if the batch's row dimension is not `input_dim` (empty batches
    /// are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_flat(&self, batch: &SequenceBatch) -> Vec<Vec<f32>> {
        self.forward_batch_time_major(&TimeMajorBatch::from_batch(batch))
    }

    /// Batched inference over a pre-packed [`TimeMajorBatch`].
    ///
    /// The layout sorts sequences by length (longest first, ties in input
    /// order) so that at each time step the still-active sequences form a
    /// contiguous prefix *and* that step's input rows are one contiguous
    /// slab — each step computes the four gates for the whole prefix with
    /// two matrix products ([`Matrix::matmul_slab_into`] on the slab, no
    /// per-step row gather) instead of `2 x batch` GEMVs. Results are
    /// bit-identical to calling [`Lstm::forward`] per sequence; empty
    /// sequences yield the all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the batch's row dimension is not `input_dim` (empty batches
    /// are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_time_major(&self, batch: &TimeMajorBatch) -> Vec<Vec<f32>> {
        let h_dim = self.hidden_dim;
        let mut finals = vec![vec![0.0; h_dim]; batch.num_sequences()];
        if batch.max_len() == 0 {
            return finals;
        }
        assert_eq!(batch.dim(), self.input_dim, "lstm input dimension mismatch");

        // The transposed weights every step's matmuls consume are memoized
        // on the parameters (`Param::transposed`), valid until the next
        // optimizer step.
        let w_ih_t = self.w_ih.transposed();
        let w_hh_t = self.w_hh.transposed();

        let mut active = batch.active_rows(0);
        let mut h_mat = Matrix::zeros(active, h_dim);
        let mut c_mat = Matrix::zeros(active, h_dim);
        let mut zx = Matrix::zeros(0, 0);
        let mut zh = Matrix::zeros(0, 0);
        for t in 0..batch.max_len() {
            // Sequences shorter than t + 1 drop out of the active prefix;
            // their hidden state is final.
            let still_active = batch.active_rows(t);
            for slot in still_active..active {
                finals[batch.sequence_for_slot(slot)] = h_mat.row(slot).to_vec();
            }
            active = still_active;
            h_mat.truncate_rows(active);
            c_mat.truncate_rows(active);
            w_ih_t.matmul_slab_into(batch.step_rows(t), active, self.input_dim, &mut zx);
            h_mat.matmul_into(&w_hh_t, &mut zh);
            self.batched_gate_pass(&zx, &zh, &mut c_mat, &mut h_mat, active);
        }
        for slot in 0..active {
            finals[batch.sequence_for_slot(slot)] = h_mat.row(slot).to_vec();
        }
        finals
    }

    /// The batched gate pass shared by every batch-inference path: given the
    /// pre-activations `zx` and `zh` for `active` rows, updates `c_mat`
    /// (holding each row's previous cell state) to the new cell state and
    /// writes the new hidden state into `h_mat`.
    ///
    /// Split in two element-wise sweeps so each can be parallelized across
    /// rows: first `c = f * c_prev + i * g` in place, then
    /// `h = o * tanh(c)`. Both sweeps run through the lane-vectorized
    /// [`simd::lstm_gate_c`]/[`simd::lstm_gate_h`] kernels, whose
    /// transcendentals are bitwise libm-compatible and whose op order is
    /// `z = (x W_ih^T + h W_hh^T) + bias` — exactly [`Lstm::step`] — so
    /// results stay bit-identical however the work is split or vectorized.
    fn batched_gate_pass(
        &self,
        zx: &Matrix,
        zh: &Matrix,
        c_mat: &mut Matrix,
        h_mat: &mut Matrix,
        active: usize,
    ) {
        let h_dim = self.hidden_dim;
        let bias = self.bias.value.row(0);
        // The sigmoid/tanh evaluations dominate large batches; spread
        // rows over the worker pool once the batch is big enough to
        // amortize the dispatch. Chunks are over-decomposed (more chunks
        // than pool threads) so the work-stealing scheduler balances them;
        // each row's gate expressions run in a fixed order, so the split is
        // bit-identity-preserving whatever thread takes which chunk.
        const GATE_PAR_THRESHOLD: usize = 1 << 13;
        let tasks = if active * h_dim >= GATE_PAR_THRESHOLD {
            (rayon::current_num_threads() * rayon::TASKS_PER_THREAD)
                .min(active)
                .max(1)
        } else {
            1
        };
        if tasks <= 1 {
            // Single-worker fast path: both sweeps per row while its gate
            // rows are hot.
            for slot in 0..active {
                let zx_row = zx.row(slot);
                let zh_row = zh.row(slot);
                simd::lstm_gate_c(zx_row, zh_row, bias, c_mat.row_mut(slot));
                simd::lstm_gate_h(zx_row, zh_row, bias, c_mat.row(slot), h_mat.row_mut(slot));
            }
            return;
        }
        let rows_per_chunk = active.div_ceil(tasks).max(1);
        {
            use rayon::prelude::ParallelSliceMut;
            c_mat
                .data_mut()
                .par_chunks_mut(rows_per_chunk * h_dim)
                .enumerate()
                .for_each(|(chunk_index, chunk)| {
                    let first_slot = chunk_index * rows_per_chunk;
                    for (local, c_row) in chunk.chunks_mut(h_dim).enumerate() {
                        let slot = first_slot + local;
                        simd::lstm_gate_c(zx.row(slot), zh.row(slot), bias, c_row);
                    }
                });
        }
        let c_ref = &*c_mat;
        {
            use rayon::prelude::ParallelSliceMut;
            h_mat
                .data_mut()
                .par_chunks_mut(rows_per_chunk * h_dim)
                .enumerate()
                .for_each(|(chunk_index, chunk)| {
                    let first_slot = chunk_index * rows_per_chunk;
                    for (local, h_row) in chunk.chunks_mut(h_dim).enumerate() {
                        let slot = first_slot + local;
                        simd::lstm_gate_h(zx.row(slot), zh.row(slot), bias, c_ref.row(slot), h_row);
                    }
                });
        }
    }

    /// Batched inference over a prefix-sharing [`SequenceTrie`]: every
    /// distinct sequence *prefix* is stepped exactly once, and sequences
    /// read their final hidden state off the trie node their last step
    /// landed on.
    ///
    /// An LSTM state is a function of the consumed prefix alone, and every
    /// node's step uses the same matmul row semantics and gate expressions
    /// as [`Lstm::forward`], so results are bit-identical to per-sequence
    /// calls — the trie only removes duplicated work (~30% of the fitness
    /// network's trace-value encoding steps in a GA population batch).
    /// Empty sequences yield the all-zero hidden state.
    ///
    /// # Panics
    ///
    /// Panics if the trie's row dimension is not `input_dim` (tries with no
    /// nodes are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_trie(&self, trie: &SequenceTrie) -> Vec<Vec<f32>> {
        let h_dim = self.hidden_dim;
        let mut finals = vec![vec![0.0; h_dim]; trie.num_sequences()];
        if trie.node_count() == 0 {
            return finals;
        }
        assert_eq!(trie.dim(), self.input_dim, "lstm input dimension mismatch");

        // Memoized transposed weights, shared with every other batched path
        // (see `Param::transposed`).
        let w_ih_t = self.w_ih.transposed();
        let w_hh_t = self.w_hh.transposed();

        // Hidden states of every level are kept (terminals read them);
        // cell states only feed the next level.
        let mut level_h: Vec<Matrix> = Vec::with_capacity(trie.levels().len());
        let mut prev_c = Matrix::zeros(0, h_dim);
        let mut zx = Matrix::zeros(0, 0);
        let mut zh = Matrix::zeros(0, 0);
        for (depth, level) in trie.levels().iter().enumerate() {
            let nodes = level.parents.len();
            let x_mat = Matrix::from_vec(nodes, self.input_dim, level.rows.clone());
            // Gather each node's previous (h, c) from its parent; depth 0
            // starts from the zero state.
            let mut h_prev = Matrix::zeros(nodes, h_dim);
            let mut c_mat = Matrix::zeros(nodes, h_dim);
            if depth > 0 {
                let parent_h = &level_h[depth - 1];
                for (slot, &parent) in level.parents.iter().enumerate() {
                    h_prev.row_mut(slot).copy_from_slice(parent_h.row(parent));
                    c_mat.row_mut(slot).copy_from_slice(prev_c.row(parent));
                }
            }
            x_mat.matmul_into(&w_ih_t, &mut zx);
            if depth == 0 {
                // Every depth-0 node starts from the zero state, so its zh
                // row is the same vector: compute it once with the exact
                // per-sequence expression and broadcast.
                let zh_root = self.w_hh.value.matvec(&vec![0.0; h_dim]);
                zh = Matrix::zeros(nodes, 4 * h_dim);
                for slot in 0..nodes {
                    zh.row_mut(slot).copy_from_slice(&zh_root);
                }
            } else {
                h_prev.matmul_into(&w_hh_t, &mut zh);
            }
            // The gate pass overwrites every row of its h output; reuse the
            // gathered h_prev buffer for it.
            let mut h_mat = h_prev;
            self.batched_gate_pass(&zx, &zh, &mut c_mat, &mut h_mat, nodes);
            level_h.push(h_mat);
            prev_c = c_mat;
        }
        for (sequence, terminal) in trie.terminals().iter().enumerate() {
            if let Some((depth, slot)) = *terminal {
                finals[sequence] = level_h[depth].row(slot).to_vec();
            }
        }
        finals
    }

    /// Backpropagates a gradient on the final hidden state through the cached
    /// sequence. Parameter gradients are accumulated in place and the
    /// gradient with respect to each input vector is returned (in sequence
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `grad_final_h` does not have dimension `hidden_dim`.
    pub fn backward(&mut self, cache: &LstmCache, grad_final_h: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(
            grad_final_h.len(),
            self.hidden_dim,
            "lstm gradient dimension mismatch"
        );
        let h_dim = self.hidden_dim;
        let mut dh = grad_final_h.to_vec();
        let mut dc = vec![0.0; h_dim];
        let mut input_grads = vec![Vec::new(); cache.steps.len()];
        for (t, step) in cache.steps.iter().enumerate().rev() {
            // h = o * tanh(c)
            let do_: Vec<f32> = (0..h_dim).map(|j| dh[j] * step.tanh_c[j]).collect();
            for j in 0..h_dim {
                dc[j] += dh[j] * step.o[j] * (1.0 - step.tanh_c[j] * step.tanh_c[j]);
            }
            // c = f * c_prev + i * g
            let di: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.g[j]).collect();
            let dg: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.i[j]).collect();
            let df: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.c_prev[j]).collect();
            let dc_prev: Vec<f32> = (0..h_dim).map(|j| dc[j] * step.f[j]).collect();
            // Pre-activation gradients.
            let mut dz = vec![0.0; 4 * h_dim];
            for j in 0..h_dim {
                dz[j] = di[j] * step.i[j] * (1.0 - step.i[j]);
                dz[h_dim + j] = df[j] * step.f[j] * (1.0 - step.f[j]);
                dz[2 * h_dim + j] = dg[j] * (1.0 - step.g[j] * step.g[j]);
                dz[3 * h_dim + j] = do_[j] * step.o[j] * (1.0 - step.o[j]);
            }
            // Parameter gradients.
            self.w_ih.grad.add_outer(&dz, &step.x, 1.0);
            self.w_hh.grad.add_outer(&dz, &step.h_prev, 1.0);
            for (b, &d) in self.bias.grad.row_mut(0).iter_mut().zip(dz.iter()) {
                *b += d;
            }
            // Gradients flowing to the input and the previous step.
            input_grads[t] = self.w_ih.value.matvec_transposed(&dz);
            dh = self.w_hh.value.matvec_transposed(&dz);
            dc = dc_prev;
        }
        input_grads
    }

    /// Batched training forward pass over a [`TimeMajorBatch`]: returns
    /// every sequence's final hidden state (in input order) plus the cache
    /// [`Lstm::backward_batch`] needs.
    ///
    /// Per sequence, the finals — and every cached gate/cell activation —
    /// are bit-identical to [`Lstm::forward`]: each step computes
    /// `z = (x W_ih^T + h_prev W_hh^T) + bias` with the blocked batched
    /// matmul (same ascending-`k` accumulation as `matvec`), then applies
    /// the same lane-vectorized sigmoid/tanh sweeps and element-wise cell
    /// update expressions as the scalar step.
    ///
    /// # Panics
    ///
    /// Panics if the batch's row dimension is not `input_dim` (empty batches
    /// are accepted regardless of their dimension).
    #[must_use]
    pub fn forward_batch_train(&self, batch: &TimeMajorBatch) -> (Vec<Vec<f32>>, LstmBatchCache) {
        let h_dim = self.hidden_dim;
        let mut finals = vec![vec![0.0; h_dim]; batch.num_sequences()];
        let mut cache = LstmBatchCache::default();
        if batch.max_len() == 0 {
            return (finals, cache);
        }
        assert_eq!(batch.dim(), self.input_dim, "lstm input dimension mismatch");

        let w_ih_t = self.w_ih.transposed();
        let w_hh_t = self.w_hh.transposed();
        let bias = self.bias.value.row(0);

        let mut zh = Matrix::zeros(0, 0);
        for t in 0..batch.max_len() {
            let active = batch.active_rows(t);
            // z = (zx + zh) + bias, built in place in the gates matrix —
            // the exact op order of the per-sample step.
            let mut gates = Matrix::zeros(0, 0);
            w_ih_t.matmul_slab_into(batch.step_rows(t), active, self.input_dim, &mut gates);
            if t == 0 {
                // The zero initial hidden state contributes `W_hh * 0`,
                // which the per-sample step computes literally.
                let zh_zero = self.w_hh.value.matvec(&vec![0.0; h_dim]);
                for r in 0..active {
                    vecops::add_assign(gates.row_mut(r), &zh_zero);
                }
            } else {
                let h_prev = &cache.steps[t - 1].h;
                w_hh_t.matmul_slab_into(&h_prev.data()[..active * h_dim], active, h_dim, &mut zh);
                for r in 0..active {
                    vecops::add_assign(gates.row_mut(r), zh.row(r));
                }
            }
            gates.add_row_broadcast(bias);
            // Gate activations, block-wise per row: the same lane kernels
            // the inference paths certify bit-identical to the scalar
            // sigmoid/tanh.
            for r in 0..active {
                let row = gates.row_mut(r);
                simd::vsigmoid_slice(&mut row[0..2 * h_dim]);
                simd::vtanh_slice(&mut row[2 * h_dim..3 * h_dim]);
                simd::vsigmoid_slice(&mut row[3 * h_dim..4 * h_dim]);
            }
            // c = f * c_prev + i * g, then tanh(c), then h = o * tanh(c) —
            // element-wise, with the scalar step's expressions verbatim.
            let mut c = Matrix::zeros(active, h_dim);
            for r in 0..active {
                let row = gates.row(r);
                let c_row = c.row_mut(r);
                if t == 0 {
                    for j in 0..h_dim {
                        c_row[j] = row[h_dim + j] * 0.0 + row[j] * row[2 * h_dim + j];
                    }
                } else {
                    let c_prev = cache.steps[t - 1].c.row(r);
                    for j in 0..h_dim {
                        c_row[j] = row[h_dim + j] * c_prev[j] + row[j] * row[2 * h_dim + j];
                    }
                }
            }
            let mut tanh_c = c.clone();
            for r in 0..active {
                simd::vtanh_slice(tanh_c.row_mut(r));
            }
            let mut h = Matrix::zeros(active, h_dim);
            for r in 0..active {
                let h_row = h.row_mut(r);
                let o_row = &gates.row(r)[3 * h_dim..];
                let tc_row = tanh_c.row(r);
                for j in 0..h_dim {
                    h_row[j] = o_row[j] * tc_row[j];
                }
            }
            cache.steps.push(BatchStep {
                gates,
                c,
                tanh_c,
                h,
            });
        }
        // Read each sequence's final hidden state off the last step it was
        // active at.
        for slot in 0..batch.active_rows(0) {
            let len = batch.slot_len(slot);
            finals[batch.sequence_for_slot(slot)] = cache.steps[len - 1].h.row(slot).to_vec();
        }
        (finals, cache)
    }

    /// Batched backward pass through a cached [`Lstm::forward_batch_train`]:
    /// `grad_finals[s]` is the gradient on sequence `s`'s final hidden
    /// state. Parameter gradients are accumulated in place; the returned
    /// batch holds the gradient with respect to every input row, in the
    /// same time-major layout as `batch` (read rows via
    /// `TimeMajorBatch::row(t, slot_of(seq))`).
    ///
    /// Gradients are **bit-identical** to looping [`Lstm::backward`] over
    /// the sequences in input order. The time recursion runs batched
    /// (t-descending, all active rows at once, each row evaluating the
    /// per-sample expressions verbatim), producing the same per-step gate
    /// pre-activation gradients `dz`; input and hidden-state gradients
    /// come from one blocked GEMM per step over the `dz` slab
    /// ([`Matrix::matmul_slab_to`] — the same dense `k`-ascending chain as
    /// the per-sample `matvec_transposed`). The parameter accumulation is
    /// **deferred and replayed in the reference order** — sequences in
    /// input order, steps descending — by laying the per-step `dz` / input
    /// / previous-hidden rows out flat in exactly that visit order and
    /// accumulating each weight with a single
    /// [`Matrix::add_outer_slab`] GEMM, whose per-element `r`-ascending
    /// chain is the identical op sequence the per-sample
    /// `add_outer`/`axpy` calls produce.
    ///
    /// # Panics
    ///
    /// Panics if the cache does not match the batch or `grad_finals` has
    /// the wrong shape.
    pub fn backward_batch(
        &mut self,
        batch: &TimeMajorBatch,
        cache: &LstmBatchCache,
        grad_finals: &[Vec<f32>],
    ) -> TimeMajorBatch {
        let h_dim = self.hidden_dim;
        assert_eq!(
            grad_finals.len(),
            batch.num_sequences(),
            "lstm batched gradient count mismatch"
        );
        assert_eq!(
            cache.steps.len(),
            batch.max_len(),
            "lstm batched cache does not match batch"
        );
        let mut input_grads = batch.zeros_like(batch.dim());
        let max_len = batch.max_len();
        if max_len == 0 {
            return input_grads;
        }
        let top_active = batch.active_rows(0);

        // Phase 1 — the batched time recursion. dh/dc rows live at their
        // slot index; a slot joins the recursion at the step its sequence
        // ends (t = len - 1) with dh = grad_final and dc = 0.
        let mut dh = vec![0.0_f32; top_active * h_dim];
        let mut dc = vec![0.0_f32; top_active * h_dim];
        let mut dz_steps: Vec<Matrix> = (0..max_len)
            .map(|t| Matrix::zeros(batch.active_rows(t), 4 * h_dim))
            .collect();
        let mut prev_active = 0;
        for t in (0..max_len).rev() {
            let active = batch.active_rows(t);
            for slot in prev_active..active {
                let grad = &grad_finals[batch.sequence_for_slot(slot)];
                assert_eq!(grad.len(), h_dim, "lstm gradient dimension mismatch");
                dh[slot * h_dim..(slot + 1) * h_dim].copy_from_slice(grad);
                // dc rows start (and were left) zeroed.
            }
            prev_active = active;
            let step = &cache.steps[t];
            let dz_mat = &mut dz_steps[t];
            for slot in 0..active {
                let gates = step.gates.row(slot);
                let tanh_c = step.tanh_c.row(slot);
                let dh_row = &dh[slot * h_dim..(slot + 1) * h_dim];
                let dz = dz_mat.row_mut(slot);
                let dc_row = &mut dc[slot * h_dim..(slot + 1) * h_dim];
                for j in 0..h_dim {
                    let i_ = gates[j];
                    let f_ = gates[h_dim + j];
                    let g_ = gates[2 * h_dim + j];
                    let o_ = gates[3 * h_dim + j];
                    let tc = tanh_c[j];
                    let c_prev = if t == 0 {
                        0.0
                    } else {
                        cache.steps[t - 1].c.row(slot)[j]
                    };
                    // The per-sample expressions, verbatim.
                    let do_ = dh_row[j] * tc;
                    let dcj = dc_row[j] + dh_row[j] * o_ * (1.0 - tc * tc);
                    dz[j] = (dcj * g_) * i_ * (1.0 - i_);
                    dz[h_dim + j] = (dcj * c_prev) * f_ * (1.0 - f_);
                    dz[2 * h_dim + j] = (dcj * i_) * (1.0 - g_ * g_);
                    dz[3 * h_dim + j] = do_ * o_ * (1.0 - o_);
                    // dc flows to the previous step: dc_prev = dc * f.
                    dc_row[j] = dcj * f_;
                }
            }
            // Gradients flowing to this step's inputs and previous hidden
            // states: one blocked GEMM per destination over the step's dz
            // slab, straight into the time-major gradient storage and the
            // dh recursion buffer. Per row these are the dense
            // `k`-ascending chains of the per-sample transposed matvec.
            self.w_ih.value.matmul_slab_to(
                dz_mat.data(),
                active,
                4 * h_dim,
                input_grads.step_rows_mut(t),
            );
            self.w_hh.value.matmul_slab_to(
                dz_mat.data(),
                active,
                4 * h_dim,
                &mut dh[..active * h_dim],
            );
        }

        // Phase 2 — deferred parameter accumulation, replayed in the
        // per-sample reference order: sequences in input order, steps
        // descending. The per-step rows are laid out flat in exactly that
        // visit order, so one accumulating GEMM per parameter walks the
        // same per-element op chain as the per-sample `add_outer` calls.
        let total_rows: usize = (0..max_len).map(|t| batch.active_rows(t)).sum();
        let mut dz_flat = Vec::with_capacity(total_rows * 4 * h_dim);
        let mut x_flat = Vec::with_capacity(total_rows * batch.dim());
        let mut h_flat = Vec::with_capacity(total_rows * h_dim);
        for seq in 0..batch.num_sequences() {
            let slot = batch.slot_of(seq);
            let len = batch.slot_len(slot);
            for t in (0..len).rev() {
                dz_flat.extend_from_slice(dz_steps[t].row(slot));
                x_flat.extend_from_slice(batch.row(t, slot));
                if t == 0 {
                    // The step-0 previous hidden state is the zero vector.
                    h_flat.resize(h_flat.len() + h_dim, 0.0);
                } else {
                    h_flat.extend_from_slice(cache.steps[t - 1].h.row(slot));
                }
            }
        }
        self.w_ih.grad.add_outer_slab(&dz_flat, &x_flat, total_rows);
        self.w_hh.grad.add_outer_slab(&dz_flat, &h_flat, total_rows);
        let bias_row = self.bias.grad.row_mut(0);
        for dz in dz_flat.chunks_exact(4 * h_dim) {
            for (b, &d) in bias_row.iter_mut().zip(dz.iter()) {
                *b += d;
            }
        }
        input_grads
    }
}

impl Parameterized for Lstm {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.w_ih, &mut self.w_hh, &mut self.bias]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(11)
    }

    fn sample_sequence(len: usize, dim: usize) -> Vec<Vec<f32>> {
        (0..len)
            .map(|t| {
                (0..dim)
                    .map(|d| ((t * dim + d) as f32) * 0.1 - 0.3)
                    .collect()
            })
            .collect()
    }

    #[test]
    fn forward_shapes_and_empty_sequence() {
        let lstm = Lstm::new(3, 4, &mut rng());
        assert_eq!(lstm.input_dim(), 3);
        assert_eq!(lstm.hidden_dim(), 4);
        let (h, cache) = lstm.forward(&[]);
        assert_eq!(h, vec![0.0; 4]);
        assert!(cache.is_empty());
        let (h, cache) = lstm.forward(&sample_sequence(5, 3));
        assert_eq!(h.len(), 4);
        assert_eq!(cache.len(), 5);
        assert_eq!(cache.hidden_states().len(), 5);
        assert_eq!(cache.hidden_states()[4], h);
    }

    #[test]
    fn hidden_state_is_bounded_by_one() {
        // h = o * tanh(c) with o in (0,1) and |tanh| < 1.
        let lstm = Lstm::new(2, 6, &mut rng());
        let big_inputs: Vec<Vec<f32>> = (0..20).map(|_| vec![5.0, -5.0]).collect();
        let (h, _) = lstm.forward(&big_inputs);
        assert!(h.iter().all(|&v| v.abs() < 1.0));
    }

    #[test]
    fn forward_is_deterministic_and_order_sensitive() {
        let lstm = Lstm::new(3, 4, &mut rng());
        let seq = sample_sequence(4, 3);
        let (h1, _) = lstm.forward(&seq);
        let (h2, _) = lstm.forward(&seq);
        assert_eq!(h1, h2);
        let mut reversed = seq.clone();
        reversed.reverse();
        let (h3, _) = lstm.forward(&reversed);
        assert_ne!(h1, h3, "an LSTM should be sensitive to sequence order");
    }

    #[test]
    fn backward_returns_one_gradient_per_input() {
        let mut lstm = Lstm::new(3, 4, &mut rng());
        let seq = sample_sequence(5, 3);
        let (h, cache) = lstm.forward(&seq);
        let grads = lstm.backward(&cache, &vec![1.0; h.len()]);
        assert_eq!(grads.len(), 5);
        assert!(grads.iter().all(|g| g.len() == 3));
        // Backward on an empty cache is a no-op.
        let (_, empty_cache) = lstm.forward(&[]);
        let grads = lstm.backward(&empty_cache, &[0.0; 4]);
        assert!(grads.is_empty());
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        let lstm = Lstm::new(3, 5, &mut rng());
        // Mixed lengths, duplicates, and an empty sequence.
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            sample_sequence(4, 3),
            sample_sequence(7, 3),
            Vec::new(),
            sample_sequence(1, 3),
            sample_sequence(4, 3),
            sample_sequence(2, 3),
        ];
        let batched = lstm.forward_batch(&sequences);
        assert_eq!(batched.len(), sequences.len());
        for (seq, batch_h) in sequences.iter().zip(batched.iter()) {
            let (single_h, _) = lstm.forward(seq);
            assert_eq!(batch_h.len(), single_h.len());
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "length {}", seq.len());
            }
        }
    }

    #[test]
    fn trie_forward_is_bit_identical_to_single() {
        let lstm = Lstm::new(3, 5, &mut rng());
        // Sequences with shared prefixes, duplicates, and an empty one.
        let base = sample_sequence(6, 3);
        let mut shorter = base.clone();
        shorter.truncate(3);
        let mut diverging = base.clone();
        diverging[4] = vec![9.0, -9.0, 0.5];
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            base.clone(),
            shorter,
            diverging,
            Vec::new(),
            base.clone(),
            sample_sequence(2, 3),
        ];
        // Key steps by their position in a canonical list of distinct rows,
        // mirroring how callers intern inputs before building the trie.
        let mut distinct: Vec<&Vec<f32>> = Vec::new();
        let mut trie = SequenceTrie::new(3);
        for sequence in &sequences {
            trie.begin_sequence();
            for x in sequence {
                let key = match distinct.iter().position(|d| *d == x) {
                    Some(at) => at,
                    None => {
                        distinct.push(x);
                        distinct.len() - 1
                    }
                } as u64;
                if let Some(row) = trie.push_step(key) {
                    row.copy_from_slice(x);
                }
            }
        }
        assert!(trie.node_count() < sequences.iter().map(Vec::len).sum::<usize>());
        let batched = lstm.forward_batch_trie(&trie);
        assert_eq!(batched.len(), sequences.len());
        for (seq, batch_h) in sequences.iter().zip(batched.iter()) {
            let (single_h, _) = lstm.forward(seq);
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "length {}", seq.len());
            }
        }
        // An empty trie yields zero states without touching the weights.
        let empty = SequenceTrie::new(7); // wrong dim: fine while empty
        assert!(lstm.forward_batch_trie(&empty).is_empty());
    }

    #[test]
    fn batched_forward_handles_degenerate_batches() {
        let lstm = Lstm::new(2, 3, &mut rng());
        assert!(lstm.forward_batch(&[]).is_empty());
        let all_empty = lstm.forward_batch(&[Vec::new(), Vec::new()]);
        assert_eq!(all_empty, vec![vec![0.0; 3], vec![0.0; 3]]);
        let one = lstm.forward_batch(&[sample_sequence(5, 2)]);
        let (single, _) = lstm.forward(&sample_sequence(5, 2));
        assert_eq!(one[0], single);
    }

    /// Full numerical gradient check of the LSTM through time: parameters,
    /// and inputs, on a small configuration.
    #[test]
    fn numerical_gradient_check() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let seq = sample_sequence(4, 2);
        // Loss = 0.5 * ||h_T||^2 so dL/dh_T = h_T.
        let loss = |lstm: &Lstm, seq: &[Vec<f32>]| -> f32 {
            let (h, _) = lstm.forward(seq);
            h.iter().map(|&v| 0.5 * v * v).sum()
        };
        let (h, cache) = lstm.forward(&seq);
        lstm.zero_grad();
        let input_grads = lstm.backward(&cache, &h);
        let eps = 1e-2_f32;

        // Input gradients.
        for t in 0..seq.len() {
            for d in 0..2 {
                let mut sp = seq.clone();
                sp[t][d] += eps;
                let mut sm = seq.clone();
                sm[t][d] -= eps;
                let num = (loss(&lstm, &sp) - loss(&lstm, &sm)) / (2.0 * eps);
                let ana = input_grads[t][d];
                assert!(
                    (num - ana).abs() < 5e-3,
                    "dx[{t}][{d}]: numerical {num} vs analytic {ana}"
                );
            }
        }

        // A sample of parameter gradients from each matrix.
        let param_checks: Vec<(usize, usize, usize)> = vec![
            (0, 0, 0),
            (0, 5, 1),
            (1, 2, 2),
            (1, 11, 0),
            (2, 0, 3),
            (2, 0, 9),
        ];
        for (which, r, c) in param_checks {
            let orig = lstm.params_mut()[which].value.get(r, c);
            lstm.params_mut()[which].value.set(r, c, orig + eps);
            let lp = loss(&lstm, &seq);
            lstm.params_mut()[which].value.set(r, c, orig - eps);
            let lm = loss(&lstm, &seq);
            lstm.params_mut()[which].value.set(r, c, orig);
            let ana = lstm.params_mut()[which].grad.get(r, c);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-3,
                "param {which} [{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    fn time_major(sequences: &[Vec<Vec<f32>>], dim: usize) -> TimeMajorBatch {
        let rows: usize = sequences.iter().map(Vec::len).sum();
        let mut batch = SequenceBatch::with_capacity(dim, rows, sequences.len());
        for sequence in sequences {
            batch.begin_sequence();
            for x in sequence {
                batch.push_row().copy_from_slice(x);
            }
        }
        TimeMajorBatch::from_batch(&batch)
    }

    #[test]
    fn batched_train_forward_is_bit_identical_to_single() {
        let lstm = Lstm::new(3, 5, &mut rng());
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            sample_sequence(4, 3),
            sample_sequence(7, 3),
            Vec::new(),
            sample_sequence(1, 3),
            sample_sequence(4, 3),
        ];
        let tm = time_major(&sequences, 3);
        let (finals, cache) = lstm.forward_batch_train(&tm);
        assert_eq!(cache.len(), 7);
        assert!(!cache.is_empty());
        for (seq, batch_h) in sequences.iter().zip(finals.iter()) {
            let (single_h, _) = lstm.forward(seq);
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "length {}", seq.len());
            }
        }
        // Degenerate batch: all sequences empty.
        let (finals, cache) = lstm.forward_batch_train(&time_major(&[Vec::new()], 3));
        assert_eq!(finals, vec![vec![0.0; 5]]);
        assert!(cache.is_empty());
    }

    #[test]
    fn batched_backward_is_bit_identical_to_per_sample() {
        let init = Lstm::new(3, 5, &mut rng());
        let mut reference = init.clone();
        let mut batched = init;
        let sequences: Vec<Vec<Vec<f32>>> = vec![
            sample_sequence(4, 3),
            sample_sequence(7, 3),
            Vec::new(),
            sample_sequence(1, 3),
            sample_sequence(4, 3),
            sample_sequence(2, 3),
        ];
        let tm = time_major(&sequences, 3);
        let (finals, cache) = batched.forward_batch_train(&tm);
        // dL/dh = h (loss 0.5||h||^2 per sequence).
        let input_grads = batched.backward_batch(&tm, &cache, &finals);

        for (s, seq) in sequences.iter().enumerate() {
            let (h, sample_cache) = reference.forward(seq);
            let ref_grads = reference.backward(&sample_cache, &h);
            let slot = tm.slot_of(s);
            for (t, ref_grad) in ref_grads.iter().enumerate() {
                for (a, b) in input_grads.row(t, slot).iter().zip(ref_grad.iter()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "sequence {s} step {t}");
                }
            }
        }
        for (pr, pb) in reference
            .params_mut()
            .iter()
            .zip(batched.params_mut().iter())
        {
            for (a, b) in pb.grad.data().iter().zip(pr.grad.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "parameter gradients");
            }
        }
    }

    #[test]
    fn batched_backward_numerical_gradient_check() {
        let mut lstm = Lstm::new(2, 3, &mut rng());
        let sequences: Vec<Vec<Vec<f32>>> =
            vec![sample_sequence(3, 2), sample_sequence(1, 2), Vec::new()];
        let tm = time_major(&sequences, 2);
        // Loss = sum over sequences of 0.5 * ||h_final||^2.
        let loss = |lstm: &Lstm, sequences: &[Vec<Vec<f32>>]| -> f32 {
            sequences
                .iter()
                .map(|seq| {
                    let (h, _) = lstm.forward(seq);
                    h.iter().map(|&v| 0.5 * v * v).sum::<f32>()
                })
                .sum()
        };
        let (finals, cache) = lstm.forward_batch_train(&tm);
        lstm.zero_grad();
        let input_grads = lstm.backward_batch(&tm, &cache, &finals);
        let eps = 1e-2_f32;

        for (s, seq) in sequences.iter().enumerate() {
            let slot = tm.slot_of(s);
            for t in 0..seq.len() {
                for d in 0..2 {
                    let mut sp = sequences.clone();
                    sp[s][t][d] += eps;
                    let mut sm = sequences.clone();
                    sm[s][t][d] -= eps;
                    let num = (loss(&lstm, &sp) - loss(&lstm, &sm)) / (2.0 * eps);
                    let ana = input_grads.row(t, slot)[d];
                    assert!(
                        (num - ana).abs() < 5e-3,
                        "dx[{s}][{t}][{d}]: numerical {num} vs analytic {ana}"
                    );
                }
            }
        }
        let param_checks: Vec<(usize, usize, usize)> =
            vec![(0, 0, 0), (0, 5, 1), (1, 2, 2), (1, 11, 0), (2, 0, 3)];
        for (which, r, c) in param_checks {
            let orig = lstm.params_mut()[which].value.get(r, c);
            lstm.params_mut()[which].value.set(r, c, orig + eps);
            lstm.params_mut()[which].invalidate_transpose();
            let lp = loss(&lstm, &sequences);
            lstm.params_mut()[which].value.set(r, c, orig - eps);
            lstm.params_mut()[which].invalidate_transpose();
            let lm = loss(&lstm, &sequences);
            lstm.params_mut()[which].value.set(r, c, orig);
            lstm.params_mut()[which].invalidate_transpose();
            let ana = lstm.params_mut()[which].grad.get(r, c);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - ana).abs() < 5e-3,
                "param {which} [{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn serde_round_trip() {
        let lstm = Lstm::new(3, 2, &mut rng());
        let json = serde_json::to_string(&lstm).unwrap();
        let back: Lstm = serde_json::from_str(&json).unwrap();
        assert_eq!(back, lstm);
    }
}
