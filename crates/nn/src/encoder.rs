//! Sequence encoder: token embedding followed by an LSTM whose final hidden
//! state summarizes the sequence.
//!
//! This is the basic building block of the paper's fitness-function
//! architecture (Figure 2): inputs, outputs and execution-trace values are
//! token sequences that are embedded and encoded, and the resulting vectors
//! are combined by further LSTM layers.

use crate::batch::{SequenceBatch, SequenceTrie, TimeMajorBatch};
use crate::embedding::Embedding;
use crate::error::NnError;
use crate::lstm::{Lstm, LstmBatchCache, LstmCache};
use crate::param::{Param, Parameterized};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Embedding + LSTM over a token sequence, producing a fixed-size vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceEncoder {
    embedding: Embedding,
    lstm: Lstm,
}

/// Cache of a [`SequenceEncoder::forward`] pass.
#[derive(Debug, Clone, PartialEq)]
pub struct SequenceEncoderCache {
    tokens: Vec<usize>,
    lstm_cache: LstmCache,
}

/// Cache of a [`SequenceEncoder::forward_batch_train`] pass.
#[derive(Debug, Clone)]
pub struct SequenceEncoderBatchCache {
    tokens: Vec<Vec<usize>>,
    batch: TimeMajorBatch,
    lstm_cache: LstmBatchCache,
}

impl SequenceEncoder {
    /// Creates an encoder with the given vocabulary size, embedding dimension
    /// and hidden dimension.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        vocab_size: usize,
        embed_dim: usize,
        hidden_dim: usize,
        rng: &mut R,
    ) -> Self {
        SequenceEncoder {
            embedding: Embedding::new(vocab_size, embed_dim, rng),
            lstm: Lstm::new(embed_dim, hidden_dim, rng),
        }
    }

    /// Output (hidden) dimension.
    #[must_use]
    pub fn hidden_dim(&self) -> usize {
        self.lstm.hidden_dim()
    }

    /// Vocabulary size accepted by the encoder.
    #[must_use]
    pub fn vocab_size(&self) -> usize {
        self.embedding.vocab_size()
    }

    /// Encodes a token sequence into the LSTM's final hidden state.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if a token is outside the
    /// vocabulary.
    pub fn forward(&self, tokens: &[usize]) -> Result<(Vec<f32>, SequenceEncoderCache), NnError> {
        let embedded = self.embedding.forward(tokens)?;
        let (hidden, lstm_cache) = self.lstm.forward(&embedded);
        Ok((
            hidden,
            SequenceEncoderCache {
                tokens: tokens.to_vec(),
                lstm_cache,
            },
        ))
    }

    /// Batched inference over many token sequences: embeds every sequence
    /// into a prefix-sharing [`SequenceTrie`] (sequences opening with the
    /// same tokens share their LSTM steps — trace values in a GA population
    /// overlap heavily) and runs the LSTM over the trie (see
    /// [`Lstm::forward_batch_trie`]). Returns one final hidden state per
    /// sequence, in input order, bit-identical to per-sequence
    /// [`SequenceEncoder::forward`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token of any sequence is
    /// outside the vocabulary. (A token landing on an already-shared trie
    /// node was validated when the node was created.)
    pub fn forward_batch(&self, sequences: &[&[usize]]) -> Result<Vec<Vec<f32>>, NnError> {
        let mut trie = SequenceTrie::new(self.embedding.dim());
        for tokens in sequences {
            trie.begin_sequence();
            for &token in *tokens {
                if let Some(row) = trie.push_step(token as u64) {
                    row.copy_from_slice(self.embedding.row(token)?);
                }
            }
        }
        Ok(self.lstm.forward_batch_trie(&trie))
    }

    /// Backpropagates a gradient on the encoder output, accumulating
    /// parameter gradients in the LSTM and the embedding table.
    pub fn backward(&mut self, cache: &SequenceEncoderCache, grad_hidden: &[f32]) {
        let input_grads = self.lstm.backward(&cache.lstm_cache, grad_hidden);
        self.embedding.backward(&cache.tokens, &input_grads);
    }

    /// Batched training forward pass over many token sequences: embeds every
    /// sequence into a time-major batch and runs the batched LSTM training
    /// forward. Returns one final hidden state per sequence, in input order,
    /// bit-identical to per-sequence [`SequenceEncoder::forward`] calls.
    ///
    /// (Unlike [`SequenceEncoder::forward_batch`] this keeps every step —
    /// no prefix sharing — because training needs one gradient contribution
    /// per token *occurrence*.)
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token of any sequence is
    /// outside the vocabulary.
    pub fn forward_batch_train(
        &self,
        sequences: &[&[usize]],
    ) -> Result<(Vec<Vec<f32>>, SequenceEncoderBatchCache), NnError> {
        let rows: usize = sequences.iter().map(|s| s.len()).sum();
        let mut flat = SequenceBatch::with_capacity(self.embedding.dim(), rows, sequences.len());
        for tokens in sequences {
            flat.begin_sequence();
            for &token in *tokens {
                flat.push_row().copy_from_slice(self.embedding.row(token)?);
            }
        }
        let batch = TimeMajorBatch::from_batch(&flat);
        let (finals, lstm_cache) = self.lstm.forward_batch_train(&batch);
        Ok((
            finals,
            SequenceEncoderBatchCache {
                tokens: sequences.iter().map(|s| s.to_vec()).collect(),
                batch,
                lstm_cache,
            },
        ))
    }

    /// Batched backward pass: `grad_hidden[s]` is the gradient on sequence
    /// `s`'s encoding. Accumulates parameter gradients in the LSTM and the
    /// embedding table, **bit-identical** to looping
    /// [`SequenceEncoder::backward`] over the sequences in input order: the
    /// LSTM's deferred sweep replays its parameter accumulation in exactly
    /// that order (see [`Lstm::backward_batch`]), and the embedding scatter
    /// then walks sequences in input order, tokens ascending — the
    /// per-sample order.
    pub fn backward_batch(&mut self, cache: &SequenceEncoderBatchCache, grad_hidden: &[Vec<f32>]) {
        let input_grads = self
            .lstm
            .backward_batch(&cache.batch, &cache.lstm_cache, grad_hidden);
        for (seq, tokens) in cache.tokens.iter().enumerate() {
            let slot = cache.batch.slot_of(seq);
            for (t, &token) in tokens.iter().enumerate() {
                self.embedding.backward_row(token, input_grads.row(t, slot));
            }
        }
    }
}

impl Parameterized for SequenceEncoder {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.embedding.params_mut();
        params.extend(self.lstm.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn encoder() -> SequenceEncoder {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        SequenceEncoder::new(10, 4, 6, &mut rng)
    }

    #[test]
    fn forward_produces_hidden_vector() {
        let enc = encoder();
        assert_eq!(enc.hidden_dim(), 6);
        assert_eq!(enc.vocab_size(), 10);
        let (h, cache) = enc.forward(&[1, 2, 3, 4]).unwrap();
        assert_eq!(h.len(), 6);
        assert_eq!(cache.tokens, vec![1, 2, 3, 4]);
        assert!(enc.forward(&[11]).is_err());
    }

    #[test]
    fn empty_sequence_encodes_to_zero() {
        let enc = encoder();
        let (h, _) = enc.forward(&[]).unwrap();
        assert_eq!(h, vec![0.0; 6]);
    }

    #[test]
    fn different_sequences_give_different_encodings() {
        let enc = encoder();
        let (a, _) = enc.forward(&[1, 2, 3]).unwrap();
        let (b, _) = enc.forward(&[3, 2, 1]).unwrap();
        let (c, _) = enc.forward(&[1, 2, 3]).unwrap();
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn batched_forward_is_bit_identical_to_single() {
        let enc = encoder();
        let sequences: Vec<&[usize]> = vec![&[1, 2, 3, 4], &[], &[9, 0], &[1, 2, 3, 4], &[5]];
        let batched = enc.forward_batch(&sequences).unwrap();
        assert_eq!(batched.len(), sequences.len());
        for (tokens, batch_h) in sequences.iter().zip(batched.iter()) {
            let (single_h, _) = enc.forward(tokens).unwrap();
            for (a, b) in batch_h.iter().zip(single_h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // Out-of-vocabulary tokens fail the whole batch.
        assert!(enc.forward_batch(&[&[1][..], &[10][..]]).is_err());
    }

    #[test]
    fn backward_accumulates_gradients_in_all_parameters() {
        let mut enc = encoder();
        let (h, cache) = enc.forward(&[1, 2, 3]).unwrap();
        enc.zero_grad();
        enc.backward(&cache, &vec![1.0; h.len()]);
        let grad_norm = enc.grad_norm();
        assert!(grad_norm > 0.0, "some gradient must flow");
        // The embedding rows of unused tokens must stay zero.
        let embedding_grad = &enc.params_mut()[0].grad;
        assert!(embedding_grad.row(1).iter().any(|&g| g != 0.0));
        assert!(embedding_grad.row(7).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn batched_train_path_is_bit_identical_to_per_sample() {
        let mut enc = encoder();
        // Mixed lengths, an empty sequence, and a duplicate to exercise the
        // length-sorted slot mapping and the per-occurrence embedding scatter.
        let sequences: Vec<&[usize]> = vec![&[1, 2, 3, 4], &[], &[9, 0], &[1, 2, 3, 4], &[5, 5, 5]];

        let (batched_finals, cache) = enc.forward_batch_train(&sequences).unwrap();
        let grad_hidden: Vec<Vec<f32>> = (0..sequences.len())
            .map(|s| {
                (0..6)
                    .map(|j| 0.05 * (s as f32 + 1.0) - 0.01 * j as f32)
                    .collect()
            })
            .collect();

        // Reference: per-sample forward/backward in input order.
        let mut reference = enc.clone();
        reference.zero_grad();
        for (s, (tokens, g)) in sequences.iter().zip(grad_hidden.iter()).enumerate() {
            let (h, sample_cache) = reference.forward(tokens).unwrap();
            for (a, b) in batched_finals[s].iter().zip(h.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "final of sequence {s}");
            }
            reference.backward(&sample_cache, g);
        }

        enc.zero_grad();
        enc.backward_batch(&cache, &grad_hidden);

        for (p_batched, p_ref) in enc.params_mut().iter().zip(reference.params_mut().iter()) {
            for (a, b) in p_batched.grad.data().iter().zip(p_ref.grad.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "parameter gradient mismatch");
            }
        }

        // Out-of-vocabulary tokens fail the whole batch.
        assert!(enc.forward_batch_train(&[&[1][..], &[10][..]]).is_err());
    }

    #[test]
    fn parameter_count_matches_components() {
        let mut enc = encoder();
        // embedding 10*4 + lstm (4*6)*4 rows x (4 in) + (24 x 6) + bias 24
        let expected = 10 * 4 + 24 * 4 + 24 * 6 + 24;
        assert_eq!(enc.parameter_count(), expected);
    }

    #[test]
    fn serde_round_trip() {
        let enc = encoder();
        let json = serde_json::to_string(&enc).unwrap();
        let back: SequenceEncoder = serde_json::from_str(&json).unwrap();
        assert_eq!(back, enc);
    }
}
