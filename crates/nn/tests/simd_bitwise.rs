//! Bit-identity certification of the `netsyn_nn::simd` kernels against the
//! host libm and the scalar reference paths.
//!
//! These are the fast CI-grade checks: exhaustive boundary sets around
//! every branch threshold of the ported `expf`/`expm1f`/`tanhf`, denormals
//! and specials, dense gate-typical ranges, and more than a million seeded
//! random samples. The complete certificate — every one of the 2^32 `f32`
//! bit patterns through both the scalar ports and the lane kernels — is
//! `cargo run --release -p netsyn-bench --bin simd_validate`.

use netsyn_nn::simd::{self, scalar, F32x8, LANES};
use netsyn_nn::Matrix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Branch thresholds of the ported kernels, in bits: each is probed at the
/// threshold itself and one ulp to either side, positive and negative.
const THRESHOLD_BITS: [u32; 12] = [
    0x3300_0000, // 2^-25 (expm1 tiny cut)
    0x2400_0000, // 2^-55 (tanh tiny cut)
    0x3EB1_7218, // 0.5*ln2 (reduction cut)
    0x3F85_1592, // 1.5*ln2 (k=±1 vs general-k cut)
    0x3F80_0000, // 1.0 (tanh formula split)
    0x41B0_0000, // 22.0 (tanh saturation)
    0x4195_B844, // 27*ln2 (expm1 saturation)
    0x42B1_7180, // expm1 overflow threshold
    0x42B1_7217, // exp overflow threshold
    0x42B0_0000, // 88.0 (exp special-path entry)
    0xC2CF_F1B4, // exp underflow-to-zero threshold (sign-included)
    0xC2CE_8ECF, // exp smallest-subnormal shortcut threshold
];

fn boundary_values() -> Vec<f32> {
    let mut values = vec![
        0.0,
        -0.0,
        f32::INFINITY,
        f32::NEG_INFINITY,
        f32::NAN,
        -f32::NAN,
        f32::MAX,
        f32::MIN,
        f32::MIN_POSITIVE,
        -f32::MIN_POSITIVE,
        f32::from_bits(1), // smallest subnormal
        f32::from_bits(0x8000_0001),
        f32::from_bits(0x007F_FFFF), // largest subnormal
        f32::from_bits(0x807F_FFFF),
    ];
    for base in THRESHOLD_BITS {
        for delta in [-1i32, 0, 1] {
            let bits = base.wrapping_add(delta as u32);
            values.push(f32::from_bits(bits));
            values.push(f32::from_bits(bits ^ 0x8000_0000));
        }
    }
    // Dense sweep of the gate-typical range (LSTM pre-activations and cell
    // states): every 1/1024 step in [-32, 32].
    for i in -32 * 1024..=32 * 1024 {
        values.push(i as f32 / 1024.0);
    }
    // Denormal sweep.
    for bits in (0..0x0080_0000u32).step_by(0x1_0000) {
        values.push(f32::from_bits(bits));
        values.push(f32::from_bits(bits | 0x8000_0000));
    }
    values
}

fn seeded_samples(n: usize) -> Vec<f32> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51AD_BEEF);
    let mut values = Vec::with_capacity(n);
    for i in 0..n {
        // Alternate between full-bit-space samples (hitting specials,
        // denormals and huge magnitudes) and gate-range samples.
        if i % 2 == 0 {
            values.push(f32::from_bits(rng.gen::<u32>()));
        } else {
            values.push(rng.gen_range(-30.0f32..30.0));
        }
    }
    values
}

fn assert_matches(
    name: &str,
    values: &[f32],
    lane_fn: impl Fn(F32x8) -> F32x8,
    scalar_fn: impl Fn(f32) -> f32,
    libm_fn: impl Fn(f32) -> f32,
) {
    for chunk in values.chunks(LANES) {
        let mut lanes = [0.0f32; LANES];
        lanes[..chunk.len()].copy_from_slice(chunk);
        let out = lane_fn(F32x8(lanes));
        for (l, &x) in chunk.iter().enumerate() {
            let expected = libm_fn(x);
            let via_scalar = scalar_fn(x);
            let via_lanes = out.0[l];
            if expected.is_nan() {
                assert!(via_scalar.is_nan() && via_lanes.is_nan(), "{name}({x:e})");
                continue;
            }
            assert_eq!(
                via_scalar.to_bits(),
                expected.to_bits(),
                "{name} scalar port mismatch at x={x:e} (0x{:08x})",
                x.to_bits()
            );
            assert_eq!(
                via_lanes.to_bits(),
                expected.to_bits(),
                "{name} lane kernel mismatch at x={x:e} (0x{:08x})",
                x.to_bits()
            );
        }
    }
}

#[test]
fn exp_matches_libm_on_boundaries_and_samples() {
    let mut values = boundary_values();
    values.extend(seeded_samples(400_000));
    assert_matches("exp", &values, simd::vexp, scalar::exp, f32::exp);
}

#[test]
fn expm1_matches_libm_on_boundaries_and_samples() {
    let mut values = boundary_values();
    values.extend(seeded_samples(400_000));
    assert_matches("expm1", &values, simd::vexpm1, scalar::expm1, f32::exp_m1);
}

#[test]
fn tanh_matches_libm_on_boundaries_and_samples() {
    let mut values = boundary_values();
    values.extend(seeded_samples(400_000));
    assert_matches("tanh", &values, simd::vtanh, scalar::tanh, f32::tanh);
}

#[test]
fn sigmoid_matches_reference_on_boundaries_and_samples() {
    let mut values = boundary_values();
    values.extend(seeded_samples(200_000));
    assert_matches("sigmoid", &values, simd::vsigmoid, scalar::sigmoid, |x| {
        1.0 / (1.0 + (-x).exp())
    });
}

#[test]
fn slice_kernels_match_scalar_libm_loops() {
    // The dispatching slice APIs (whichever mode this process resolved to)
    // must equal the plain libm loops bit for bit, including ragged tails.
    let values = seeded_samples(100_003);
    let mut exp_buf = values.clone();
    simd::vexp_slice(&mut exp_buf);
    let mut tanh_buf = values.clone();
    simd::vtanh_slice(&mut tanh_buf);
    let mut sig_buf = values.clone();
    simd::vsigmoid_slice(&mut sig_buf);
    for (i, &x) in values.iter().enumerate() {
        assert_eq!(exp_buf[i].to_bits(), x.exp().to_bits(), "exp at {i}");
        assert_eq!(tanh_buf[i].to_bits(), x.tanh().to_bits(), "tanh at {i}");
        let sig = 1.0 / (1.0 + (-x).exp());
        assert_eq!(sig_buf[i].to_bits(), sig.to_bits(), "sigmoid at {i}");
    }
}

#[test]
fn lane_matmul_is_bit_identical_to_naive_across_tile_shapes() {
    // Shapes exercising every kernel path: the 4-tile stripe (n >= 32),
    // the single-tile loop (8 <= n < 32), the scalar column tail
    // (n % 8 != 0), sub-lane widths, and the parallel row split.
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    for &(m, k, n) in &[
        (1, 1, 1),
        (5, 3, 7),
        (4, 16, 8),
        (9, 31, 20),
        (7, 40, 37),
        (16, 64, 96),
        (33, 100, 41),
        (128, 48, 130),
        (130, 70, 190),
    ] {
        let a = Matrix::uniform(m, k, 1.0, &mut rng);
        let b = Matrix::uniform(k, n, 1.0, &mut rng);
        let lane = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in lane.data().iter().zip(naive.data().iter()) {
            assert_eq!(x.to_bits(), y.to_bits(), "shape {m}x{k}x{n}");
        }
    }
}

#[test]
fn simd_mode_is_resolved_and_consistent() {
    // Whatever mode the environment picked, repeated queries agree and the
    // dispatch-level guarantees above already proved bit-identity.
    let mode = simd::simd_mode();
    assert_eq!(mode, simd::simd_mode());
    if std::env::var("NETSYN_SIMD")
        .map(|v| v == "0")
        .unwrap_or(false)
    {
        assert_eq!(mode, simd::SimdMode::DisabledByEnv);
        assert!(!simd::transcendental_lanes_active());
    }
}
