//! Loom model suite for the `Param` transpose hazard cell.
//!
//! Invariant checked: **no use-after-free in the hazard cell** — a reader
//! that grabbed the published transpose pointer always holds a valid
//! `Arc`, because readers announce themselves (`readers.fetch_add`)
//! *before* loading the pointer and the retiring writer spin-drains the
//! reader count before dropping the old buffer. Every handle a reader
//! obtains — including across a concurrent `invalidate_transpose` — must
//! be a correct transpose of the parameter value.
//!
//! The seeded-bug test rebuilds the cell as a safe mirror (ids in a table
//! instead of raw pointers, so the bug manifests as a failed lookup rather
//! than UB) and removes the reader drain; the checker must catch the
//! reclaimed-while-referenced state.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netsyn-nn --test
//! param_model --release`.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::Mutex;
use netsyn_nn::{Matrix, Param};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `f` under the model checker expecting a failure; returns the
/// panic message.
fn catches(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(f);
    }));
    let payload = result.expect_err("model checker should have found a failure");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

fn assert_is_transpose(value: &Matrix, t: &Matrix) {
    assert_eq!(t.rows(), value.cols());
    assert_eq!(t.cols(), value.rows());
    for r in 0..value.rows() {
        for c in 0..value.cols() {
            assert_eq!(t.get(c, r), value.get(r, c), "transpose mismatch");
        }
    }
}

/// A reader repeatedly takes transpose handles while another thread
/// invalidates the cache. Every handle must be a valid transpose and no
/// interleaving may deadlock or livelock (the writer's spin-drain and the
/// reader's retry loop both terminate under the model's yield semantics).
#[test]
fn reader_handles_stay_valid_across_invalidation() {
    let mut builder = Builder::new();
    // The retry/spin loops make the full space large; a preemption bound
    // of 2 still drives the reader through mid-retirement windows.
    builder.preemption_bound = Some(2);
    let report = builder.check(|| {
        let param = Arc::new(Param::new(Matrix::from_vec(1, 2, vec![1.0, 2.0])));
        let writer = {
            let param = Arc::clone(&param);
            loom::thread::spawn(move || {
                param.invalidate_transpose();
            })
        };
        let first = param.transposed();
        assert_is_transpose(&param.value, &first);
        let second = param.transposed();
        assert_is_transpose(&param.value, &second);
        writer.join().unwrap();
        let after = param.transposed();
        assert_is_transpose(&param.value, &after);
    });
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// Safe mirror of the hazard cell: the "pointer" is an id into a table, so
/// reclaiming a buffer still referenced by a reader shows up as a failed
/// table lookup instead of undefined behavior. `drain_readers` is the
/// load-bearing step under test.
struct MirrorCell {
    published: AtomicUsize,
    readers: AtomicUsize,
    table: Mutex<HashMap<usize, Arc<usize>>>,
}

impl MirrorCell {
    fn new(id: usize) -> Self {
        let mut table = HashMap::new();
        table.insert(id, Arc::new(id));
        MirrorCell {
            published: AtomicUsize::new(id),
            readers: AtomicUsize::new(0),
            table: Mutex::new(table),
        }
    }

    /// Reader protocol: announce, load, resolve, release — exactly the
    /// shape of `TransposeCell::get`.
    fn get(&self) -> Option<Arc<usize>> {
        self.readers.fetch_add(1, Ordering::SeqCst);
        let id = self.published.load(Ordering::SeqCst);
        let resolved = self.table.lock().unwrap().get(&id).map(Arc::clone);
        self.readers.fetch_sub(1, Ordering::SeqCst);
        resolved
    }

    /// Writer protocol with the drain: swap in the new id, wait for the
    /// reader count to hit zero, then reclaim the old buffer.
    fn retire_correct(&self, new_id: usize) {
        self.table.lock().unwrap().insert(new_id, Arc::new(new_id));
        let old = self.published.swap(new_id, Ordering::SeqCst);
        while self.readers.load(Ordering::SeqCst) != 0 {
            loom::thread::yield_now();
        }
        self.table.lock().unwrap().remove(&old);
    }

    /// BUG (seeded): reclaim immediately after the swap, without draining
    /// readers. A reader that loaded the old id before the swap now
    /// resolves against a reclaimed entry.
    fn retire_buggy(&self, new_id: usize) {
        self.table.lock().unwrap().insert(new_id, Arc::new(new_id));
        let old = self.published.swap(new_id, Ordering::SeqCst);
        self.table.lock().unwrap().remove(&old);
    }
}

/// With the drain in place, a racing reader always resolves its id: the
/// writer cannot reclaim a buffer while the reader is inside the protocol.
#[test]
fn drained_retirement_never_reclaims_under_a_reader() {
    let report = Builder::new().check(|| {
        let cell = Arc::new(MirrorCell::new(1));
        let writer = {
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || {
                cell.retire_correct(2);
            })
        };
        let handle = cell.get();
        assert!(
            handle.is_some(),
            "reader inside the protocol must never observe a reclaimed buffer"
        );
        writer.join().unwrap();
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// Seeded bug: retirement without the reader drain. The model checker
/// must find the interleaving where the reader's loaded id is reclaimed
/// before resolution — the use-after-free, surfaced as a failed lookup.
#[test]
fn finds_use_after_free_when_retirement_skips_reader_drain() {
    let message = catches(|| {
        let cell = Arc::new(MirrorCell::new(1));
        let writer = {
            let cell = Arc::clone(&cell);
            loom::thread::spawn(move || {
                cell.retire_buggy(2);
            })
        };
        let handle = cell.get();
        assert!(
            handle.is_some(),
            "reader inside the protocol must never observe a reclaimed buffer"
        );
        writer.join().unwrap();
    });
    assert!(
        message.contains("reclaimed buffer"),
        "expected the use-after-free assertion, got: {message}"
    );
}
