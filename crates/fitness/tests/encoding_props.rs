//! Property-based invariants of the token encoding (`EncodingConfig`):
//! clamping symmetry of the integer encoding, truncation of value
//! encodings to `max_list_tokens`, and disjointness of the separator token
//! from the value vocabulary.

use netsyn_dsl::{Function, IoSpec, Program, Value};
use netsyn_fitness::encoding::{encode_candidate, encode_spec};
use netsyn_fitness::EncodingConfig;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = EncodingConfig> {
    (1_i64..=512, 0_usize..=32).prop_map(|(max_abs_value, max_list_tokens)| EncodingConfig {
        max_abs_value,
        max_list_tokens,
        ..EncodingConfig::new()
    })
}

fn arb_int() -> impl Strategy<Value = i64> {
    -1_000_000_i64..=1_000_000
}

fn arb_list() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(-1_000_i64..=1_000, 0..=48)
}

proptest! {
    /// `encode_int` is symmetric around the vocabulary center: negating the
    /// input mirrors the token, and clamping saturates exactly at the ends
    /// of the value range.
    #[test]
    fn encode_int_clamping_is_symmetric(config in arb_config(), v in arb_int()) {
        let token = config.encode_int(v);
        let mirrored = config.encode_int(-v);
        prop_assert_eq!(token + mirrored, 2 * config.max_abs_value as usize);
        // Clamping: anything at or beyond the range hits the extremes.
        prop_assert_eq!(
            config.encode_int(config.max_abs_value.saturating_add(v.abs())),
            2 * config.max_abs_value as usize
        );
        prop_assert_eq!(
            config.encode_int((-config.max_abs_value).saturating_sub(v.abs())),
            0
        );
        // Idempotence: re-encoding the clamped value gives the same token.
        let clamped = v.clamp(-config.max_abs_value, config.max_abs_value);
        prop_assert_eq!(config.encode_int(clamped), token);
    }

    /// `encode_value` truncates every value to at most `max_list_tokens`
    /// tokens and preserves untruncated prefixes.
    #[test]
    fn encode_value_truncates_to_max_list_tokens(config in arb_config(), xs in arb_list()) {
        let value = Value::List(xs.clone());
        let tokens = config.encode_value(&value);
        prop_assert_eq!(tokens.len(), xs.len().min(config.max_list_tokens));
        for (&token, &x) in tokens.iter().zip(xs.iter()) {
            prop_assert_eq!(token, config.encode_int(x));
        }
        // Integers are one-token sequences under the same limit.
        let int_tokens = config.encode_value(&Value::Int(7));
        prop_assert_eq!(int_tokens.len(), 1_usize.min(config.max_list_tokens));
    }

    /// The separator token never collides with any encodable value token,
    /// and every emitted token fits the vocabulary.
    #[test]
    fn separator_is_disjoint_from_value_tokens(config in arb_config(), v in arb_int()) {
        let separator = config.separator_token();
        prop_assert!(separator < config.value_vocab_size());
        prop_assert_ne!(config.encode_int(v), separator);
        // Which is exactly why spec encodings can never conflate a value
        // with an input/output boundary.
        prop_assert_eq!(separator, config.value_vocab_size() - 1);
    }

    /// Every token of a full spec + candidate encoding is inside the
    /// value vocabulary (the network's embedding table bound), and
    /// trace-step function indices are inside the function vocabulary.
    #[test]
    fn full_encodings_stay_in_vocabulary(config in arb_config(), xs in arb_list()) {
        let program = Program::new(vec![Function::Sort, Function::Reverse]);
        let spec = IoSpec::from_program(&program, &[vec![Value::List(xs)]]);
        let spec_encoding = encode_spec(&config, &spec);
        for sequence in spec_encoding.io_tokens() {
            for &token in sequence {
                prop_assert!(token < config.value_vocab_size());
            }
        }
        let candidate = encode_candidate(&config, &spec, &program);
        for trace in candidate.traces() {
            for step in trace {
                prop_assert!(step.function < config.function_vocab_size());
                for &token in &step.value_tokens {
                    prop_assert!(token < config.value_vocab_size());
                    prop_assert_ne!(token, config.separator_token());
                }
            }
        }
    }
}
