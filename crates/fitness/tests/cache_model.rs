//! Loom model suite for the fitness-cache claim/publish/wait protocol and
//! the striped trace-encoding cache.
//!
//! Invariant checked: **exactly-once compute under claims** — when several
//! threads race to score the same candidate, exactly one wins the claim
//! and computes; the others either hit the published score or wait and
//! receive it. Abandoned claims (worker panic) are released so another
//! thread re-claims — a claim is never leaked. The trace-encoding cache's
//! first-write-wins publish must converge on one canonical `Arc` per key.
//!
//! Each seeded-bug test rebuilds the protocol shape with its load-bearing
//! step removed and asserts the checker reports the resulting failure.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p netsyn-fitness --test
//! cache_model --release`.
#![cfg(loom)]

use loom::model::Builder;
use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Condvar, Mutex};
use netsyn_dsl::{Function, Program};
use netsyn_fitness::{Claim, ClaimGuard, SpecScores};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn program() -> Program {
    Program::new(vec![Function::ALL[0], Function::ALL[1]])
}

/// Runs `f` under the model checker expecting a failure; returns the
/// panic message.
fn catches(f: impl Fn() + Send + Sync + 'static) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| {
        Builder::new().check(f);
    }));
    let payload = result.expect_err("model checker should have found a failure");
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

/// Two threads race `claim` on the same program: exactly one computes, the
/// other waits and observes the published score. No interleaving computes
/// twice or strands the waiter.
#[test]
fn claim_race_computes_exactly_once() {
    let report = Builder::new().check(|| {
        let scores = Arc::new(SpecScores::default());
        let computes = Arc::new(AtomicUsize::new(0));
        let racer = {
            let scores = Arc::clone(&scores);
            let computes = Arc::clone(&computes);
            loom::thread::spawn(move || {
                let candidate = program();
                match scores.claim(&candidate) {
                    Claim::Claimed => {
                        computes.fetch_add(1, Ordering::SeqCst);
                        scores.publish(candidate, 0.5);
                        0.5
                    }
                    Claim::Hit(score) => score,
                    Claim::Pending => scores.wait(&candidate).expect("claim never abandoned"),
                }
            })
        };
        let candidate = program();
        let mine = match scores.claim(&candidate) {
            Claim::Claimed => {
                computes.fetch_add(1, Ordering::SeqCst);
                scores.publish(candidate.clone(), 0.5);
                0.5
            }
            Claim::Hit(score) => score,
            Claim::Pending => scores.wait(&candidate).expect("claim never abandoned"),
        };
        let theirs = racer.join().unwrap();
        assert_eq!(mine, 0.5);
        assert_eq!(theirs, 0.5);
        assert_eq!(
            computes.load(Ordering::SeqCst),
            1,
            "exactly one thread must compute the score"
        );
        assert_eq!(scores.len(), 1);
    });
    assert!(report.complete, "schedule space must be fully explored");
    assert!(report.iterations > 1, "protocol must actually interleave");
}

/// A claiming worker panics mid-compute; `ClaimGuard` abandons the claim
/// during unwind, `wait` returns `None`, and the surviving thread
/// re-claims and completes the score. The panic must never leak the claim.
#[test]
fn abandoned_claim_is_released_for_reclaim() {
    let report = Builder::new().check(|| {
        let scores = Arc::new(SpecScores::default());
        let crasher = {
            let scores = Arc::clone(&scores);
            loom::thread::spawn(move || {
                let candidates = [program()];
                if let Claim::Claimed = scores.claim(&candidates[0]) {
                    let guard = ClaimGuard::new(&scores, &candidates);
                    let crash = catch_unwind(AssertUnwindSafe(|| {
                        panic!("scoring failed");
                    }));
                    drop(guard); // unwind path: abandons, never publishes
                    assert!(crash.is_err());
                }
            })
        };
        let candidate = program();
        let score = loop {
            match scores.claim(&candidate) {
                Claim::Claimed => {
                    scores.publish(candidate.clone(), 0.25);
                    break 0.25;
                }
                Claim::Hit(score) => break score,
                Claim::Pending => match scores.wait(&candidate) {
                    Some(score) => break score,
                    // Claim was abandoned — retry the claim ourselves.
                    None => continue,
                },
            }
        };
        crasher.join().unwrap();
        assert_eq!(score, 0.25);
    });
    assert!(report.complete, "schedule space must be fully explored");
}

/// Mini claim table reproducing the SpecScores slot protocol, used to seed
/// bugs the real implementation does not have. `claim` returns true when
/// the caller owns the compute; `publish` stores and notifies.
struct MiniTable {
    slots: Mutex<HashMap<&'static str, Option<f64>>>,
    published: Condvar,
}

impl MiniTable {
    fn new() -> Self {
        MiniTable {
            slots: Mutex::new(HashMap::new()),
            published: Condvar::new(),
        }
    }

    fn wait(&self, key: &'static str) -> Option<f64> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            match slots.get(key) {
                Some(Some(score)) => return Some(*score),
                Some(None) => slots = self.published.wait(slots).unwrap(),
                None => return None,
            }
        }
    }
}

/// Seeded bug: `claim` reports `Claimed` without inserting the in-flight
/// marker, so the second racer also claims — both compute. The model
/// checker must surface the duplicated compute.
#[test]
fn finds_double_compute_when_claim_skips_inflight_marker() {
    let message = catches(|| {
        let table = Arc::new(MiniTable::new());
        let computes = Arc::new(AtomicUsize::new(0));
        let claim_buggy = |table: &MiniTable| -> bool {
            let slots = table.slots.lock().unwrap();
            // BUG (seeded): an empty slot grants the claim but never
            // inserts `None` (the in-flight marker), so a racer looking
            // at the same empty slot claims too.
            !slots.contains_key("k")
        };
        let racer = {
            let table = Arc::clone(&table);
            let computes = Arc::clone(&computes);
            loom::thread::spawn(move || {
                if claim_buggy(&table) {
                    computes.fetch_add(1, Ordering::SeqCst);
                    table.slots.lock().unwrap().insert("k", Some(1.0));
                    table.published.notify_all();
                }
            })
        };
        if claim_buggy(&table) {
            computes.fetch_add(1, Ordering::SeqCst);
            table.slots.lock().unwrap().insert("k", Some(1.0));
            table.published.notify_all();
        }
        racer.join().unwrap();
        assert!(
            computes.load(Ordering::SeqCst) <= 1,
            "claim protocol must admit at most one compute"
        );
    });
    assert!(
        message.contains("at most one compute"),
        "expected the duplicate-compute assertion, got: {message}"
    );
}

/// Seeded bug: `publish` stores the score but never notifies, so a waiter
/// that blocked before the store sleeps forever — reported as deadlock.
#[test]
fn finds_stranded_waiter_when_publish_skips_notify() {
    let message = catches(|| {
        let table = Arc::new(MiniTable::new());
        table.slots.lock().unwrap().insert("k", None); // in-flight
        let publisher = {
            let table = Arc::clone(&table);
            loom::thread::spawn(move || {
                // BUG (seeded): store without `published.notify_all()`.
                table.slots.lock().unwrap().insert("k", Some(2.0));
            })
        };
        let got = table.wait("k");
        publisher.join().unwrap();
        assert_eq!(got, Some(2.0));
    });
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

/// Two threads race `publish_many` on the trace-encoding cache with the
/// same key: first write wins and both callers converge on the *same*
/// canonical `Arc`, so downstream batches share one buffer.
#[test]
fn trace_cache_publish_converges_on_one_canonical_arc() {
    use netsyn_fitness::TraceEncodingCache;
    let report = Builder::new().check(|| {
        let cache = Arc::new(TraceEncodingCache::default());
        let racer = {
            let cache = Arc::clone(&cache);
            loom::thread::spawn(move || {
                let key = [1usize, 2, 3];
                let fresh: Arc<[f32]> = vec![1.0f32].into();
                cache.publish_many(vec![(&key[..], fresh)]).remove(0)
            })
        };
        let key = [1usize, 2, 3];
        let fresh: Arc<[f32]> = vec![1.0f32].into();
        let mine = cache.publish_many(vec![(&key[..], fresh)]).remove(0);
        let theirs = racer.join().unwrap();
        assert!(
            Arc::ptr_eq(&mine, &theirs),
            "both publishers must converge on one canonical buffer"
        );
        let hit = cache.get_many(&[&key[..]]).remove(0).expect("published");
        assert!(Arc::ptr_eq(&hit, &mine));
    });
    assert!(report.complete, "schedule space must be fully explored");
}
