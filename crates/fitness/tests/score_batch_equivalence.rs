//! Property tests for the batched scoring path: for every fitness family
//! (learned CF, learned LCS, FP, plus the default-impl oracle and
//! edit-distance functions), `score_batch` must return *exactly* the scores
//! the per-candidate `score` path returns — bit-identical `f64`s, not just
//! approximately equal. The GA engine relies on this: batching is a pure
//! performance optimization and must never change search behavior.

use netsyn_dsl::{Generator, GeneratorConfig, IoSpec, Program};
use netsyn_fitness::dataset::{
    generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig,
};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{
    ClosenessMetric, EditDistanceFitness, FitnessFunction, FitnessNetConfig, LearnedFitness,
    LearnedProbabilityModel, OracleFitness, ProbabilityFitness,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const PROGRAM_LENGTH: usize = 3;
const CASES: usize = 8;
const BATCH: usize = 24;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn tiny_trainer_config() -> TrainerConfig {
    let mut config = TrainerConfig::small();
    config.net = FitnessNetConfig {
        value_embed_dim: 4,
        encoder_hidden_dim: 6,
        function_embed_dim: 4,
        trace_hidden_dim: 6,
        example_hidden_dim: 8,
        head_hidden_dim: 8,
        output_dim: 1,
    };
    config.epochs = 1;
    config.batch_size = 8;
    config
}

fn tiny_dataset_config() -> DatasetConfig {
    let mut config = DatasetConfig::for_length(PROGRAM_LENGTH);
    config.num_target_programs = 6;
    config.examples_per_program = 2;
    config
}

/// A random scoring scenario: a specification plus a population-like batch
/// of candidates with duplicates and an empty program mixed in.
fn random_scenario(seed: u64) -> (IoSpec, Vec<Program>) {
    let mut r = rng(seed);
    let generator = Generator::new(GeneratorConfig::for_length(PROGRAM_LENGTH));
    let task = generator.task(3, &mut r).expect("task generation succeeds");
    let mut candidates: Vec<Program> = (0..BATCH)
        .map(|_| generator.random_program(&mut r))
        .collect();
    // Duplicates must score identically; the empty program exercises the
    // no-trace path.
    let duplicate = candidates[0].clone();
    candidates.push(duplicate);
    candidates.push(Program::default());
    let swap = r.gen_range(0..candidates.len());
    candidates.swap(0, swap);
    (task.spec, candidates)
}

fn assert_batch_matches_single<F: FitnessFunction + ?Sized>(
    fitness: &F,
    spec: &IoSpec,
    candidates: &[Program],
) {
    let batched = fitness.score_batch(candidates, spec);
    assert_eq!(batched.len(), candidates.len());
    for (candidate, &batch_score) in candidates.iter().zip(batched.iter()) {
        let single = fitness.score(candidate, spec);
        assert_eq!(
            batch_score.to_bits(),
            single.to_bits(),
            "{}: batched {batch_score} != single {single} for {candidate}",
            fitness.name()
        );
    }
}

#[test]
fn learned_cf_score_batch_is_bit_identical() {
    let mut r = rng(100);
    let samples = generate_dataset(
        &tiny_dataset_config(),
        BalanceMetric::CommonFunctions,
        &mut r,
    )
    .expect("dataset generation succeeds");
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        PROGRAM_LENGTH,
        &tiny_trainer_config(),
        &mut r,
    );
    let fitness = LearnedFitness::new(model);
    for case in 0..CASES {
        let (spec, candidates) = random_scenario(1000 + case as u64);
        assert_batch_matches_single(&fitness, &spec, &candidates);
    }
}

#[test]
fn learned_lcs_score_batch_is_bit_identical() {
    let mut r = rng(200);
    let samples = generate_dataset(
        &tiny_dataset_config(),
        BalanceMetric::LongestCommonSubsequence,
        &mut r,
    )
    .expect("dataset generation succeeds");
    let model = train_fitness_model(
        FitnessModelKind::LongestCommonSubsequence,
        &samples,
        PROGRAM_LENGTH,
        &tiny_trainer_config(),
        &mut r,
    );
    let fitness = LearnedFitness::new(model);
    for case in 0..CASES {
        let (spec, candidates) = random_scenario(2000 + case as u64);
        assert_batch_matches_single(&fitness, &spec, &candidates);
    }
}

#[test]
fn fp_score_batch_is_bit_identical() {
    let mut r = rng(300);
    let samples =
        generate_fp_dataset(&tiny_dataset_config(), &mut r).expect("dataset generation succeeds");
    let model = train_fitness_model(
        FitnessModelKind::FunctionProbability,
        &samples,
        PROGRAM_LENGTH,
        &tiny_trainer_config(),
        &mut r,
    );
    let prob_model = LearnedProbabilityModel::new(model);
    for case in 0..CASES {
        let (spec, candidates) = random_scenario(3000 + case as u64);
        let fitness = ProbabilityFitness::new(prob_model.probability_map(&spec), PROGRAM_LENGTH);
        assert_batch_matches_single(&fitness, &spec, &candidates);
    }
}

#[test]
fn default_impl_fitness_functions_also_match() {
    // The trait's default score_batch (a plain loop) and the oracle /
    // edit-distance functions must satisfy the same contract.
    for case in 0..CASES {
        let (spec, candidates) = random_scenario(4000 + case as u64);
        let mut r = rng(5000 + case as u64);
        let generator = Generator::new(GeneratorConfig::for_length(PROGRAM_LENGTH));
        let target = generator
            .program(&mut r)
            .expect("program generation succeeds");
        for metric in [
            ClosenessMetric::CommonFunctions,
            ClosenessMetric::LongestCommonSubsequence,
        ] {
            let oracle = OracleFitness::new(target.clone(), metric);
            assert_batch_matches_single(&oracle, &spec, &candidates);
        }
        assert_batch_matches_single(&EditDistanceFitness::new(), &spec, &candidates);
    }
}

/// The split encoding API itself upholds the contract: one shared
/// [`SpecEncoding`] plus per-candidate [`CandidateEncoding`]s pushed through
/// `predict_batch` must reproduce per-candidate `predict` calls bitwise, for
/// a trained model and across repeated/empty/trace-less candidates.
#[test]
fn split_encoding_predict_batch_is_bit_identical() {
    use netsyn_fitness::encoding::{encode_candidate, encode_candidates, encode_spec};
    use netsyn_fitness::CandidateEncoding;

    let mut r = rng(700);
    let samples = generate_dataset(
        &tiny_dataset_config(),
        BalanceMetric::CommonFunctions,
        &mut r,
    )
    .expect("dataset generation succeeds");
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        PROGRAM_LENGTH,
        &tiny_trainer_config(),
        &mut r,
    );
    let net = &model.net;
    let (spec, candidates) = random_scenario(7000);
    let spec_encoding = encode_spec(net.encoding(), &spec);
    let mut encodings = encode_candidates(net.encoding(), &spec, &candidates);
    // The batch encoder must agree with the per-candidate encoder...
    for (candidate, encoding) in candidates.iter().zip(encodings.iter()) {
        assert_eq!(
            encoding,
            &encode_candidate(net.encoding(), &spec, candidate)
        );
    }
    // ...and a trace-less (FP-style) entry may ride along in the same batch.
    encodings.push(CandidateEncoding::spec_only());
    let batched = net.predict_batch(&spec_encoding, &encodings).unwrap();
    assert_eq!(batched.len(), encodings.len());
    for (encoding, batch_logits) in encodings.iter().zip(batched.iter()) {
        let single = net.predict(&spec_encoding, encoding).unwrap();
        for (a, b) in batch_logits.iter().zip(single.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    assert_eq!(
        batched.last().unwrap(),
        &net.predict_spec(&spec_encoding).unwrap()
    );
}

/// The learned fitness's one-slot spec memo must not leak scores across
/// specifications: alternating between two specs (evicting the slot each
/// time) still returns bit-identical batch and single scores for both.
#[test]
fn spec_cache_eviction_preserves_bit_identity() {
    let mut r = rng(800);
    let samples = generate_dataset(
        &tiny_dataset_config(),
        BalanceMetric::CommonFunctions,
        &mut r,
    )
    .expect("dataset generation succeeds");
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        PROGRAM_LENGTH,
        &tiny_trainer_config(),
        &mut r,
    );
    let fitness = LearnedFitness::new(model);
    let (spec_a, candidates_a) = random_scenario(8001);
    let (spec_b, candidates_b) = random_scenario(8002);
    let baseline_a = fitness.score_batch(&candidates_a, &spec_a);
    for _round in 0..2 {
        assert_batch_matches_single(&fitness, &spec_a, &candidates_a);
        assert_batch_matches_single(&fitness, &spec_b, &candidates_b);
    }
    // Returning to spec A after scoring spec B reproduces the exact scores.
    let again_a = fitness.score_batch(&candidates_a, &spec_a);
    for (a, b) in baseline_a.iter().zip(again_a.iter()) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    assert!(fitness.spec_encode_count() >= 2, "both specs were encoded");
}

#[test]
fn boxed_fitness_batch_delegates() {
    let (spec, candidates) = random_scenario(6000);
    let mut r = rng(6001);
    let generator = Generator::new(GeneratorConfig::for_length(PROGRAM_LENGTH));
    let target = generator
        .program(&mut r)
        .expect("program generation succeeds");
    let boxed: Box<dyn FitnessFunction> =
        Box::new(OracleFitness::new(target, ClosenessMetric::CommonFunctions));
    assert_batch_matches_single(&boxed, &spec, &candidates);
    assert!(boxed.score_batch(&[], &spec).is_empty());
}
