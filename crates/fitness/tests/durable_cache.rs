//! Integration tests of the durable cache tier: warm restarts, the on-disk
//! fault matrix, and the degradation contract.
//!
//! Every test follows the same shape — persist a cache, damage (or don't)
//! the directory in a specific way, reopen, and assert the two halves of
//! the contract:
//!
//! 1. **Never wrong**: every score served by the reopened cache is
//!    bit-identical to the score originally inserted. Corruption may only
//!    remove entries, never alter them.
//! 2. **Never fatal**: opening a damaged directory cannot panic or error
//!    (only directory *creation* can fail); the worst case is a cold cache
//!    plus a quarantined file left on disk for inspection.

use netsyn_dsl::{Function, IntPredicate, IoExample, IoSpec, MapOp, Program, Value};
use netsyn_fitness::dataset::{generate_dataset, BalanceMetric, DatasetConfig};
use netsyn_fitness::persist::{SCORES_FILE, TRACES_FILE};
use netsyn_fitness::trainer::{train_fitness_model, FitnessModelKind, TrainerConfig};
use netsyn_fitness::{
    DurableOptions, FitnessCache, FitnessFunction, FitnessNetConfig, LearnedFitness,
};
use netsyn_persist::{crc32, FaultPlan, MAGIC};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::{Path, PathBuf};

/// A per-test scratch directory (removed at the start so a crashed earlier
/// run cannot leak state in).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("netsyn_durable_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn spec() -> IoSpec {
    IoSpec::new(vec![
        IoExample::new(vec![Value::List(vec![-2, 10, 3])], Value::List(vec![6, 20])),
        IoExample::new(vec![Value::Int(4), Value::Int(7)], Value::Int(11)),
    ])
}

/// A family of distinct programs to use as score keys.
fn programs(n: usize) -> Vec<Program> {
    let pool = [
        Function::Sort,
        Function::Reverse,
        Function::Sum,
        Function::Head,
        Function::Last,
        Function::Filter(IntPredicate::Positive),
        Function::Map(MapOp::Mul2),
        Function::Minimum,
        Function::Maximum,
    ];
    (0..n)
        .map(|i| {
            Program::new(vec![
                pool[i % pool.len()],
                pool[(i / pool.len()) % pool.len()],
            ])
        })
        .collect()
}

/// Scores with awkward bit patterns: negative zero, subnormals, NaN-free
/// extremes — everything must round-trip bit-for-bit.
fn score_for(i: usize) -> f64 {
    match i % 5 {
        0 => -0.0,
        1 => f64::MIN_POSITIVE / 2.0,
        2 => 1.0 / 3.0,
        3 => -(i as f64) * 1e300,
        _ => i as f64 + 0.5,
    }
}

const KEY: &str = "test-model#fp=deadbeef";

/// Persists `n` scores under `KEY` and returns the flushed directory.
fn seed_scores(dir: &Path, n: usize) {
    let cache = FitnessCache::durable(dir).expect("open durable cache");
    let memo = cache.shard(KEY, &spec());
    for (i, p) in programs(n).into_iter().enumerate() {
        memo.insert(p, score_for(i));
    }
    let stats = cache.flush().expect("flush");
    assert_eq!(stats.score_entries, n, "every inserted score is appended");
}

/// Asserts the reopened cache serves exactly `expect` of the seeded scores,
/// each bit-identical — never a wrong value.
fn assert_scores_intact(cache: &FitnessCache, seeded: usize, expect: usize) {
    let memo = cache.shard(KEY, &spec());
    assert_eq!(memo.len(), expect);
    for (i, p) in programs(seeded).into_iter().enumerate() {
        if let Some(score) = memo.get(&p) {
            assert_eq!(
                score.to_bits(),
                score_for(i).to_bits(),
                "a surviving score must be bit-identical (program {i})"
            );
        } else {
            assert!(
                i >= expect,
                "only a suffix may be lost, but program {i} of {expect} is gone"
            );
        }
    }
}

#[test]
fn warm_restart_round_trips_every_score_bit_identically() {
    let dir = scratch("round_trip");
    seed_scores(&dir, 9);

    let cache = FitnessCache::durable(&dir).expect("reopen");
    let report = cache.load_report().expect("durable cache has a report");
    assert_eq!(report.score_entries, 9);
    assert!(report.quarantined.is_empty());
    assert!(report.damage.is_empty());
    assert_scores_intact(&cache, 9, 9);
}

#[test]
fn flush_appends_only_the_delta() {
    let dir = scratch("delta");
    let cache = FitnessCache::durable(&dir).expect("open");
    let memo = cache.shard(KEY, &spec());
    let progs = programs(6);
    for (i, p) in progs.iter().take(4).enumerate() {
        memo.insert(p.clone(), score_for(i));
    }
    assert_eq!(cache.flush().expect("flush").score_entries, 4);
    // A second flush with nothing new appends nothing.
    assert_eq!(cache.flush().expect("flush").score_entries, 0);
    for (i, p) in progs.iter().enumerate().skip(4) {
        memo.insert(p.clone(), score_for(i));
    }
    assert_eq!(cache.flush().expect("flush").score_entries, 2);
    drop(cache);

    let reopened = FitnessCache::durable(&dir).expect("reopen");
    assert_scores_intact(&reopened, 6, 6);
}

#[test]
fn torn_final_record_drops_only_the_tail() {
    let dir = scratch("torn_tail");
    // Two flushes → two delta records on disk (each flush appends one
    // record per dirty shard).
    {
        let cache = FitnessCache::durable(&dir).expect("open");
        let memo = cache.shard(KEY, &spec());
        let progs = programs(5);
        for (i, p) in progs.iter().take(4).enumerate() {
            memo.insert(p.clone(), score_for(i));
        }
        cache.flush().expect("flush");
        memo.insert(progs[4].clone(), score_for(4));
        cache.flush().expect("flush");
    }
    // Tear the last record: chop a handful of bytes off the log, as a crash
    // mid-append would.
    let path = dir.join(SCORES_FILE);
    let bytes = std::fs::read(&path).expect("read log");
    std::fs::write(&path, &bytes[..bytes.len() - 7]).expect("truncate log");

    let cache = FitnessCache::durable(&dir).expect("reopen");
    let report = cache.load_report().expect("report");
    assert_eq!(
        report.score_entries, 4,
        "exactly the torn final record is lost"
    );
    assert!(
        !report.damage.is_empty(),
        "the dropped suffix must be reported"
    );
    assert!(report.quarantined.is_empty());
    assert_scores_intact(&cache, 5, 4);
}

#[test]
fn bit_flip_mid_log_never_yields_a_wrong_score() {
    let dir = scratch("bit_flip");
    seed_scores(&dir, 8);
    let path = dir.join(SCORES_FILE);
    let original = std::fs::read(&path).expect("read log");

    // Flip one bit at every offset past the file header in turn: whatever
    // the reopened cache serves must be one of the original scores —
    // corruption may shrink the cache, never corrupt a value.
    let header_end = 65; // MAGIC(8) + version(4) + hlen(4) + hdata(45) + crc(4)
    for offset in header_end..original.len() {
        let mut damaged = original.clone();
        damaged[offset] ^= 1 << (offset % 8);
        std::fs::write(&path, &damaged).expect("write damaged log");

        let cache = FitnessCache::durable(&dir).expect("reopen survives any flip");
        assert_scores_intact(&cache, 8, cache.shard(KEY, &spec()).len());
        drop(cache);
        // Drop may have re-flushed (already-persisted set covers everything,
        // so it appends nothing) — restore the damaged state's baseline.
        std::fs::write(&path, &original).expect("restore log");
    }
}

#[test]
fn truncated_header_is_quarantined_and_cache_stays_usable() {
    let dir = scratch("truncated_header");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join(SCORES_FILE), &MAGIC[..6]).expect("write stub");

    let cache = FitnessCache::durable(&dir).expect("open");
    let report = cache.load_report().expect("report");
    assert_eq!(report.score_entries, 0);
    assert_eq!(report.quarantined.len(), 1, "the stub must be quarantined");
    assert!(
        !dir.join(SCORES_FILE).exists(),
        "the unreadable file is renamed away"
    );
    let quarantined = &report.quarantined[0];
    assert!(
        quarantined.exists(),
        "quarantined files are kept, not deleted"
    );

    // The cold cache is fully usable: insert, flush, restart warm.
    cache
        .shard(KEY, &spec())
        .insert(programs(1).remove(0), 42.0);
    assert_eq!(cache.flush().expect("flush").score_entries, 1);
    drop(cache);
    let reopened = FitnessCache::durable(&dir).expect("reopen");
    assert_eq!(reopened.load_report().expect("report").score_entries, 1);
}

#[test]
fn empty_file_is_a_valid_empty_log_not_damage() {
    let dir = scratch("empty_file");
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(dir.join(SCORES_FILE), b"").expect("write empty");

    let cache = FitnessCache::durable(&dir).expect("open");
    let report = cache.load_report().expect("report");
    assert_eq!(report.score_entries, 0);
    assert!(
        report.quarantined.is_empty(),
        "an empty log is not an error"
    );
    assert!(report.damage.is_empty());
}

#[test]
fn wrong_version_file_is_quarantined() {
    let dir = scratch("wrong_version");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // A structurally valid log header claiming format version 2.
    let hdata = b"future-header";
    let version: u32 = 2;
    let mut file = Vec::new();
    file.extend_from_slice(MAGIC);
    file.extend_from_slice(&version.to_le_bytes());
    file.extend_from_slice(&(hdata.len() as u32).to_le_bytes());
    file.extend_from_slice(hdata);
    let mut crc_input = Vec::new();
    crc_input.extend_from_slice(&version.to_le_bytes());
    crc_input.extend_from_slice(&(hdata.len() as u32).to_le_bytes());
    crc_input.extend_from_slice(hdata);
    file.extend_from_slice(&crc32(&crc_input).to_le_bytes());
    std::fs::write(dir.join(SCORES_FILE), &file).expect("write future log");

    let cache = FitnessCache::durable(&dir).expect("open");
    let report = cache.load_report().expect("report");
    assert_eq!(report.quarantined.len(), 1, "future versions are preserved");
    assert_eq!(report.score_entries, 0);
}

#[test]
fn swapped_files_fail_the_kind_check_and_start_cold() {
    // scores.nsl renamed to traces.nsl — e.g. a user shuffling files around.
    // The app-level kind header catches it; the same check rejects logs
    // whose embedded domain name or vocabulary fingerprint disagrees.
    let dir = scratch("swapped");
    seed_scores(&dir, 3);
    std::fs::rename(dir.join(SCORES_FILE), dir.join(TRACES_FILE)).expect("swap");

    let cache = FitnessCache::durable(&dir).expect("open");
    let report = cache.load_report().expect("report");
    assert_eq!(
        report.quarantined.len(),
        1,
        "the mis-kinded file must be quarantined"
    );
    assert_eq!(report.score_entries, 0);
    assert_eq!(report.trace_entries, 0);
    assert!(cache.shard(KEY, &spec()).is_empty(), "cold, never aliased");
}

#[test]
fn cross_domain_reopen_quarantines_and_starts_cold() {
    // Caches persisted under one domain must never be served to another:
    // the header's domain name + vocabulary fingerprint quarantine the
    // file and the cache starts cold.
    let dir = scratch("cross_domain");
    seed_scores(&dir, 5); // list-domain by default

    let str_options = DurableOptions {
        domain: netsyn_dsl::DomainId::Str,
        ..DurableOptions::default()
    };
    let cache = FitnessCache::durable_with(&dir, str_options).expect("open for str domain");
    let report = cache.load_report().expect("report");
    assert_eq!(
        report.quarantined.len(),
        1,
        "the list-domain score log must be quarantined, not read"
    );
    assert_eq!(report.score_entries, 0);
    assert!(cache.shard(KEY, &spec()).is_empty(), "cold, never aliased");
    // The quarantined file survives on disk for inspection.
    assert!(report.quarantined[0].exists());

    // The string-domain cache is fully usable in the same directory, and a
    // same-domain reopen comes back warm.
    cache.shard(KEY, &spec()).insert(programs(1).remove(0), 7.5);
    assert_eq!(cache.flush().expect("flush").score_entries, 1);
    drop(cache);
    let reopened = FitnessCache::durable_with(&dir, str_options).expect("reopen str domain");
    assert_eq!(reopened.load_report().expect("report").score_entries, 1);
}

#[test]
fn enospc_mid_flush_degrades_to_memory_only() {
    let dir = scratch("enospc");
    // Fail the write early in the first record: the header (65 bytes) goes
    // through, the record append errors like a full disk.
    let options = DurableOptions {
        flush_every: usize::MAX,
        fault: Some(FaultPlan::enospc(70)),
        ..DurableOptions::default()
    };
    let cache = FitnessCache::durable_with(&dir, options).expect("open");
    let memo = cache.shard(KEY, &spec());
    for (i, p) in programs(4).into_iter().enumerate() {
        memo.insert(p, score_for(i));
    }
    // The failed flush must not panic; the store degrades to memory-only.
    let _ = cache.flush();
    // Every score is still served from memory, bit-identically.
    assert_scores_intact(&cache, 4, 4);
    // Later flushes are no-ops on a broken store, not errors.
    let _ = cache.flush();
    drop(cache);

    // Whatever prefix reached "disk" must reopen cleanly (possibly cold).
    let reopened = FitnessCache::durable(&dir).expect("reopen after ENOSPC");
    assert_scores_intact(&reopened, 4, reopened.shard(KEY, &spec()).len());
}

#[test]
fn torn_write_loses_the_tail_but_recovery_keeps_the_prefix() {
    let dir = scratch("torn_write");
    // First generation: persist 3 scores for real.
    seed_scores(&dir, 3);
    let base_len = std::fs::metadata(dir.join(SCORES_FILE))
        .expect("meta")
        .len();

    // Second generation: the process "crashes" with an append torn a few
    // bytes into the new records (the torn write itself reports success —
    // the loss only becomes visible on the next boot).
    let options = DurableOptions {
        flush_every: usize::MAX,
        fault: Some(FaultPlan::torn_write(base_len + 9)),
        ..DurableOptions::default()
    };
    let cache = FitnessCache::durable_with(&dir, options).expect("open");
    let memo = cache.shard(KEY, &spec());
    for (i, p) in programs(6).into_iter().enumerate().skip(3) {
        memo.insert(p, score_for(i));
    }
    let stats = cache.flush().expect("flush");
    assert_eq!(
        stats.score_entries, 3,
        "a torn write looks successful to the writer"
    );
    drop(cache);

    let reopened = FitnessCache::durable(&dir).expect("reopen");
    let report = reopened.load_report().expect("report");
    assert_eq!(
        report.score_entries, 3,
        "the first generation survives, the torn tail is dropped"
    );
    assert!(!report.damage.is_empty());
    assert_scores_intact(&reopened, 3, 3);
}

#[test]
fn concurrent_scoring_and_periodic_flushes_lose_nothing() {
    let dir = scratch("concurrent");
    let n = 64;
    {
        let cache = FitnessCache::durable_with(
            &dir,
            DurableOptions {
                flush_every: 2,
                fault: None,
                ..DurableOptions::default()
            },
        )
        .expect("open");
        let memo = cache.shard(KEY, &spec());
        std::thread::scope(|scope| {
            let writer_memo = &memo;
            let writer = scope.spawn(move || {
                for (i, p) in programs(n).into_iter().enumerate() {
                    writer_memo.insert(p, score_for(i));
                }
            });
            // Interleave background flush ticks with the inserts.
            for _ in 0..32 {
                cache.maybe_periodic_flush();
                std::thread::yield_now();
            }
            writer.join().expect("writer thread");
        });
        // Final synchronous flush picks up whatever the ticks missed.
        cache.flush().expect("flush");
    }

    let reopened = FitnessCache::durable(&dir).expect("reopen");
    let report = reopened.load_report().expect("report");
    assert!(report.damage.is_empty(), "concurrent flushes never corrupt");
    assert_scores_intact(&reopened, n, n);
}

/// A tiny trained model, enough to drive real trace encodings through the
/// durable trace log.
fn tiny_fitness() -> LearnedFitness {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let mut dataset_config = DatasetConfig::for_length(2);
    dataset_config.num_target_programs = 4;
    dataset_config.examples_per_program = 2;
    let samples =
        generate_dataset(&dataset_config, BalanceMetric::CommonFunctions, &mut rng).unwrap();
    let mut trainer_config = TrainerConfig::small();
    trainer_config.net = FitnessNetConfig {
        value_embed_dim: 4,
        encoder_hidden_dim: 6,
        function_embed_dim: 4,
        trace_hidden_dim: 6,
        example_hidden_dim: 8,
        head_hidden_dim: 8,
        output_dim: 1,
    };
    trainer_config.epochs = 1;
    let model = train_fitness_model(
        FitnessModelKind::CommonFunctions,
        &samples,
        2,
        &trainer_config,
        &mut rng,
    );
    LearnedFitness::new(model)
}

#[test]
fn trace_encodings_round_trip_and_warm_scores_are_bit_identical() {
    let dir = scratch("traces");
    let fitness = tiny_fitness();
    let batch = programs(6);
    let spec = spec();

    // Cold process: score through the durable cache's trace shard.
    let cold_scores;
    {
        let cache = FitnessCache::durable(&dir).expect("open");
        let traces = cache.trace_shard(&fitness.cache_key());
        cold_scores = fitness.score_batch_cached(&batch, &spec, &traces);
        assert!(traces.encode_count() > 0, "the cold run encodes traces");
        let stats = cache.flush().expect("flush");
        assert!(stats.trace_entries > 0, "encodings must be persisted");
    }

    // Restarted process: the trace shard comes back from disk; re-scoring
    // the same batch re-encodes nothing and reproduces the scores
    // bit-for-bit (hidden states round-trip as raw f32 bits).
    let cache = FitnessCache::durable(&dir).expect("reopen");
    let report = cache.load_report().expect("report");
    assert!(report.trace_entries > 0, "trace entries load at startup");
    let traces = cache.trace_shard(&fitness.cache_key());
    assert!(!traces.is_empty());
    assert_eq!(traces.encode_count(), 0, "loads don't count as encodes");
    let warm_scores = fitness.score_batch_cached(&batch, &spec, &traces);
    assert_eq!(
        traces.encode_count(),
        0,
        "a warm-from-disk shard serves every trace value"
    );
    let cold_bits: Vec<u64> = cold_scores.iter().map(|s| s.to_bits()).collect();
    let warm_bits: Vec<u64> = warm_scores.iter().map(|s| s.to_bits()).collect();
    assert_eq!(warm_bits, cold_bits, "warm scores are bit-identical");
}
