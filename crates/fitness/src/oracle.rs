//! The oracle fitness function.
//!
//! The oracle knows the hidden target program and grades candidates with the
//! exact CF or LCS value. It is impossible in practice (the target is
//! unknown) but serves as the upper bound the learned fitness functions are
//! trained to approximate (`Oracle_LCS|CF` rows of Tables 3 and 4).

use crate::metrics::{common_functions, longest_common_subsequence};
use crate::probability::ProbabilityMap;
use crate::traits::{ClosenessMetric, FitnessFunction};
use netsyn_dsl::{IoSpec, Program};

/// Fitness function with perfect knowledge of the target program.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleFitness {
    target: Program,
    metric: ClosenessMetric,
    name: String,
}

impl OracleFitness {
    /// Creates an oracle for `target` using the given closeness metric.
    #[must_use]
    pub fn new(target: Program, metric: ClosenessMetric) -> Self {
        let name = format!("oracle-{metric}");
        OracleFitness {
            target,
            metric,
            name,
        }
    }

    /// The metric this oracle grades with.
    #[must_use]
    pub fn metric(&self) -> ClosenessMetric {
        self.metric
    }

    /// The hidden target program.
    #[must_use]
    pub fn target(&self) -> &Program {
        &self.target
    }
}

impl FitnessFunction for OracleFitness {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
        match self.metric {
            ClosenessMetric::CommonFunctions => common_functions(candidate, &self.target) as f64,
            ClosenessMetric::LongestCommonSubsequence => {
                longest_common_subsequence(candidate, &self.target) as f64
            }
        }
    }

    /// Oracle scores depend on the hidden target, not just the spec — and
    /// distinct targets can induce the *same* spec (e.g. two programs that
    /// are both the identity). The cache key therefore includes the target.
    fn cache_key(&self) -> String {
        format!("{}[{}]", self.name, self.target)
    }

    fn max_score(&self) -> f64 {
        self.target.len() as f64
    }

    fn probability_map(&self, _spec: &IoSpec) -> Option<ProbabilityMap> {
        Some(ProbabilityMap::from_target(&self.target, 0.01))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, IntPredicate, MapOp};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    #[test]
    fn oracle_cf_scores_exactly() {
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let spec = IoSpec::default();
        assert_eq!(oracle.score(&target(), &spec), 4.0);
        let partial = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Reverse,
            Function::Drop,
        ]);
        assert_eq!(oracle.score(&partial, &spec), 3.0);
        assert_eq!(oracle.max_score(), 4.0);
        assert_eq!(oracle.metric(), ClosenessMetric::CommonFunctions);
        assert_eq!(oracle.name(), "oracle-CF");
    }

    #[test]
    fn oracle_lcs_scores_exactly() {
        let oracle = OracleFitness::new(target(), ClosenessMetric::LongestCommonSubsequence);
        let spec = IoSpec::default();
        let reordered = Program::new(vec![
            Function::Reverse,
            Function::Sort,
            Function::Map(MapOp::Mul2),
            Function::Filter(IntPredicate::Positive),
        ]);
        // Same multiset but reversed order: LCS is 1.
        assert_eq!(oracle.score(&reordered, &spec), 1.0);
        assert_eq!(oracle.score(&target(), &spec), 4.0);
        assert_eq!(oracle.name(), "oracle-LCS");
    }

    #[test]
    fn oracle_provides_a_probability_map_biased_to_target() {
        let oracle = OracleFitness::new(target(), ClosenessMetric::CommonFunctions);
        let map = oracle.probability_map(&IoSpec::default()).unwrap();
        assert_eq!(map.prob(Function::Sort), 1.0);
        assert!(map.prob(Function::Head) < 0.1);
        assert_eq!(oracle.target(), &target());
    }
}
