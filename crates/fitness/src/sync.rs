//! Poison-recovering lock acquisition, and the crate's `cfg(loom)` switch
//! point for synchronization primitives.
//!
//! A worker panic while holding a cache lock poisons the `Mutex`/`RwLock`;
//! with plain `.expect(..)` every later user of the cache then aborts too,
//! turning one failed scoring call into a process-wide outage. All cache
//! state is safe to read after a panic — published scores and encodings are
//! **first-write-wins immutable** (a partially applied batch is just a
//! smaller set of published entries), and abandoned in-flight claims are
//! cleaned up by `ClaimGuard` *before* the panic unwinds through the lock —
//! so these helpers simply take the guard out of the `PoisonError` and
//! carry on.
//!
//! Under `--cfg loom` (the CI `model-check` job) the `Mutex`/`Condvar`
//! behind the striped caches come from the loom shim, making every
//! claim/publish/wait/abandon step a scheduling point inside a
//! `loom::model` run; outside a model run (and in all normal builds) they
//! are `std::sync` primitives with identical behavior. `RwLock` is
//! deliberately *not* switched: the shard-map locks are not part of the
//! modelled claim protocols.

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex, MutexGuard};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

use std::sync::{RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Take a read lock, recovering if poisoned.
pub(crate) fn read_recovering<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Take a write lock, recovering if poisoned.
pub(crate) fn write_recovering<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Wait on a condvar, recovering the re-acquired guard if poisoned.
pub(crate) fn wait_recovering<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
