//! Poison-recovering lock acquisition.
//!
//! A worker panic while holding a cache lock poisons the `Mutex`/`RwLock`;
//! with plain `.expect(..)` every later user of the cache then aborts too,
//! turning one failed scoring call into a process-wide outage. All cache
//! state is safe to read after a panic — published scores and encodings are
//! **first-write-wins immutable** (a partially applied batch is just a
//! smaller set of published entries), and abandoned in-flight claims are
//! cleaned up by `ClaimGuard` *before* the panic unwinds through the lock —
//! so these helpers simply take the guard out of the `PoisonError` and
//! carry on.

use std::sync::{Condvar, Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Lock a mutex, recovering the guard if a panicking thread poisoned it.
pub(crate) fn lock_recovering<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Take a read lock, recovering if poisoned.
pub(crate) fn read_recovering<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Take a write lock, recovering if poisoned.
pub(crate) fn write_recovering<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Wait on a condvar, recovering the re-acquired guard if poisoned.
pub(crate) fn wait_recovering<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
) -> MutexGuard<'a, T> {
    condvar
        .wait(guard)
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
