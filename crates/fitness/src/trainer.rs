//! Training loops for the neural fitness functions and their evaluation
//! (confusion matrices for CF/LCS, accuracy-over-epochs for FP — Figure 7).

use crate::dataset::FitnessSample;
use crate::encoding::{
    encode_candidate, CandidateEncoding, EncodingConfig, SpecEncoding, SpecEncodingMap,
};
use crate::model::{FitnessNet, FitnessNetConfig};
use netsyn_nn::loss::{argmax, binary_cross_entropy_with_logits, softmax_cross_entropy};
use netsyn_nn::metrics::thresholded_accuracy;
use netsyn_nn::{Adam, ConfusionMatrix, Parameterized};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which fitness quantity a model predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FitnessModelKind {
    /// Multiclass classifier over the number of common functions.
    CommonFunctions,
    /// Multiclass classifier over the longest common subsequence.
    LongestCommonSubsequence,
    /// Multilabel (sigmoid) predictor of the per-function probability map.
    FunctionProbability,
}

impl std::fmt::Display for FitnessModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitnessModelKind::CommonFunctions => write!(f, "CF"),
            FitnessModelKind::LongestCommonSubsequence => write!(f, "LCS"),
            FitnessModelKind::FunctionProbability => write!(f, "FP"),
        }
    }
}

/// Hyper-parameters of the training loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Network hyper-parameters (the output dimension is overridden to match
    /// the model kind and program length).
    pub net: FitnessNetConfig,
    /// Token-encoding configuration.
    pub encoding: EncodingConfig,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of samples per gradient step.
    pub batch_size: usize,
    /// Global gradient-norm clip applied before each step.
    pub grad_clip: f32,
    /// Fraction of the corpus held out for validation.
    pub validation_fraction: f64,
}

impl TrainerConfig {
    /// A compact configuration that trains in seconds-to-minutes on a CPU.
    #[must_use]
    pub fn small() -> Self {
        TrainerConfig {
            net: FitnessNetConfig::small(1),
            encoding: EncodingConfig::new(),
            epochs: 5,
            learning_rate: 2e-3,
            batch_size: 16,
            grad_clip: 5.0,
            validation_fraction: 0.2,
        }
    }
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig::small()
    }
}

/// Loss / accuracy statistics of one training epoch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch number, starting at 1.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f64,
    /// Validation accuracy at the end of the epoch (classification accuracy
    /// for CF/LCS, thresholded multi-label accuracy for FP).
    pub validation_accuracy: f64,
}

/// Full training history plus final validation artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Per-epoch statistics (Figure 7(c) plots `validation_accuracy`).
    pub epochs: Vec<EpochStats>,
    /// Final confusion matrix on the validation split (Figures 7(a)/(b)).
    /// `None` for the FP model.
    pub confusion: Option<ConfusionMatrix>,
}

/// A trained fitness network together with its metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainedFitnessModel {
    /// What the model predicts.
    pub kind: FitnessModelKind,
    /// Program length the model was trained for.
    pub program_length: usize,
    /// The trained network.
    pub net: FitnessNet,
    /// Training history and validation artifacts.
    pub report: TrainingReport,
}

impl TrainedFitnessModel {
    /// Serializes the model to a JSON file.
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be written.
    pub fn save_json<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let json = serde_json::to_string(self).map_err(std::io::Error::other)?;
        std::fs::write(path, json)
    }

    /// Loads a model previously written by [`TrainedFitnessModel::save_json`].
    ///
    /// # Errors
    ///
    /// Returns an error if the file cannot be read or parsed.
    pub fn load_json<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(std::io::Error::other)
    }
}

fn loss_and_grad(
    kind: FitnessModelKind,
    logits: &[f32],
    sample: &FitnessSample,
) -> (f32, Vec<f32>) {
    match kind {
        FitnessModelKind::FunctionProbability => {
            binary_cross_entropy_with_logits(logits, &sample.fp_target)
        }
        _ => softmax_cross_entropy(logits, classification_label(kind, sample)),
    }
}

/// Runs one minibatch's forward / loss / backward, returning its summed loss.
///
/// With `batched` set the whole chunk goes through the batched SIMD kernels;
/// if the batched forward fails (any bad token fails the whole batch) the
/// chunk falls back to the per-sample loop below, which skips exactly the
/// offending samples — the reference path's contract. With `batched` unset
/// this *is* the reference path.
fn train_minibatch(
    kind: FitnessModelKind,
    net: &mut FitnessNet,
    samples: &[FitnessSample],
    chunk: &[usize],
    encodings: &[(SpecEncoding, CandidateEncoding)],
    batched: bool,
) -> f64 {
    if batched {
        let pairs: Vec<(&SpecEncoding, &CandidateEncoding)> =
            encodings.iter().map(|(s, c)| (s, c)).collect();
        if let Ok((logits, cache)) = net.forward_batch_train(&pairs) {
            let mut total = 0.0f64;
            let mut grads = Vec::with_capacity(chunk.len());
            for (&idx, logit_row) in chunk.iter().zip(logits.iter()) {
                let (loss, grad) = loss_and_grad(kind, logit_row, &samples[idx]);
                total += f64::from(loss);
                grads.push(grad);
            }
            net.backward_batch(&cache, &grads);
            return total;
        }
    }
    let mut total = 0.0f64;
    for (&idx, (spec_encoding, candidate_encoding)) in chunk.iter().zip(encodings.iter()) {
        let Ok((logits, cache)) = net.forward(spec_encoding, candidate_encoding) else {
            continue;
        };
        let (loss, grad) = loss_and_grad(kind, &logits, &samples[idx]);
        total += f64::from(loss);
        net.backward(&cache, &grad);
    }
    total
}

fn classification_label(kind: FitnessModelKind, sample: &FitnessSample) -> usize {
    match kind {
        FitnessModelKind::CommonFunctions => sample.cf,
        FitnessModelKind::LongestCommonSubsequence => sample.lcs,
        FitnessModelKind::FunctionProbability => 0,
    }
}

/// Trains a fitness model of the given kind on `samples`.
///
/// For CF/LCS the network is a `(program_length + 1)`-way classifier over the
/// candidate + trace encoding; for FP it is a 41-way sigmoid predictor over
/// the specification encoding only.
///
/// Each minibatch runs through the batched SIMD training kernels
/// ([`FitnessNet::forward_batch_train`] / [`FitnessNet::backward_batch`]),
/// which are bit-identical to the per-sample path — the returned model is
/// byte-for-byte the one [`train_fitness_model_reference`] produces from the
/// same inputs and seed. A minibatch whose batched forward fails (an
/// out-of-vocabulary token anywhere in the batch) falls back to the
/// per-sample loop so that only the offending samples are skipped, exactly
/// as the reference path skips them.
pub fn train_fitness_model<R: Rng + ?Sized>(
    kind: FitnessModelKind,
    samples: &[FitnessSample],
    program_length: usize,
    config: &TrainerConfig,
    rng: &mut R,
) -> TrainedFitnessModel {
    train_fitness_model_impl(kind, samples, program_length, config, rng, true)
}

/// The scalar per-sample training loop [`train_fitness_model`] is certified
/// against: forward, loss and backward run one sample at a time in minibatch
/// order. Kept public as the equivalence baseline (the batched trainer must
/// produce a byte-identical model); prefer [`train_fitness_model`], which is
/// the same trajectory on the batched kernels.
pub fn train_fitness_model_reference<R: Rng + ?Sized>(
    kind: FitnessModelKind,
    samples: &[FitnessSample],
    program_length: usize,
    config: &TrainerConfig,
    rng: &mut R,
) -> TrainedFitnessModel {
    train_fitness_model_impl(kind, samples, program_length, config, rng, false)
}

fn train_fitness_model_impl<R: Rng + ?Sized>(
    kind: FitnessModelKind,
    samples: &[FitnessSample],
    program_length: usize,
    config: &TrainerConfig,
    rng: &mut R,
    batched: bool,
) -> TrainedFitnessModel {
    let output_dim = match kind {
        FitnessModelKind::FunctionProbability => config.encoding.function_vocab_size(),
        _ => program_length + 1,
    };
    let mut net_config = config.net;
    net_config.output_dim = output_dim;
    let mut net = FitnessNet::new(net_config, config.encoding, rng);
    let mut optimizer = Adam::new(config.learning_rate);

    let mut indices: Vec<usize> = (0..samples.len()).collect();
    indices.shuffle(rng);
    let validation_len = ((samples.len() as f64) * config.validation_fraction).round() as usize;
    let (validation_idx, train_idx) = indices.split_at(validation_len.min(samples.len()));

    let mut epochs = Vec::with_capacity(config.epochs);
    let mut order: Vec<usize> = train_idx.to_vec();
    // Samples sharing a specification (every candidate of one target, in
    // every epoch, in training and validation sweeps alike) reuse one
    // encoding: specs are encoded once per distinct spec per training run,
    // not once per sample per epoch. Encoding is deterministic, so the
    // training trajectory is unchanged.
    let spec_encodings = SpecEncodingMap::new();
    for epoch in 1..=config.epochs {
        order.shuffle(rng);
        let mut total_loss = 0.0;
        let mut batch_count = 0usize;
        for chunk in order.chunks(config.batch_size.max(1)) {
            let mut encodings = Vec::with_capacity(chunk.len());
            for &idx in chunk {
                let sample = &samples[idx];
                let spec_encoding = spec_encodings.get_or_encode(&config.encoding, &sample.spec);
                let candidate_encoding = match kind {
                    FitnessModelKind::FunctionProbability => CandidateEncoding::spec_only(),
                    _ => encode_candidate(&config.encoding, &sample.spec, &sample.candidate),
                };
                encodings.push((spec_encoding, candidate_encoding));
            }
            total_loss += train_minibatch(kind, &mut net, samples, chunk, &encodings, batched);
            net.clip_grad_norm(config.grad_clip);
            optimizer.step(&mut net.params_mut());
            net.zero_grad();
            batch_count += 1;
        }
        let train_loss = if order.is_empty() {
            0.0
        } else {
            total_loss / order.len() as f64
        };
        let validation_accuracy = evaluate_accuracy(
            kind,
            &net,
            samples,
            validation_idx,
            &config.encoding,
            &spec_encodings,
        );
        epochs.push(EpochStats {
            epoch,
            train_loss,
            validation_accuracy,
        });
        let _ = batch_count;
    }

    let confusion = match kind {
        FitnessModelKind::FunctionProbability => None,
        _ => Some(confusion_matrix(
            kind,
            &net,
            samples,
            validation_idx,
            &config.encoding,
            program_length,
            &spec_encodings,
        )),
    };

    TrainedFitnessModel {
        kind,
        program_length,
        net,
        report: TrainingReport { epochs, confusion },
    }
}

fn evaluate_accuracy(
    kind: FitnessModelKind,
    net: &FitnessNet,
    samples: &[FitnessSample],
    indices: &[usize],
    encoding: &EncodingConfig,
    spec_encodings: &SpecEncodingMap,
) -> f64 {
    if indices.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut counted = 0usize;
    for &idx in indices {
        let sample = &samples[idx];
        let spec_encoding = spec_encodings.get_or_encode(encoding, &sample.spec);
        match kind {
            FitnessModelKind::FunctionProbability => {
                if let Ok(logits) = net.predict_spec(&spec_encoding) {
                    let probs: Vec<f32> = logits
                        .iter()
                        .map(|&z| netsyn_nn::activation::sigmoid(z))
                        .collect();
                    total += thresholded_accuracy(&probs, &sample.fp_target, 0.5);
                    counted += 1;
                }
            }
            _ => {
                let encoded = encode_candidate(encoding, &sample.spec, &sample.candidate);
                if let Ok(logits) = net.predict(&spec_encoding, &encoded) {
                    let predicted = argmax(&logits);
                    let actual = classification_label(kind, sample);
                    total += f64::from(u8::from(predicted == actual));
                    counted += 1;
                }
            }
        }
    }
    if counted == 0 {
        0.0
    } else {
        total / counted as f64
    }
}

/// Builds the validation confusion matrix of a trained CF/LCS model
/// (Figure 7(a)/(b)).
#[allow(clippy::too_many_arguments)]
fn confusion_matrix(
    kind: FitnessModelKind,
    net: &FitnessNet,
    samples: &[FitnessSample],
    indices: &[usize],
    encoding: &EncodingConfig,
    program_length: usize,
    spec_encodings: &SpecEncodingMap,
) -> ConfusionMatrix {
    let mut matrix = ConfusionMatrix::new(program_length + 1);
    for &idx in indices {
        let sample = &samples[idx];
        let spec_encoding = spec_encodings.get_or_encode(encoding, &sample.spec);
        let encoded = encode_candidate(encoding, &sample.spec, &sample.candidate);
        if let Ok(logits) = net.predict(&spec_encoding, &encoded) {
            let predicted = argmax(&logits).min(program_length);
            let actual = classification_label(kind, sample).min(program_length);
            matrix.record(actual, predicted);
        }
    }
    matrix
}

/// Evaluates a trained CF/LCS model on an arbitrary set of samples, returning
/// its confusion matrix.
#[must_use]
pub fn evaluate_confusion(
    model: &TrainedFitnessModel,
    samples: &[FitnessSample],
    encoding: &EncodingConfig,
) -> ConfusionMatrix {
    let indices: Vec<usize> = (0..samples.len()).collect();
    confusion_matrix(
        model.kind,
        &model.net,
        samples,
        &indices,
        encoding,
        model.program_length,
        &SpecEncodingMap::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tiny_trainer_config() -> TrainerConfig {
        let mut config = TrainerConfig::small();
        config.net = FitnessNetConfig {
            value_embed_dim: 4,
            encoder_hidden_dim: 6,
            function_embed_dim: 4,
            trace_hidden_dim: 6,
            example_hidden_dim: 8,
            head_hidden_dim: 8,
            output_dim: 1,
        };
        config.epochs = 2;
        config.batch_size = 8;
        config
    }

    fn tiny_dataset_config(length: usize) -> DatasetConfig {
        let mut config = DatasetConfig::for_length(length);
        config.num_target_programs = 8;
        config.examples_per_program = 2;
        config
    }

    #[test]
    fn trains_a_cf_model_end_to_end() {
        let mut r = rng(1);
        let samples = generate_dataset(
            &tiny_dataset_config(3),
            BalanceMetric::CommonFunctions,
            &mut r,
        )
        .unwrap();
        let model = train_fitness_model(
            FitnessModelKind::CommonFunctions,
            &samples,
            3,
            &tiny_trainer_config(),
            &mut r,
        );
        assert_eq!(model.kind, FitnessModelKind::CommonFunctions);
        assert_eq!(model.net.output_dim(), 4);
        assert_eq!(model.report.epochs.len(), 2);
        assert!(model.report.epochs.iter().all(|e| e.train_loss.is_finite()));
        let confusion = model.report.confusion.as_ref().unwrap();
        assert_eq!(confusion.classes(), 4);
        assert!(confusion.total() > 0);
    }

    #[test]
    fn trains_an_fp_model_end_to_end() {
        let mut r = rng(2);
        let samples = generate_fp_dataset(&tiny_dataset_config(3), &mut r).unwrap();
        let model = train_fitness_model(
            FitnessModelKind::FunctionProbability,
            &samples,
            3,
            &tiny_trainer_config(),
            &mut r,
        );
        assert_eq!(model.net.output_dim(), 41);
        assert!(model.report.confusion.is_none());
        assert!(model
            .report
            .epochs
            .iter()
            .all(|e| (0.0..=1.0).contains(&e.validation_accuracy)));
        // Even after a couple of tiny epochs the model should not be worse
        // than chance on the sparse multi-label targets.
        let final_acc = model.report.epochs.last().unwrap().validation_accuracy;
        assert!(final_acc > 0.4, "final FP accuracy {final_acc}");
    }

    #[test]
    fn training_loss_decreases_over_epochs() {
        let mut r = rng(3);
        let samples = generate_dataset(
            &tiny_dataset_config(3),
            BalanceMetric::CommonFunctions,
            &mut r,
        )
        .unwrap();
        let mut config = tiny_trainer_config();
        config.epochs = 6;
        config.learning_rate = 1e-2;
        config.batch_size = 4;
        let model = train_fitness_model(
            FitnessModelKind::CommonFunctions,
            &samples,
            3,
            &config,
            &mut r,
        );
        let first = model.report.epochs.first().unwrap().train_loss;
        let last = model.report.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "training loss should decrease: {first} -> {last}"
        );
    }

    #[test]
    fn spec_map_encodes_once_per_distinct_spec_across_epochs() {
        // The counting pattern behind the trainer's hoisted spec encoding:
        // epoch sweeps over shuffled samples (many samples share one target
        // program's spec) must encode each distinct spec exactly once in
        // total, not once per sample per epoch.
        let mut r = rng(8);
        let samples = generate_dataset(
            &tiny_dataset_config(3),
            BalanceMetric::CommonFunctions,
            &mut r,
        )
        .unwrap();
        let map = SpecEncodingMap::new();
        let encoding = EncodingConfig::new();
        let mut order: Vec<usize> = (0..samples.len()).collect();
        for _epoch in 0..3 {
            order.shuffle(&mut r);
            for &idx in &order {
                let _ = map.get_or_encode(&encoding, &samples[idx].spec);
            }
        }
        let distinct: std::collections::HashSet<_> = samples.iter().map(|s| &s.spec).collect();
        assert_eq!(map.encode_count(), distinct.len());
        assert!(
            distinct.len() < samples.len(),
            "samples of one target share a spec"
        );
    }

    #[test]
    fn batched_trainer_matches_reference_byte_for_byte() {
        // The batched minibatch path must reproduce the scalar per-sample
        // trajectory exactly — same weights, same loss curve, same report —
        // for both a classification head (CF, real traces) and the
        // trace-less FP head. JSON compares every f32 bit-faithfully.
        for fp in [false, true] {
            let make = |batched: bool| {
                let mut r = rng(11);
                let (kind, samples) = if fp {
                    (
                        FitnessModelKind::FunctionProbability,
                        generate_fp_dataset(&tiny_dataset_config(3), &mut r).unwrap(),
                    )
                } else {
                    (
                        FitnessModelKind::CommonFunctions,
                        generate_dataset(
                            &tiny_dataset_config(3),
                            BalanceMetric::CommonFunctions,
                            &mut r,
                        )
                        .unwrap(),
                    )
                };
                if batched {
                    train_fitness_model(kind, &samples, 3, &tiny_trainer_config(), &mut r)
                } else {
                    train_fitness_model_reference(kind, &samples, 3, &tiny_trainer_config(), &mut r)
                }
            };
            let batched = make(true);
            let reference = make(false);
            assert_eq!(
                serde_json::to_string(&batched).unwrap(),
                serde_json::to_string(&reference).unwrap(),
                "batched and reference trainers diverged (fp = {fp})"
            );
        }
    }

    #[test]
    fn training_is_deterministic_with_the_spec_memo() {
        // Memoized spec encodings are bit-identical to re-encoding, so two
        // identical training runs produce identical models and reports.
        let make = |seed: u64| {
            let mut r = rng(seed);
            let samples = generate_dataset(
                &tiny_dataset_config(3),
                BalanceMetric::CommonFunctions,
                &mut r,
            )
            .unwrap();
            train_fitness_model(
                FitnessModelKind::CommonFunctions,
                &samples,
                3,
                &tiny_trainer_config(),
                &mut r,
            )
        };
        assert_eq!(make(9), make(9));
    }

    #[test]
    fn model_save_and_load_round_trip() {
        let mut r = rng(4);
        let samples = generate_fp_dataset(&tiny_dataset_config(3), &mut r).unwrap();
        let mut config = tiny_trainer_config();
        config.epochs = 1;
        let model = train_fitness_model(
            FitnessModelKind::FunctionProbability,
            &samples,
            3,
            &config,
            &mut r,
        );
        let dir = std::env::temp_dir().join("netsyn_fitness_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fp_model.json");
        model.save_json(&path).unwrap();
        let loaded = TrainedFitnessModel::load_json(&path).unwrap();
        assert_eq!(loaded, model);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn evaluate_confusion_on_fresh_samples() {
        let mut r = rng(5);
        let samples = generate_dataset(
            &tiny_dataset_config(3),
            BalanceMetric::LongestCommonSubsequence,
            &mut r,
        )
        .unwrap();
        let mut config = tiny_trainer_config();
        config.epochs = 1;
        let model = train_fitness_model(
            FitnessModelKind::LongestCommonSubsequence,
            &samples,
            3,
            &config,
            &mut r,
        );
        let fresh = generate_dataset(
            &tiny_dataset_config(3),
            BalanceMetric::LongestCommonSubsequence,
            &mut r,
        )
        .unwrap();
        let confusion = evaluate_confusion(&model, &fresh, &config.encoding);
        assert_eq!(confusion.total() as usize, fresh.len());
    }
}
