//! Program-closeness metrics and output distances.
//!
//! These are the "ideal" quantities the learned fitness functions are trained
//! to predict (Section 4.2.1 of the paper): the number of common functions
//! (CF), the longest common subsequence (LCS), and — for the hand-crafted
//! baseline — the edit distance between candidate and target outputs.

use netsyn_dsl::{Function, Program, Value};

/// Number of common functions between two programs
/// (`|elems(Pa) ∩ elems(Pb)|`, multiset semantics).
///
/// For the paper's running example (Section 4.2.1) the target
/// `{FILTER(>0), MAP(*2), SORT, REVERSE}` and the candidate
/// `{FILTER(>0), MAP(*2), REVERSE, DROP}` share 3 functions.
#[must_use]
pub fn common_functions(a: &Program, b: &Program) -> usize {
    let mut remaining: Vec<Function> = b.functions().to_vec();
    let mut count = 0;
    for f in a.functions() {
        if let Some(pos) = remaining.iter().position(|g| g == f) {
            remaining.swap_remove(pos);
            count += 1;
        }
    }
    count
}

/// Length of the longest common subsequence of the two programs' function
/// sequences.
#[must_use]
pub fn longest_common_subsequence(a: &Program, b: &Program) -> usize {
    lcs_len(a.functions(), b.functions())
}

fn lcs_len<T: PartialEq>(a: &[T], b: &[T]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let mut prev = vec![0usize; b.len() + 1];
    let mut curr = vec![0usize; b.len() + 1];
    for ai in a {
        for (j, bj) in b.iter().enumerate() {
            curr[j + 1] = if ai == bj {
                prev[j] + 1
            } else {
                prev[j + 1].max(curr[j])
            };
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Levenshtein edit distance between two integer sequences.
#[must_use]
pub fn levenshtein(a: &[i64], b: &[i64]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, ai) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, bj) in b.iter().enumerate() {
            let cost = usize::from(ai != bj);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Edit distance between two DSL values, treating integers as one-element
/// sequences.
#[must_use]
pub fn output_edit_distance(a: &Value, b: &Value) -> usize {
    levenshtein(&a.to_tokens(), &b.to_tokens())
}

/// Normalized output similarity in `[0, 1]`: 1.0 for identical outputs,
/// approaching 0.0 as the edit distance approaches the longer length.
#[must_use]
pub fn output_similarity(a: &Value, b: &Value) -> f64 {
    let ta = a.to_tokens();
    let tb = b.to_tokens();
    let max_len = ta.len().max(tb.len());
    if max_len == 0 {
        return 1.0;
    }
    let d = levenshtein(&ta, &tb) as f64;
    (1.0 - d / max_len as f64).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, IntPredicate, MapOp};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn candidate() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Reverse,
            Function::Drop,
        ])
    }

    #[test]
    fn paper_example_cf_is_three() {
        assert_eq!(common_functions(&target(), &candidate()), 3);
        assert_eq!(common_functions(&candidate(), &target()), 3);
    }

    #[test]
    fn paper_example_lcs_is_two_or_three() {
        // The paper quotes LCS = 2 for its 5-statement variant that includes
        // the initial [int] marker; on the bare function sequences the LCS of
        // {FILTER, MAP, SORT, REVERSE} and {FILTER, MAP, REVERSE, DROP} is 3.
        assert_eq!(longest_common_subsequence(&target(), &candidate()), 3);
    }

    #[test]
    fn cf_uses_multiset_semantics() {
        let a = Program::new(vec![Function::Sort, Function::Sort, Function::Reverse]);
        let b = Program::new(vec![Function::Sort, Function::Head, Function::Sort]);
        // Two SORTs shared, not four.
        assert_eq!(common_functions(&a, &b), 2);
    }

    #[test]
    fn cf_bounds() {
        let t = target();
        assert_eq!(common_functions(&t, &t), t.len());
        let disjoint = Program::new(vec![Function::Head, Function::Sum, Function::Last]);
        assert_eq!(common_functions(&t, &disjoint), 0);
        assert_eq!(common_functions(&t, &Program::default()), 0);
    }

    #[test]
    fn lcs_respects_order() {
        let a = Program::new(vec![Function::Sort, Function::Reverse, Function::Sum]);
        let b = Program::new(vec![Function::Sum, Function::Reverse, Function::Sort]);
        // Only length-1 subsequences are common in order.
        assert_eq!(longest_common_subsequence(&a, &b), 1);
        assert_eq!(longest_common_subsequence(&a, &a), 3);
        assert_eq!(longest_common_subsequence(&a, &Program::default()), 0);
    }

    #[test]
    fn lcs_never_exceeds_cf() {
        // LCS is an ordered refinement of CF: every common subsequence uses
        // common functions.
        let programs = [target(), candidate(), Program::new(vec![Function::Sort])];
        for a in &programs {
            for b in &programs {
                assert!(longest_common_subsequence(a, b) <= common_functions(a, b));
            }
        }
    }

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein(&[], &[]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[]), 3);
        assert_eq!(levenshtein(&[], &[1]), 1);
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(levenshtein(&[1, 2, 3], &[1, 3]), 1);
        assert_eq!(levenshtein(&[1, 2, 3], &[4, 5, 6]), 3);
        assert_eq!(levenshtein(&[1, 2, 3], &[2, 3, 4]), 2);
    }

    #[test]
    fn output_edit_distance_handles_mixed_types() {
        assert_eq!(
            output_edit_distance(&Value::Int(5), &Value::List(vec![5])),
            0
        );
        assert_eq!(
            output_edit_distance(&Value::Int(5), &Value::List(vec![1, 2, 3])),
            3
        );
    }

    #[test]
    fn output_similarity_range() {
        let a = Value::List(vec![1, 2, 3, 4]);
        assert_eq!(output_similarity(&a, &a), 1.0);
        let empty = Value::List(vec![]);
        assert_eq!(output_similarity(&empty, &empty), 1.0);
        let b = Value::List(vec![9, 9, 9, 9]);
        assert_eq!(output_similarity(&a, &b), 0.0);
        let c = Value::List(vec![1, 2, 3, 9]);
        assert!((output_similarity(&a, &c) - 0.75).abs() < 1e-12);
    }
}
