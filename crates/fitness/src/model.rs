//! The neural fitness-function model (NN-FF), following Figure 2 of the
//! paper.
//!
//! For every input-output example, an LSTM encoder summarizes the example's
//! `input, SEP, output` token sequence, a second LSTM encoder summarizes each
//! execution-trace value, the per-statement (function embedding ‖ trace
//! encoding) vectors are combined by a trace LSTM, and the per-example
//! vectors are combined by an example-level LSTM whose final hidden state is
//! classified by a fully connected head.
//!
//! The same architecture serves all three fitness heads:
//! * CF / LCS — a softmax classifier over `0..=L` (program length `L`);
//! * FP — 41 sigmoid outputs, one per DSL function (the trace inputs are
//!   simply absent).

use crate::encoding::{CandidateEncoding, EncodingConfig, SpecEncoding, TraceEncodingCache};
use netsyn_nn::{
    Activation, Embedding, FxHashMap, Lstm, LstmBatchCache, LstmCache, Matrix, Mlp, MlpBatchCache,
    MlpCache, NnError, Param, Parameterized, SequenceBatch, SequenceEncoder,
    SequenceEncoderBatchCache, SequenceEncoderCache, SequenceTrie, TimeMajorBatch,
};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Hyper-parameters of the fitness network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FitnessNetConfig {
    /// Token-embedding dimension for value tokens.
    pub value_embed_dim: usize,
    /// Hidden dimension of the IO and trace-step encoders.
    pub encoder_hidden_dim: usize,
    /// Embedding dimension for DSL-function tokens.
    pub function_embed_dim: usize,
    /// Hidden dimension of the trace-level LSTM.
    pub trace_hidden_dim: usize,
    /// Hidden dimension of the example-level LSTM.
    pub example_hidden_dim: usize,
    /// Hidden width of the fully connected head.
    pub head_hidden_dim: usize,
    /// Number of network outputs (classes or sigmoid units).
    pub output_dim: usize,
}

impl FitnessNetConfig {
    /// A compact configuration suitable for CPU training, with the given
    /// number of outputs.
    #[must_use]
    pub fn small(output_dim: usize) -> Self {
        FitnessNetConfig {
            value_embed_dim: 16,
            encoder_hidden_dim: 24,
            function_embed_dim: 12,
            trace_hidden_dim: 24,
            example_hidden_dim: 32,
            head_hidden_dim: 32,
            output_dim,
        }
    }
}

/// The neural fitness-function model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitnessNet {
    config: FitnessNetConfig,
    encoding: EncodingConfig,
    io_encoder: SequenceEncoder,
    step_encoder: SequenceEncoder,
    function_embedding: Embedding,
    trace_lstm: Lstm,
    example_lstm: Lstm,
    head: Mlp,
}

/// Cache of one [`FitnessNet::forward`] pass, required by
/// [`FitnessNet::backward`].
#[derive(Debug, Clone)]
pub struct FitnessNetCache {
    example_caches: Vec<ExampleCache>,
    example_lstm_cache: LstmCache,
    head_cache: MlpCache,
}

#[derive(Debug, Clone)]
struct ExampleCache {
    io_cache: SequenceEncoderCache,
    step_caches: Vec<SequenceEncoderCache>,
    step_functions: Vec<usize>,
    trace_cache: LstmCache,
}

/// Cache of one [`FitnessNet::forward_batch_train`] pass, required by
/// [`FitnessNet::backward_batch`].
///
/// Sequences are flattened lexicographically — `(sample, example)` for the
/// IO encoder, trace LSTM and example rows, `(sample, example, step)` for the
/// step encoder and function embedding — which is exactly the order the
/// per-sample reference path visits them, so every batched component can
/// replay its parameter accumulation bit-identically.
#[derive(Debug, Clone)]
pub struct FitnessNetBatchCache {
    io_cache: SequenceEncoderBatchCache,
    step_cache: SequenceEncoderBatchCache,
    /// DSL function of each trace step, flattened `(sample, example, step)`.
    step_functions: Vec<usize>,
    /// Steps per `(sample, example)` pair, flattened.
    steps_per_pair: Vec<usize>,
    /// Examples per sample (`spec.len()` of each sample, in input order).
    examples_per_sample: Vec<usize>,
    trace_batch: TimeMajorBatch,
    trace_lstm_cache: LstmBatchCache,
    example_batch: TimeMajorBatch,
    example_lstm_cache: LstmBatchCache,
    head_cache: MlpBatchCache,
}

impl FitnessNet {
    /// Creates a randomly initialized fitness network.
    #[must_use]
    pub fn new<R: Rng + ?Sized>(
        config: FitnessNetConfig,
        encoding: EncodingConfig,
        rng: &mut R,
    ) -> Self {
        let io_encoder = SequenceEncoder::new(
            encoding.value_vocab_size(),
            config.value_embed_dim,
            config.encoder_hidden_dim,
            rng,
        );
        let step_encoder = SequenceEncoder::new(
            encoding.value_vocab_size(),
            config.value_embed_dim,
            config.encoder_hidden_dim,
            rng,
        );
        let function_embedding = Embedding::new(
            encoding.function_vocab_size(),
            config.function_embed_dim,
            rng,
        );
        let trace_lstm = Lstm::new(
            config.function_embed_dim + config.encoder_hidden_dim,
            config.trace_hidden_dim,
            rng,
        );
        let example_lstm = Lstm::new(
            config.encoder_hidden_dim + config.trace_hidden_dim,
            config.example_hidden_dim,
            rng,
        );
        let head = Mlp::new(
            &[
                config.example_hidden_dim,
                config.head_hidden_dim,
                config.output_dim,
            ],
            Activation::Relu,
            rng,
        );
        FitnessNet {
            config,
            encoding,
            io_encoder,
            step_encoder,
            function_embedding,
            trace_lstm,
            example_lstm,
            head,
        }
    }

    /// The network's hyper-parameters.
    #[must_use]
    pub fn config(&self) -> &FitnessNetConfig {
        &self.config
    }

    /// The token-encoding configuration the network was built for.
    #[must_use]
    pub fn encoding(&self) -> &EncodingConfig {
        &self.encoding
    }

    /// Number of outputs (classes or sigmoid units).
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.config.output_dim
    }

    /// A fast fingerprint of every parameter's current bit pattern.
    ///
    /// Fitness functions fold this into their
    /// [`cache_key`](crate::FitnessFunction::cache_key) so that shared
    /// caches ([`crate::FitnessCache`]'s score and trace-encoding shards)
    /// can never alias two differently-trained models of the same kind —
    /// the display name alone (`"nn-CF"`, …) is identical for every trained
    /// CF model. Deterministic across runs (FxHash over the raw `f32` bits
    /// in stable parameter order).
    #[must_use]
    pub fn weight_fingerprint(&mut self) -> u64 {
        use std::hash::Hasher;
        let mut hasher = netsyn_nn::FxHasher::default();
        for param in self.params_mut() {
            hasher.write_usize(param.value.rows());
            hasher.write_usize(param.value.cols());
            for &w in param.value.data() {
                hasher.write_u32(w.to_bits());
            }
        }
        hasher.finish()
    }

    /// Forward pass over one candidate against a shared specification
    /// encoding, returning the raw output logits and the cache needed for
    /// [`FitnessNet::backward`].
    ///
    /// The specification half is passed separately (see
    /// [`crate::encoding::encode_spec`]) so callers scoring many candidates
    /// against one spec share a single encoding zero-copy.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token exceeds the
    /// configured vocabularies (this indicates an encoding/config mismatch).
    pub fn forward(
        &self,
        spec: &SpecEncoding,
        candidate: &CandidateEncoding,
    ) -> Result<(Vec<f32>, FitnessNetCache), NnError> {
        let mut example_vectors = Vec::with_capacity(spec.len());
        let mut example_caches = Vec::with_capacity(spec.len());
        for (index, io_tokens) in spec.io_tokens().iter().enumerate() {
            let steps = candidate.trace(index);
            let (io_hidden, io_cache) = self.io_encoder.forward(io_tokens)?;
            let mut step_inputs = Vec::with_capacity(steps.len());
            let mut step_caches = Vec::with_capacity(steps.len());
            let mut step_functions = Vec::with_capacity(steps.len());
            for step in steps {
                let (step_hidden, step_cache) = self.step_encoder.forward(&step.value_tokens)?;
                let function_vec = self.function_embedding.lookup(step.function)?;
                let mut combined = function_vec;
                combined.extend_from_slice(&step_hidden);
                step_inputs.push(combined);
                step_caches.push(step_cache);
                step_functions.push(step.function);
            }
            let (trace_hidden, trace_cache) = self.trace_lstm.forward(&step_inputs);
            let mut example_vec = io_hidden;
            example_vec.extend_from_slice(&trace_hidden);
            example_vectors.push(example_vec);
            example_caches.push(ExampleCache {
                io_cache,
                step_caches,
                step_functions,
                trace_cache,
            });
        }
        let (summary, example_lstm_cache) = self.example_lstm.forward(&example_vectors);
        let (logits, head_cache) = self.head.forward(&summary);
        Ok((
            logits,
            FitnessNetCache {
                example_caches,
                example_lstm_cache,
                head_cache,
            },
        ))
    }

    /// Convenience forward pass that discards the cache.
    ///
    /// # Errors
    ///
    /// Same as [`FitnessNet::forward`].
    pub fn predict(
        &self,
        spec: &SpecEncoding,
        candidate: &CandidateEncoding,
    ) -> Result<Vec<f32>, NnError> {
        self.forward(spec, candidate).map(|(logits, _)| logits)
    }

    /// Forward pass over the specification alone (the FP head's input — no
    /// candidate, no traces).
    ///
    /// # Errors
    ///
    /// Same as [`FitnessNet::forward`].
    pub fn predict_spec(&self, spec: &SpecEncoding) -> Result<Vec<f32>, NnError> {
        self.predict(spec, &CandidateEncoding::spec_only())
    }

    /// Batched inference over many candidates sharing one specification
    /// encoding — the hot path when a whole GA population is scored per
    /// generation.
    ///
    /// All four network stages run over the entire batch at once: the IO
    /// encoder sees the shared specification exactly once (candidates carry
    /// no IO tokens at all, so there is nothing to deduplicate), the
    /// trace-step encoder processes every *distinct* trace value of every
    /// candidate in one batched call, and the trace and example LSTMs step
    /// all sequences together over flat row-major buffers (see
    /// [`Lstm::forward_batch_flat`]). Returns one logit vector per
    /// candidate, in input order, bit-identical to per-candidate
    /// [`FitnessNet::predict`] calls.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token of any candidate is
    /// outside the configured vocabularies. Unlike the per-candidate path
    /// the whole batch fails, so callers that need per-candidate error
    /// isolation should fall back to [`FitnessNet::predict`] on error.
    pub fn predict_batch(
        &self,
        spec: &SpecEncoding,
        candidates: &[CandidateEncoding],
    ) -> Result<Vec<Vec<f32>>, NnError> {
        self.predict_batch_with(spec, candidates, &TraceEncodingCache::new())
    }

    /// [`FitnessNet::predict_batch`] with a persistent [`TraceEncodingCache`]:
    /// trace values whose step-encoder hidden state was computed by an
    /// earlier batch — a previous GA generation, or a previous run of the
    /// same task sharing the cache — are served from the memo, and only the
    /// genuinely new values run through the step encoder.
    ///
    /// The step encoder is a batch-independent function of each token
    /// sequence (the trie-batched LSTM is bit-identical to per-sequence
    /// calls), so a warm cache returns bit-identical logits; `trace_cache`
    /// must be reserved to this network's weights (see
    /// [`TraceEncodingCache`]).
    ///
    /// # Errors
    ///
    /// Same as [`FitnessNet::predict_batch`]. Nothing is cached from a
    /// failed call.
    pub fn predict_batch_with(
        &self,
        spec: &SpecEncoding,
        candidates: &[CandidateEncoding],
        trace_cache: &TraceEncodingCache,
    ) -> Result<Vec<Vec<f32>>, NnError> {
        if candidates.is_empty() {
            return Ok(Vec::new());
        }
        // Stage 1: encode the shared specification once for the whole batch.
        let io_refs: Vec<&[usize]> = spec.io_tokens().iter().map(Vec::as_slice).collect();
        let io_hidden = self.io_encoder.forward_batch(&io_refs)?;

        // Stage 2: encode every *distinct* trace value once (candidate
        // traces repeat heavily — empty lists, shared intermediate values —
        // and the encoder is a deterministic function of the tokens).
        let mut step_unique: Vec<&[usize]> = Vec::new();
        let mut step_id_of: FxHashMap<&[usize], usize> = FxHashMap::default();
        let step_ids: Vec<usize> = candidates
            .iter()
            .flat_map(|candidate| candidate.traces().iter())
            .flat_map(|trace| trace.iter())
            .map(|step| {
                *step_id_of
                    .entry(step.value_tokens.as_slice())
                    .or_insert_with(|| {
                        step_unique.push(step.value_tokens.as_slice());
                        step_unique.len() - 1
                    })
            })
            .collect();
        // Serve values the cache has already encoded (striped lookups, one
        // lock per touched stripe); run the step encoder only over the
        // misses — outside any lock — then publish the fresh hidden states
        // for future batches. Publication is first-write-wins, so if a
        // concurrent batch encoded the same value we consume the canonical
        // stored buffer (bit-identical either way).
        let mut step_hidden: Vec<Option<Arc<[f32]>>> = trace_cache.get_many(&step_unique);
        let missing: Vec<usize> = step_hidden
            .iter()
            .enumerate()
            .filter_map(|(index, slot)| slot.is_none().then_some(index))
            .collect();
        if !missing.is_empty() {
            let miss_tokens: Vec<&[usize]> = missing.iter().map(|&i| step_unique[i]).collect();
            let computed = self.step_encoder.forward_batch(&miss_tokens)?;
            trace_cache.record_encodes(missing.len());
            let entries: Vec<(&[usize], Arc<[f32]>)> = missing
                .iter()
                .zip(computed)
                .map(|(&index, hidden)| (step_unique[index], Arc::<[f32]>::from(hidden)))
                .collect();
            let canonical = trace_cache.publish_many(entries);
            for (&index, hidden) in missing.iter().zip(canonical) {
                step_hidden[index] = Some(hidden);
            }
        }

        // Stage 3: one (function embedding ‖ step encoding) sequence per
        // (candidate, example), combined by the trace LSTM over a
        // prefix-sharing trie: candidates that open with the same statements
        // and trace values (common in a GA population) share those steps'
        // LSTM work outright. Nodes are keyed by (function, interned trace
        // value id), so equal keys imply bit-identical input rows.
        let func_dim = self.config.function_embed_dim;
        let enc_dim = self.config.encoder_hidden_dim;
        let mut trace_trie = SequenceTrie::new(func_dim + enc_dim);
        let mut flat_step = 0usize;
        for candidate in candidates {
            for example in 0..spec.len() {
                trace_trie.begin_sequence();
                for step in candidate.trace(example) {
                    let value_id = step_ids[flat_step];
                    flat_step += 1;
                    debug_assert!(value_id < u32::MAX as usize);
                    let key = ((step.function as u64) << 32) | value_id as u64;
                    if let Some(row) = trace_trie.push_step(key) {
                        row[..func_dim]
                            .copy_from_slice(self.function_embedding.row(step.function)?);
                        let hidden = step_hidden[value_id]
                            .as_deref()
                            .expect("every distinct trace value was encoded above");
                        row[func_dim..].copy_from_slice(hidden);
                    }
                }
            }
        }
        let trace_hidden = self.trace_lstm.forward_batch_trie(&trace_trie);

        // Stage 4: one (io encoding ‖ trace encoding) sequence per
        // candidate, also flat, combined by the example LSTM over the whole
        // batch. The io encodings are the shared spec rows — referenced per
        // candidate, never re-encoded.
        let example_dim = enc_dim + self.config.trace_hidden_dim;
        let mut example_batch = SequenceBatch::with_capacity(
            example_dim,
            candidates.len() * spec.len(),
            candidates.len(),
        );
        let mut flat_example = 0usize;
        for _candidate in candidates {
            example_batch.begin_sequence();
            for io_h in io_hidden.iter().take(spec.len()) {
                let row = example_batch.push_row();
                row[..enc_dim].copy_from_slice(io_h);
                row[enc_dim..].copy_from_slice(&trace_hidden[flat_example]);
                flat_example += 1;
            }
        }
        let summaries = self.example_lstm.forward_batch_flat(&example_batch);

        // Stage 5: classify all summaries with one batched head pass.
        let mut summary_mat = Matrix::zeros(candidates.len(), self.config.example_hidden_dim);
        for (row, summary) in summaries.iter().enumerate() {
            summary_mat.row_mut(row).copy_from_slice(summary);
        }
        let logits = self.head.forward_batch(&summary_mat);
        Ok((0..candidates.len())
            .map(|row| logits.row(row).to_vec())
            .collect())
    }

    /// Batched training forward pass over many `(spec, candidate)` samples —
    /// the minibatch path of the trainer. All four network stages run over
    /// the whole batch at once on the gather-free time-major kernels
    /// ([`Lstm::forward_batch_train`], [`Mlp::forward_batch_train`]).
    /// Returns one logit vector per sample, in input order, bit-identical to
    /// per-sample [`FitnessNet::forward`] calls, plus the cache
    /// [`FitnessNet::backward_batch`] consumes.
    ///
    /// Unlike [`FitnessNet::predict_batch`] nothing is deduplicated: training
    /// needs one gradient contribution per occurrence, so repeated specs or
    /// trace values are encoded repeatedly on purpose.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::VocabOutOfRange`] if any token of any sample is out
    /// of range. The whole batch fails; callers needing per-sample error
    /// isolation (the trainer's skip-on-error contract) should fall back to
    /// the per-sample path for the failing batch.
    pub fn forward_batch_train(
        &self,
        samples: &[(&SpecEncoding, &CandidateEncoding)],
    ) -> Result<(Vec<Vec<f32>>, FitnessNetBatchCache), NnError> {
        let func_dim = self.config.function_embed_dim;
        let enc_dim = self.config.encoder_hidden_dim;

        // Flatten the sample structure lexicographically: (sample, example)
        // io/trace sequences and (sample, example, step) trace-value
        // sequences, mirroring the loop order of the per-sample path.
        let mut examples_per_sample = Vec::with_capacity(samples.len());
        let mut io_seqs: Vec<&[usize]> = Vec::new();
        let mut step_seqs: Vec<&[usize]> = Vec::new();
        let mut step_functions: Vec<usize> = Vec::new();
        let mut steps_per_pair: Vec<usize> = Vec::new();
        for (spec, candidate) in samples {
            examples_per_sample.push(spec.len());
            for (example, io_tokens) in spec.io_tokens().iter().enumerate() {
                io_seqs.push(io_tokens);
                let steps = candidate.trace(example);
                steps_per_pair.push(steps.len());
                for step in steps {
                    step_seqs.push(&step.value_tokens);
                    step_functions.push(step.function);
                }
            }
        }

        let (io_hidden, io_cache) = self.io_encoder.forward_batch_train(&io_seqs)?;
        let (step_hidden, step_cache) = self.step_encoder.forward_batch_train(&step_seqs)?;

        // Trace LSTM inputs: one (function embedding ‖ step encoding)
        // sequence per (sample, example).
        let mut trace_flat = SequenceBatch::with_capacity(
            func_dim + enc_dim,
            step_functions.len(),
            steps_per_pair.len(),
        );
        let mut flat_step = 0usize;
        for &steps in &steps_per_pair {
            trace_flat.begin_sequence();
            for _ in 0..steps {
                let row = trace_flat.push_row();
                row[..func_dim]
                    .copy_from_slice(self.function_embedding.row(step_functions[flat_step])?);
                row[func_dim..].copy_from_slice(&step_hidden[flat_step]);
                flat_step += 1;
            }
        }
        let trace_batch = TimeMajorBatch::from_batch(&trace_flat);
        let (trace_hidden, trace_lstm_cache) = self.trace_lstm.forward_batch_train(&trace_batch);

        // Example LSTM inputs: one (io encoding ‖ trace encoding) sequence
        // per sample.
        let example_dim = enc_dim + self.config.trace_hidden_dim;
        let mut example_flat =
            SequenceBatch::with_capacity(example_dim, steps_per_pair.len(), samples.len());
        let mut flat_pair = 0usize;
        for &examples in &examples_per_sample {
            example_flat.begin_sequence();
            for _ in 0..examples {
                let row = example_flat.push_row();
                row[..enc_dim].copy_from_slice(&io_hidden[flat_pair]);
                row[enc_dim..].copy_from_slice(&trace_hidden[flat_pair]);
                flat_pair += 1;
            }
        }
        let example_batch = TimeMajorBatch::from_batch(&example_flat);
        let (summaries, example_lstm_cache) = self.example_lstm.forward_batch_train(&example_batch);

        // Classify all summaries with one batched head pass.
        let mut summary_mat = Matrix::zeros(samples.len(), self.config.example_hidden_dim);
        for (row, summary) in summaries.iter().enumerate() {
            summary_mat.row_mut(row).copy_from_slice(summary);
        }
        let (logits, head_cache) = self.head.forward_batch_train(&summary_mat);
        Ok((
            (0..samples.len()).map(|r| logits.row(r).to_vec()).collect(),
            FitnessNetBatchCache {
                io_cache,
                step_cache,
                step_functions,
                steps_per_pair,
                examples_per_sample,
                trace_batch,
                trace_lstm_cache,
                example_batch,
                example_lstm_cache,
                head_cache,
            },
        ))
    }

    /// Batched backward pass: `grad_logits[s]` is the loss gradient on
    /// sample `s`'s logits. Accumulates gradients in every component,
    /// **bit-identical** to looping [`FitnessNet::backward`] over the
    /// samples in input order: each batched component replays its parameter
    /// accumulation in the flattened lexicographic sequence order of the
    /// cache, which is the per-sample visit order — and contributions to
    /// *different* parameters commute, so the coarser interleaving of the
    /// per-sample path (io, trace, steps of sample 0, then sample 1, …)
    /// yields the same bits per parameter.
    pub fn backward_batch(&mut self, cache: &FitnessNetBatchCache, grad_logits: &[Vec<f32>]) {
        assert_eq!(
            grad_logits.len(),
            cache.examples_per_sample.len(),
            "one logit gradient per sample"
        );
        let mut grad_mat = Matrix::zeros(grad_logits.len(), self.config.output_dim);
        for (row, grad) in grad_logits.iter().enumerate() {
            grad_mat.row_mut(row).copy_from_slice(grad);
        }
        let grad_summary = self.head.backward_batch(&cache.head_cache, &grad_mat);
        let grad_summaries: Vec<Vec<f32>> = (0..grad_summary.rows())
            .map(|r| grad_summary.row(r).to_vec())
            .collect();
        let example_grads = self.example_lstm.backward_batch(
            &cache.example_batch,
            &cache.example_lstm_cache,
            &grad_summaries,
        );

        // Split each (sample, example) gradient row into its io-encoder and
        // trace-LSTM halves, in flat order.
        let io_dim = self.config.encoder_hidden_dim;
        let func_dim = self.config.function_embed_dim;
        let pairs = cache.steps_per_pair.len();
        let mut grad_io: Vec<Vec<f32>> = Vec::with_capacity(pairs);
        let mut grad_trace: Vec<Vec<f32>> = Vec::with_capacity(pairs);
        for (sample, &examples) in cache.examples_per_sample.iter().enumerate() {
            let slot = cache.example_batch.slot_of(sample);
            for example in 0..examples {
                let row = example_grads.row(example, slot);
                grad_io.push(row[..io_dim].to_vec());
                grad_trace.push(row[io_dim..].to_vec());
            }
        }
        self.io_encoder.backward_batch(&cache.io_cache, &grad_io);
        let step_grads = self.trace_lstm.backward_batch(
            &cache.trace_batch,
            &cache.trace_lstm_cache,
            &grad_trace,
        );

        // Split each (sample, example, step) gradient row into its function
        // embedding and step-encoder halves; the embedding scatter runs in
        // flat order — the per-sample order.
        let mut grad_step_hidden: Vec<Vec<f32>> = Vec::with_capacity(cache.step_functions.len());
        let mut flat_step = 0usize;
        for (pair, &steps) in cache.steps_per_pair.iter().enumerate() {
            let slot = cache.trace_batch.slot_of(pair);
            for step in 0..steps {
                let row = step_grads.row(step, slot);
                self.function_embedding
                    .backward_row(cache.step_functions[flat_step], &row[..func_dim]);
                grad_step_hidden.push(row[func_dim..].to_vec());
                flat_step += 1;
            }
        }
        self.step_encoder
            .backward_batch(&cache.step_cache, &grad_step_hidden);
    }

    /// Backward pass: accumulates gradients in every component given the
    /// gradient of the loss with respect to the output logits.
    pub fn backward(&mut self, cache: &FitnessNetCache, grad_logits: &[f32]) {
        let grad_summary = self.head.backward(&cache.head_cache, grad_logits);
        let example_grads = self
            .example_lstm
            .backward(&cache.example_lstm_cache, &grad_summary);
        let io_dim = self.config.encoder_hidden_dim;
        let func_dim = self.config.function_embed_dim;
        for (example_cache, example_grad) in cache.example_caches.iter().zip(example_grads.iter()) {
            let (grad_io, grad_trace) = example_grad.split_at(io_dim);
            self.io_encoder.backward(&example_cache.io_cache, grad_io);
            let step_grads = self
                .trace_lstm
                .backward(&example_cache.trace_cache, grad_trace);
            for ((step_cache, &function), step_grad) in example_cache
                .step_caches
                .iter()
                .zip(example_cache.step_functions.iter())
                .zip(step_grads.iter())
            {
                let (grad_function, grad_step_hidden) = step_grad.split_at(func_dim);
                self.function_embedding
                    .backward(&[function], &[grad_function.to_vec()]);
                self.step_encoder.backward(step_cache, grad_step_hidden);
            }
        }
    }
}

impl Parameterized for FitnessNet {
    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.io_encoder.params_mut();
        params.extend(self.step_encoder.params_mut());
        params.extend(self.function_embedding.params_mut());
        params.extend(self.trace_lstm.params_mut());
        params.extend(self.example_lstm.params_mut());
        params.extend(self.head.params_mut());
        params
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{encode_candidate, encode_spec};
    use netsyn_dsl::{Function, IntPredicate, IoSpec, MapOp, Program, Value};
    use netsyn_nn::loss::softmax_cross_entropy;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(17)
    }

    fn tiny_config(output_dim: usize) -> FitnessNetConfig {
        FitnessNetConfig {
            value_embed_dim: 4,
            encoder_hidden_dim: 5,
            function_embed_dim: 3,
            trace_hidden_dim: 5,
            example_hidden_dim: 6,
            head_hidden_dim: 8,
            output_dim,
        }
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, 2, 3])],
            ],
        )
    }

    #[test]
    fn forward_produces_requested_output_dim() {
        let net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        assert_eq!(net.output_dim(), 6);
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let candidate = encode_candidate(net.encoding(), &spec(), &target());
        let logits = net.predict(&spec_encoding, &candidate).unwrap();
        assert_eq!(logits.len(), 6);
        assert!(logits.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn forward_works_without_traces() {
        // The FP head encodes only the specification.
        let net = FitnessNet::new(tiny_config(41), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let logits = net.predict_spec(&spec_encoding).unwrap();
        assert_eq!(logits.len(), 41);
    }

    #[test]
    fn different_candidates_get_different_logits() {
        let net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let a = encode_candidate(net.encoding(), &spec(), &target());
        let other = Program::new(vec![Function::Head, Function::Sum, Function::Last]);
        let b = encode_candidate(net.encoding(), &spec(), &other);
        assert_ne!(
            net.predict(&spec_encoding, &a).unwrap(),
            net.predict(&spec_encoding, &b).unwrap()
        );
    }

    #[test]
    fn batched_predict_is_bit_identical_to_single() {
        let net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        let candidates = [
            target(),
            Program::new(vec![Function::Head, Function::Sum, Function::Last]),
            Program::default(),
            target(), // duplicate: must get the identical logits
        ];
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let encodings: Vec<CandidateEncoding> = candidates
            .iter()
            .map(|c| encode_candidate(net.encoding(), &spec(), c))
            .collect();
        let batched = net.predict_batch(&spec_encoding, &encodings).unwrap();
        assert_eq!(batched.len(), encodings.len());
        for (candidate, batch_logits) in encodings.iter().zip(batched.iter()) {
            let single = net.predict(&spec_encoding, candidate).unwrap();
            assert_eq!(batch_logits.len(), single.len());
            for (a, b) in batch_logits.iter().zip(single.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert!(net.predict_batch(&spec_encoding, &[]).unwrap().is_empty());
    }

    #[test]
    fn warm_trace_cache_is_bit_identical_and_skips_reencoding() {
        let net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let candidates = [
            target(),
            Program::new(vec![Function::Head, Function::Sum, Function::Last]),
            Program::default(),
        ];
        let encodings: Vec<CandidateEncoding> = candidates
            .iter()
            .map(|c| encode_candidate(net.encoding(), &spec(), c))
            .collect();
        let cache = TraceEncodingCache::new();
        let cold = net
            .predict_batch_with(&spec_encoding, &encodings, &cache)
            .unwrap();
        let cold_encodes = cache.encode_count();
        assert!(cold_encodes > 0, "the cold batch encodes its trace values");
        assert_eq!(cache.len(), cold_encodes);
        // The warm pass re-encodes nothing and returns the same bits.
        let warm = net
            .predict_batch_with(&spec_encoding, &encodings, &cache)
            .unwrap();
        assert_eq!(cache.encode_count(), cold_encodes);
        for (a_row, b_row) in cold.iter().zip(warm.iter()) {
            for (a, b) in a_row.iter().zip(b_row.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // A partially overlapping batch encodes only its new values, still
        // bit-identically to the uncached path.
        let fresh_program = Program::new(vec![Function::Reverse, Function::Sort]);
        let mixed: Vec<CandidateEncoding> = [candidates[0].clone(), fresh_program]
            .iter()
            .map(|c| encode_candidate(net.encoding(), &spec(), c))
            .collect();
        let mixed_out = net
            .predict_batch_with(&spec_encoding, &mixed, &cache)
            .unwrap();
        assert!(cache.encode_count() > cold_encodes);
        let uncached = net.predict_batch(&spec_encoding, &mixed).unwrap();
        for (a_row, b_row) in mixed_out.iter().zip(uncached.iter()) {
            for (a, b) in a_row.iter().zip(b_row.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn batched_predict_handles_spec_only_samples() {
        // The FP head has no traces; batching must cope with trace-less
        // candidates mixed into the same call.
        let net = FitnessNet::new(tiny_config(41), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let with_trace = encode_candidate(net.encoding(), &spec(), &target());
        let spec_only = CandidateEncoding::spec_only();
        let batched = net
            .predict_batch(&spec_encoding, &[spec_only.clone(), with_trace.clone()])
            .unwrap();
        for (candidate, batch_logits) in [spec_only, with_trace].iter().zip(batched.iter()) {
            let single = net.predict(&spec_encoding, candidate).unwrap();
            for (a, b) in batch_logits.iter().zip(single.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        // predict_spec is exactly the spec-only forward pass.
        let fp = net.predict_spec(&spec_encoding).unwrap();
        let manual = net
            .predict(&spec_encoding, &CandidateEncoding::spec_only())
            .unwrap();
        assert_eq!(fp, manual);
    }

    #[test]
    fn batched_train_path_is_bit_identical_to_per_sample() {
        let mut net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        // Two specs with different example counts (ragged example LSTM
        // batching) and a spec-only sample (empty traces everywhere).
        let spec_a = spec();
        let spec_b = IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![4, -1])],
                vec![Value::List(vec![7])],
                vec![Value::List(vec![0, 0, 9])],
            ],
        );
        let enc_a = encode_spec(net.encoding(), &spec_a);
        let enc_b = encode_spec(net.encoding(), &spec_b);
        let other = Program::new(vec![Function::Head, Function::Sum, Function::Last]);
        let cands = [
            encode_candidate(net.encoding(), &spec_a, &target()),
            encode_candidate(net.encoding(), &spec_b, &other),
            CandidateEncoding::spec_only(),
            encode_candidate(net.encoding(), &spec_a, &target()),
        ];
        let samples: Vec<(&SpecEncoding, &CandidateEncoding)> = vec![
            (&enc_a, &cands[0]),
            (&enc_b, &cands[1]),
            (&enc_a, &cands[2]),
            (&enc_a, &cands[3]),
        ];

        let (batched_logits, batch_cache) = net.forward_batch_train(&samples).unwrap();
        let grad_logits: Vec<Vec<f32>> = batched_logits
            .iter()
            .map(|logits| softmax_cross_entropy(logits, 2).1)
            .collect();

        // Reference: per-sample forward/backward in input order.
        let mut reference = net.clone();
        reference.zero_grad();
        for (s, ((spec_enc, cand), grad)) in samples.iter().zip(grad_logits.iter()).enumerate() {
            let (logits, cache) = reference.forward(spec_enc, cand).unwrap();
            for (a, b) in batched_logits[s].iter().zip(logits.iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "logits of sample {s}");
            }
            reference.backward(&cache, grad);
        }

        net.zero_grad();
        net.backward_batch(&batch_cache, &grad_logits);
        for (p_batched, p_ref) in net.params_mut().iter().zip(reference.params_mut().iter()) {
            for (a, b) in p_batched.grad.data().iter().zip(p_ref.grad.data().iter()) {
                assert_eq!(a.to_bits(), b.to_bits(), "parameter gradient mismatch");
            }
        }
    }

    #[test]
    fn backward_accumulates_gradients_everywhere() {
        let mut net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let candidate = encode_candidate(net.encoding(), &spec(), &target());
        let (logits, cache) = net.forward(&spec_encoding, &candidate).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, 3);
        net.zero_grad();
        net.backward(&cache, &grad);
        assert!(net.grad_norm() > 0.0);
    }

    /// Numerical gradient check through the whole architecture on a tiny
    /// configuration.
    #[test]
    fn numerical_gradient_check_end_to_end() {
        let mut net = FitnessNet::new(tiny_config(3), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let candidate = encode_candidate(net.encoding(), &spec(), &target());
        let target_class = 1usize;
        let loss_of = |net: &FitnessNet, candidate: &CandidateEncoding| -> f32 {
            let logits = net.predict(&spec_encoding, candidate).unwrap();
            softmax_cross_entropy(&logits, target_class).0
        };
        let (logits, cache) = net.forward(&spec_encoding, &candidate).unwrap();
        let (_, grad_logits) = softmax_cross_entropy(&logits, target_class);
        net.zero_grad();
        net.backward(&cache, &grad_logits);

        let eps = 2e-2_f32;
        // Probe one entry of every non-head parameter (encoders, embeddings,
        // trace and example LSTMs). The ReLU head is excluded here because
        // finite differences are unreliable near its kinks; it has its own
        // numerical gradient check in netsyn-nn's MLP tests.
        let n_params = net.params_mut().len() - 4;
        let probes: Vec<(usize, usize, usize)> =
            (0..n_params).map(|which| (which, 0usize, 0usize)).collect();
        for (which, r, c) in probes {
            let orig = net.params_mut()[which].value.get(r, c);
            net.params_mut()[which].value.set(r, c, orig + eps);
            let lp = loss_of(&net, &candidate);
            net.params_mut()[which].value.set(r, c, orig - eps);
            let lm = loss_of(&net, &candidate);
            net.params_mut()[which].value.set(r, c, orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = net.params_mut()[which].grad.get(r, c);
            assert!(
                (num - ana).abs() < 2e-2,
                "param {which} [{r},{c}]: numerical {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_a_fixed_sample() {
        use netsyn_nn::Adam;
        let mut net = FitnessNet::new(tiny_config(6), EncodingConfig::new(), &mut rng());
        let spec_encoding = encode_spec(net.encoding(), &spec());
        let candidate = encode_candidate(net.encoding(), &spec(), &target());
        let mut optimizer = Adam::new(5e-3);
        let mut first_loss = None;
        let mut last_loss = 0.0;
        for _ in 0..60 {
            let (logits, cache) = net.forward(&spec_encoding, &candidate).unwrap();
            let (loss, grad) = softmax_cross_entropy(&logits, 4);
            net.backward(&cache, &grad);
            optimizer.step(&mut net.params_mut());
            net.zero_grad();
            first_loss.get_or_insert(loss);
            last_loss = loss;
        }
        assert!(
            last_loss < first_loss.unwrap() * 0.5,
            "loss did not decrease: {first_loss:?} -> {last_loss}"
        );
    }

    #[test]
    fn serde_round_trip() {
        let net = FitnessNet::new(tiny_config(4), EncodingConfig::new(), &mut rng());
        let json = serde_json::to_string(&net).unwrap();
        let back: FitnessNet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, net);
    }
}
