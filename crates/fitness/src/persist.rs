//! The durable cache tier: crash-safe persistence of [`FitnessCache`]
//! score shards and trace-encoding shards on top of the `netsyn_persist`
//! record log.
//!
//! ## On-disk layout
//!
//! A cache directory (`NETSYN_CACHE_DIR`, or any path given to
//! [`FitnessCache::durable`]) holds two append-only logs:
//!
//! * `scores.nsl` — batches of published fitness scores. Each record is
//!   `fitness_key ‖ spec ‖ n ‖ n × (program_ids, f64_bits)`;
//! * `traces.nsl` — batches of trace-value encodings. Each record is
//!   `fitness_key ‖ n ‖ n × (tokens, f32_bits…)`.
//!
//! Floats are stored as raw bit patterns, so persisted values round-trip
//! **bit-exactly** (NaN payloads included) — the foundation of the
//! warm-restart determinism guarantee. Every file opens with the
//! `netsyn_persist` log header whose application payload is
//! `kind ‖ codec_version ‖ domain_name ‖ vocab_fingerprint`; a file whose
//! header names a different kind, codec, domain, or DSL vocabulary
//! fingerprint is not trusted (see below). In particular, caches persisted
//! under one domain quarantine to cold when the directory is reopened for
//! another.
//! Cross-checkpoint aliasing is impossible by construction: the
//! `fitness_key` inside every record embeds the model's weight
//! fingerprint, exactly like the in-memory shard keys.
//!
//! ## Crash-consistency and degradation contract
//!
//! Loading is paranoid and graceful — corruption can cost warmth, never
//! correctness:
//!
//! * a missing or empty file starts a cold shard (a crash between file
//!   creation and the first flush is indistinguishable from "no cache");
//! * a torn or bit-flipped record suffix is dropped at the first failing
//!   CRC; the surviving prefix is loaded and the file is compacted in
//!   place (atomic tmp-file + rename replace);
//! * an unreadable file — bad magic, damaged header, wrong format or
//!   codec version, wrong DSL vocabulary — is **quarantined**: renamed to
//!   `<name>.quarantined[-k]` with a warning, never deleted, and a fresh
//!   log takes its place;
//! * any I/O error while flushing marks the store broken for the rest of
//!   the process: the in-memory cache keeps working, later flushes are
//!   skipped with a warning (degrade to memory-only, never panic).
//!
//! Flushing appends only entries not yet persisted (first-write-wins on
//! disk, mirroring the in-memory rule), syncs with `fdatasync`, and can
//! run asynchronously on a background thread — at most one in flight,
//! joined before the owning cache drops.

use crate::cache::{FitnessCache, SpecScores};
use crate::encoding::{TraceEncodingCache, TraceEntry};
use crate::sync::lock_recovering;
use crate::sync::Mutex;
use netsyn_dsl::{DomainId, IoSpec, Program, Value};
use netsyn_persist::{
    decode_log, dir as persist_dir, ByteReader, ByteWriter, FaultPlan, FaultyFile, FileStorage,
    LogError, LogWriter,
};
use std::collections::{HashMap, HashSet};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// File name of the score log inside a cache directory.
pub const SCORES_FILE: &str = "scores.nsl";
/// File name of the trace-encoding log inside a cache directory.
pub const TRACES_FILE: &str = "traces.nsl";

/// Header kind string of the score log.
const SCORES_KIND: &str = "netsyn-fitness/scores";
/// Header kind string of the trace-encoding log.
const TRACES_KIND: &str = "netsyn-fitness/traces";

/// Version of the record payload codec (bumped on any payload change;
/// readers quarantine files with any other value). Version 2 replaced the
/// baked-in function count in the header with the domain name and its
/// vocabulary fingerprint, and added string value tags to the value codec.
const CODEC_VERSION: u32 = 2;

/// Environment variable selecting the cache directory (opt-in durability).
pub const CACHE_DIR_ENV: &str = "NETSYN_CACHE_DIR";
/// Environment variable overriding the periodic flush interval.
pub const FLUSH_EVERY_ENV: &str = "NETSYN_CACHE_FLUSH_EVERY";

/// How a durable cache is opened.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Flush after every this-many [`FitnessCache::maybe_periodic_flush`]
    /// ticks (the GA engine ticks once per generation).
    pub flush_every: usize,
    /// Fault plan injected into newly opened log writers — test-only
    /// machinery for proving the degradation contract.
    pub fault: Option<FaultPlan>,
    /// The DSL domain whose caches this directory holds. Written into every
    /// log header (name + vocabulary fingerprint); a file persisted under a
    /// different domain is quarantined and the cache starts cold.
    pub domain: DomainId,
}

impl Default for DurableOptions {
    fn default() -> Self {
        let flush_every = std::env::var(FLUSH_EVERY_ENV)
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(16);
        DurableOptions {
            flush_every,
            fault: None,
            domain: DomainId::List,
        }
    }
}

/// What a flush appended to disk.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FlushStats {
    /// Newly persisted `(program, score)` entries.
    pub score_entries: usize,
    /// Newly persisted trace-encoding entries.
    pub trace_entries: usize,
}

/// What loading a cache directory found — the test-visible summary of the
/// recovery path taken.
#[derive(Debug, Default, Clone)]
pub struct LoadReport {
    /// `(program, score)` entries loaded into score shards.
    pub score_entries: usize,
    /// Trace-encoding entries loaded into trace shards.
    pub trace_entries: usize,
    /// Files moved aside because they could not be trusted at all.
    pub quarantined: Vec<PathBuf>,
    /// Human-readable notes about dropped record suffixes.
    pub damage: Vec<String>,
    /// Files rewritten clean after a damaged suffix was dropped.
    pub compacted: usize,
    /// CRC-valid records skipped because their payload did not decode.
    pub skipped_records: usize,
}

/// Cache content snapshots handed to the flusher (cheap `Arc` clones).
pub(crate) type ScoreSnapshot = Vec<(String, IoSpec, Arc<SpecScores>)>;
pub(crate) type TraceSnapshot = Vec<(String, Arc<TraceEncodingCache>)>;

#[derive(Debug, Default)]
struct StoreInner {
    scores_writer: Option<LogWriter>,
    traces_writer: Option<LogWriter>,
    /// Entries already on disk, so flushes append only the delta.
    persisted_scores: HashMap<(String, IoSpec), HashSet<Program>>,
    persisted_traces: HashMap<String, HashSet<Box<[usize]>>>,
}

/// The persistence engine behind a durable [`FitnessCache`] (see the
/// module docs for the format and the contract).
#[derive(Debug)]
pub(crate) struct DurableStore {
    dir: PathBuf,
    flush_every: usize,
    fault: Option<FaultPlan>,
    domain: DomainId,
    tick: AtomicUsize,
    /// Set on the first flush I/O error: the store degrades to
    /// memory-only for the rest of the process.
    broken: AtomicBool,
    inner: Mutex<StoreInner>,
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
    report: LoadReport,
}

impl DurableStore {
    /// Open (and recover) the logs under `dir`, loading every surviving
    /// entry into `cache`.
    pub(crate) fn open(
        dir: &Path,
        options: DurableOptions,
        cache: &FitnessCache,
    ) -> io::Result<Arc<DurableStore>> {
        std::fs::create_dir_all(dir)?;
        let mut report = LoadReport::default();
        let mut inner = StoreInner::default();

        for record in load_log_file(
            &dir.join(SCORES_FILE),
            SCORES_KIND,
            options.domain,
            &mut report,
        ) {
            match decode_scores_record(&record) {
                Ok((key, spec, entries)) => {
                    let shard = cache.shard(&key, &spec);
                    let persisted = inner.persisted_scores.entry((key, spec)).or_default();
                    for (program, score) in entries {
                        shard.insert(program.clone(), score);
                        persisted.insert(program);
                        report.score_entries += 1;
                    }
                }
                Err(reason) => {
                    report.skipped_records += 1;
                    warn(&format!(
                        "skipping undecodable score record in {}: {reason}",
                        dir.join(SCORES_FILE).display()
                    ));
                }
            }
        }

        for record in load_log_file(
            &dir.join(TRACES_FILE),
            TRACES_KIND,
            options.domain,
            &mut report,
        ) {
            match decode_traces_record(&record) {
                Ok((key, entries)) => {
                    let shard = cache.trace_shard(&key);
                    let persisted = inner.persisted_traces.entry(key).or_default();
                    report.trace_entries += entries.len();
                    let mut keys: Vec<Box<[usize]>> = Vec::with_capacity(entries.len());
                    let published: Vec<(&[usize], Arc<[f32]>)> = entries
                        .iter()
                        .map(|(tokens, hidden)| (&tokens[..], Arc::clone(hidden)))
                        .collect();
                    // publish_many is first-write-wins and does not bump the
                    // encode counter: loaded entries are hits, not misses.
                    let _ = shard.publish_many(published);
                    for (tokens, _) in entries {
                        keys.push(tokens);
                    }
                    persisted.extend(keys);
                }
                Err(reason) => {
                    report.skipped_records += 1;
                    warn(&format!(
                        "skipping undecodable trace record in {}: {reason}",
                        dir.join(TRACES_FILE).display()
                    ));
                }
            }
        }

        Ok(Arc::new(DurableStore {
            dir: dir.to_path_buf(),
            flush_every: options.flush_every.max(1),
            fault: options.fault,
            domain: options.domain,
            tick: AtomicUsize::new(0),
            broken: AtomicBool::new(false),
            inner: Mutex::new(inner),
            flusher: Mutex::new(None),
            report,
        }))
    }

    pub(crate) fn dir(&self) -> &Path {
        &self.dir
    }

    pub(crate) fn report(&self) -> &LoadReport {
        &self.report
    }

    /// True when a flush is due (ticked once per GA generation).
    pub(crate) fn tick(&self) -> bool {
        (self.tick.fetch_add(1, Ordering::Relaxed) + 1).is_multiple_of(self.flush_every)
    }

    /// Append every not-yet-persisted entry of the snapshots, then sync.
    pub(crate) fn flush_snapshots(
        &self,
        scores: &ScoreSnapshot,
        traces: &TraceSnapshot,
    ) -> FlushStats {
        let mut stats = FlushStats::default();
        if self.broken.load(Ordering::Relaxed) {
            return stats;
        }
        let mut inner = lock_recovering(&self.inner);
        let result = self.append_deltas(&mut inner, scores, traces, &mut stats);
        if let Err(err) = result {
            // Degrade to memory-only: correctness never depends on the
            // durable tier, so a full disk costs warmth, not results.
            self.broken.store(true, Ordering::Relaxed);
            inner.scores_writer = None;
            inner.traces_writer = None;
            warn(&format!(
                "flush to {} failed ({err}); cache continues memory-only",
                self.dir.display()
            ));
        }
        stats
    }

    fn append_deltas(
        &self,
        inner: &mut StoreInner,
        scores: &ScoreSnapshot,
        traces: &TraceSnapshot,
        stats: &mut FlushStats,
    ) -> io::Result<()> {
        let mut scores_dirty = false;
        for (key, spec, shard) in scores {
            let exported = shard.export();
            let persisted = inner
                .persisted_scores
                .entry((key.clone(), spec.clone()))
                .or_default();
            let fresh: Vec<(Program, f64)> = exported
                .into_iter()
                .filter(|(program, _)| !persisted.contains(program))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let record = encode_scores_record(key, spec, &fresh);
            let writer = open_writer(
                &mut inner.scores_writer,
                &self.dir.join(SCORES_FILE),
                SCORES_KIND,
                self.domain,
                self.fault,
            )?;
            writer.append(&record)?;
            scores_dirty = true;
            stats.score_entries += fresh.len();
            persisted.extend(fresh.into_iter().map(|(program, _)| program));
        }
        if scores_dirty {
            if let Some(writer) = inner.scores_writer.as_mut() {
                writer.sync()?;
            }
        }

        let mut traces_dirty = false;
        for (key, shard) in traces {
            let exported = shard.export();
            let persisted = inner.persisted_traces.entry(key.clone()).or_default();
            let fresh: Vec<TraceEntry> = exported
                .into_iter()
                .filter(|(tokens, _)| !persisted.contains(tokens))
                .collect();
            if fresh.is_empty() {
                continue;
            }
            let record = encode_traces_record(key, &fresh);
            let writer = open_writer(
                &mut inner.traces_writer,
                &self.dir.join(TRACES_FILE),
                TRACES_KIND,
                self.domain,
                self.fault,
            )?;
            writer.append(&record)?;
            traces_dirty = true;
            stats.trace_entries += fresh.len();
            persisted.extend(fresh.into_iter().map(|(tokens, _)| tokens));
        }
        if traces_dirty {
            if let Some(writer) = inner.traces_writer.as_mut() {
                writer.sync()?;
            }
        }
        Ok(())
    }

    /// Kick off a background flush of the snapshots; skipped (the next
    /// tick retries) when one is already in flight.
    pub(crate) fn flush_async(self: &Arc<Self>, scores: ScoreSnapshot, traces: TraceSnapshot) {
        let mut flusher = lock_recovering(&self.flusher);
        if let Some(handle) = flusher.take() {
            if !handle.is_finished() {
                *flusher = Some(handle);
                return;
            }
            let _ = handle.join();
        }
        // A plain OS thread, deliberately not the work-stealing pool: a
        // pool job blocking on the store mutex could be stolen onto a
        // scoring thread's helping loop.
        let store = Arc::clone(self);
        *flusher = Some(std::thread::spawn(move || {
            let _ = store.flush_snapshots(&scores, &traces);
        }));
    }

    /// Join the in-flight background flush, if any.
    pub(crate) fn join_flusher(&self) {
        let handle = lock_recovering(&self.flusher).take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }

    /// Rewrite both logs from the full snapshots (atomic replace), resetting
    /// the append state. Clears the broken flag on success — compaction is
    /// the recovery path after, say, a transiently full disk.
    pub(crate) fn compact(&self, scores: &ScoreSnapshot, traces: &TraceSnapshot) -> io::Result<()> {
        let mut inner = lock_recovering(&self.inner);
        inner.scores_writer = None;
        inner.traces_writer = None;

        let mut scores_bytes =
            netsyn_persist::log::encode_header(&encode_app_header(SCORES_KIND, self.domain));
        let mut persisted_scores: HashMap<(String, IoSpec), HashSet<Program>> = HashMap::new();
        for (key, spec, shard) in scores {
            let exported = shard.export();
            if exported.is_empty() {
                continue;
            }
            let record = encode_scores_record(key, spec, &exported);
            scores_bytes.extend_from_slice(&netsyn_persist::log::encode_record(&record));
            persisted_scores
                .entry((key.clone(), spec.clone()))
                .or_default()
                .extend(exported.into_iter().map(|(program, _)| program));
        }
        persist_dir::atomic_replace(&self.dir.join(SCORES_FILE), &scores_bytes)?;

        let mut traces_bytes =
            netsyn_persist::log::encode_header(&encode_app_header(TRACES_KIND, self.domain));
        let mut persisted_traces: HashMap<String, HashSet<Box<[usize]>>> = HashMap::new();
        for (key, shard) in traces {
            let exported = shard.export();
            if exported.is_empty() {
                continue;
            }
            let record = encode_traces_record(key, &exported);
            traces_bytes.extend_from_slice(&netsyn_persist::log::encode_record(&record));
            persisted_traces
                .entry(key.clone())
                .or_default()
                .extend(exported.into_iter().map(|(tokens, _)| tokens));
        }
        persist_dir::atomic_replace(&self.dir.join(TRACES_FILE), &traces_bytes)?;

        inner.persisted_scores = persisted_scores;
        inner.persisted_traces = persisted_traces;
        self.broken.store(false, Ordering::Relaxed);
        Ok(())
    }
}

fn warn(message: &str) {
    eprintln!("netsyn-fitness durable cache: {message}");
}

/// Open (lazily) the append writer for one log file, with the test fault
/// plan applied when present.
fn open_writer<'a>(
    slot: &'a mut Option<LogWriter>,
    path: &Path,
    kind: &str,
    domain: DomainId,
    fault: Option<FaultPlan>,
) -> io::Result<&'a mut LogWriter> {
    if slot.is_none() {
        let header = encode_app_header(kind, domain);
        let writer = match fault {
            Some(plan) => LogWriter::new(Box::new(FaultyFile::create(path, plan)), header)?,
            None => LogWriter::new(Box::new(FileStorage::open(path)?), header)?,
        };
        *slot = Some(writer);
    }
    Ok(slot.as_mut().expect("writer just installed"))
}

/// Load one log file: quarantine what cannot be trusted, compact away
/// damaged suffixes, and return the surviving record payloads.
fn load_log_file(
    path: &Path,
    kind: &str,
    domain: DomainId,
    report: &mut LoadReport,
) -> Vec<Vec<u8>> {
    let bytes = match std::fs::read(path) {
        Ok(bytes) => bytes,
        Err(err) if err.kind() == io::ErrorKind::NotFound => return Vec::new(),
        Err(err) => {
            warn(&format!(
                "cannot read {} ({err}); starting cold",
                path.display()
            ));
            return Vec::new();
        }
    };
    let loaded = match decode_log(&bytes) {
        Ok(loaded) => loaded,
        Err(err @ (LogError::NotALog(_) | LogError::WrongVersion { .. })) => {
            quarantine_file(path, &err.to_string(), report);
            return Vec::new();
        }
    };
    let Some(header) = loaded.header else {
        // Zero-length file: a crash between create and first write.
        return Vec::new();
    };
    if let Err(reason) = check_app_header(&header, kind, domain) {
        quarantine_file(path, &reason, report);
        return Vec::new();
    }
    if let Some(damage) = loaded.damage {
        report.damage.push(format!(
            "{}: dropped {} damaged trailing bytes at offset {} ({})",
            path.display(),
            damage.dropped_bytes,
            damage.offset,
            damage.reason
        ));
        warn(report.damage.last().expect("just pushed"));
        // Rewrite the file clean so the damage is not re-reported forever
        // and the append offset is consistent.
        let mut clean = netsyn_persist::log::encode_header(&encode_app_header(kind, domain));
        for record in &loaded.records {
            clean.extend_from_slice(&netsyn_persist::log::encode_record(record));
        }
        match persist_dir::atomic_replace(path, &clean) {
            Ok(()) => report.compacted += 1,
            Err(err) => warn(&format!(
                "could not compact {} ({err}); damaged suffix remains on disk",
                path.display()
            )),
        }
    }
    loaded.records
}

fn quarantine_file(path: &Path, reason: &str, report: &mut LoadReport) {
    match persist_dir::quarantine(path) {
        Ok(moved) => {
            warn(&format!(
                "{} is unreadable ({reason}); quarantined to {} and starting cold",
                path.display(),
                moved.display()
            ));
            report.quarantined.push(moved);
        }
        Err(err) => warn(&format!(
            "{} is unreadable ({reason}) and could not be quarantined ({err}); starting cold",
            path.display()
        )),
    }
}

// ---------------------------------------------------------------------------
// Codec: application header and record payloads.
// ---------------------------------------------------------------------------

fn encode_app_header(kind: &str, domain: DomainId) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(kind);
    w.put_u32(CODEC_VERSION);
    w.put_str(domain.as_str());
    w.put_u64(domain.vocab_fingerprint());
    w.into_bytes()
}

fn check_app_header(header: &[u8], kind: &str, domain: DomainId) -> Result<(), String> {
    let mut r = ByteReader::new(header);
    let found_kind = r.get_str().map_err(|_| "truncated header".to_string())?;
    if found_kind != kind {
        return Err(format!("header kind {found_kind:?}, expected {kind:?}"));
    }
    let codec = r.get_u32().map_err(|_| "truncated header".to_string())?;
    if codec != CODEC_VERSION {
        return Err(format!(
            "codec version {codec}, this build reads {CODEC_VERSION}"
        ));
    }
    let found_domain = r.get_str().map_err(|_| "truncated header".to_string())?;
    if found_domain != domain.as_str() {
        return Err(format!(
            "domain {found_domain:?}, this cache is opened for {:?}",
            domain.as_str()
        ));
    }
    let fingerprint = r.get_u64().map_err(|_| "truncated header".to_string())?;
    if fingerprint != domain.vocab_fingerprint() {
        return Err(format!(
            "vocabulary fingerprint {fingerprint:#018x}, this build has {:#018x}",
            domain.vocab_fingerprint()
        ));
    }
    Ok(())
}

fn encode_value(w: &mut ByteWriter, value: &Value) {
    match value {
        Value::Int(v) => {
            w.put_u8(0);
            w.put_i64(*v);
        }
        Value::List(vs) => {
            w.put_u8(1);
            w.put_u32(vs.len() as u32);
            for &v in vs {
                w.put_i64(v);
            }
        }
        Value::Str(s) => {
            w.put_u8(2);
            w.put_str(s);
        }
        Value::StrList(words) => {
            w.put_u8(3);
            w.put_u32(words.len() as u32);
            for word in words {
                w.put_str(word);
            }
        }
    }
}

fn decode_value(r: &mut ByteReader<'_>) -> Result<Value, String> {
    match r.get_u8().map_err(|_| "truncated value tag")? {
        0 => Ok(Value::Int(r.get_i64().map_err(|_| "truncated int")?)),
        1 => {
            let len = r.get_u32().map_err(|_| "truncated list length")? as usize;
            if len > r.remaining() / 8 {
                return Err("list length overruns record".to_string());
            }
            let mut items = Vec::with_capacity(len);
            for _ in 0..len {
                items.push(r.get_i64().map_err(|_| "truncated list item")?);
            }
            Ok(Value::List(items))
        }
        2 => Ok(Value::Str(
            r.get_str().map_err(|_| "truncated string")?.to_string(),
        )),
        3 => {
            let len = r.get_u32().map_err(|_| "truncated word count")? as usize;
            if len > r.remaining() {
                return Err("word count overruns record".to_string());
            }
            let mut words = Vec::with_capacity(len);
            for _ in 0..len {
                words.push(r.get_str().map_err(|_| "truncated word")?.to_string());
            }
            Ok(Value::StrList(words))
        }
        tag => Err(format!("unknown value tag {tag}")),
    }
}

fn encode_spec(w: &mut ByteWriter, spec: &IoSpec) {
    let examples = spec.examples();
    w.put_u32(examples.len() as u32);
    for example in examples {
        w.put_u32(example.inputs.len() as u32);
        for input in &example.inputs {
            encode_value(w, input);
        }
        encode_value(w, &example.output);
    }
}

fn decode_spec(r: &mut ByteReader<'_>) -> Result<IoSpec, String> {
    let count = r.get_u32().map_err(|_| "truncated example count")? as usize;
    if count > r.remaining() {
        return Err("example count overruns record".to_string());
    }
    let mut examples = Vec::with_capacity(count);
    for _ in 0..count {
        let inputs_len = r.get_u32().map_err(|_| "truncated input count")? as usize;
        if inputs_len > r.remaining() {
            return Err("input count overruns record".to_string());
        }
        let mut inputs = Vec::with_capacity(inputs_len);
        for _ in 0..inputs_len {
            inputs.push(decode_value(r)?);
        }
        let output = decode_value(r)?;
        examples.push(netsyn_dsl::IoExample::new(inputs, output));
    }
    Ok(IoSpec::new(examples))
}

fn encode_scores_record(key: &str, spec: &IoSpec, entries: &[(Program, f64)]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(key);
    encode_spec(&mut w, spec);
    w.put_u32(entries.len() as u32);
    for (program, score) in entries {
        w.put_bytes(&program.ids());
        w.put_f64_bits(*score);
    }
    w.into_bytes()
}

type ScoresRecord = (String, IoSpec, Vec<(Program, f64)>);

fn decode_scores_record(payload: &[u8]) -> Result<ScoresRecord, String> {
    let mut r = ByteReader::new(payload);
    let key = r.get_str().map_err(|_| "truncated key")?.to_string();
    let spec = decode_spec(&mut r)?;
    let count = r.get_u32().map_err(|_| "truncated entry count")? as usize;
    if count > r.remaining() {
        return Err("entry count overruns record".to_string());
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let ids = r.get_bytes().map_err(|_| "truncated program ids")?;
        let program = Program::from_ids(ids).map_err(|err| format!("bad program ids: {err}"))?;
        let score = r.get_f64_bits().map_err(|_| "truncated score")?;
        entries.push((program, score));
    }
    if !r.is_empty() {
        return Err("trailing bytes after score entries".to_string());
    }
    Ok((key, spec, entries))
}

fn encode_traces_record(key: &str, entries: &[TraceEntry]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(key);
    w.put_u32(entries.len() as u32);
    for (tokens, hidden) in entries {
        w.put_u32(tokens.len() as u32);
        for &token in tokens.iter() {
            w.put_u64(token as u64);
        }
        w.put_u32(hidden.len() as u32);
        for &h in hidden.iter() {
            w.put_f32_bits(h);
        }
    }
    w.into_bytes()
}

type TracesRecord = (String, Vec<(Box<[usize]>, Arc<[f32]>)>);

fn decode_traces_record(payload: &[u8]) -> Result<TracesRecord, String> {
    let mut r = ByteReader::new(payload);
    let key = r.get_str().map_err(|_| "truncated key")?.to_string();
    let count = r.get_u32().map_err(|_| "truncated entry count")? as usize;
    if count > r.remaining() {
        return Err("entry count overruns record".to_string());
    }
    let mut entries = Vec::with_capacity(count);
    for _ in 0..count {
        let token_len = r.get_u32().map_err(|_| "truncated token length")? as usize;
        if token_len > r.remaining() / 8 {
            return Err("token length overruns record".to_string());
        }
        let mut tokens = Vec::with_capacity(token_len);
        for _ in 0..token_len {
            tokens.push(r.get_u64().map_err(|_| "truncated token")? as usize);
        }
        let hidden_len = r.get_u32().map_err(|_| "truncated hidden length")? as usize;
        if hidden_len > r.remaining() / 4 {
            return Err("hidden length overruns record".to_string());
        }
        let mut hidden = Vec::with_capacity(hidden_len);
        for _ in 0..hidden_len {
            hidden.push(r.get_f32_bits().map_err(|_| "truncated hidden state")?);
        }
        entries.push((tokens.into_boxed_slice(), Arc::<[f32]>::from(hidden)));
    }
    if !r.is_empty() {
        return Err("trailing bytes after trace entries".to_string());
    }
    Ok((key, entries))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_record_round_trips_bit_exactly() {
        let spec = IoSpec::new(vec![netsyn_dsl::IoExample::new(
            vec![Value::List(vec![3, -1, i64::MAX]), Value::Int(-9)],
            Value::List(vec![]),
        )]);
        let entries = vec![
            (Program::from_ids(&[1, 2, 3]).unwrap(), f64::NAN),
            (Program::from_ids(&[41]).unwrap(), -0.0),
            (Program::default(), 1.5e-300),
        ];
        let record = encode_scores_record("nn-CF#00ff", &spec, &entries);
        let (key, spec_back, back) = decode_scores_record(&record).unwrap();
        assert_eq!(key, "nn-CF#00ff");
        assert_eq!(spec_back, spec);
        assert_eq!(back.len(), entries.len());
        for ((p, s), (q, t)) in back.iter().zip(entries.iter()) {
            assert_eq!(p, q);
            assert_eq!(
                s.to_bits(),
                t.to_bits(),
                "scores must round-trip bit-exactly"
            );
        }
    }

    #[test]
    fn traces_record_round_trips_bit_exactly() {
        let entries: Vec<TraceEntry> = vec![
            (
                vec![1usize, 257, 0].into_boxed_slice(),
                vec![0.5f32, f32::NAN, -0.0].into(),
            ),
            (vec![].into_boxed_slice(), vec![].into()),
        ];
        let record = encode_traces_record("nn-LCS#beef", &entries);
        let (key, back) = decode_traces_record(&record).unwrap();
        assert_eq!(key, "nn-LCS#beef");
        assert_eq!(back.len(), 2);
        for ((tk, h), (tk2, h2)) in back.iter().zip(entries.iter()) {
            assert_eq!(tk, tk2);
            assert_eq!(h.len(), h2.len());
            for (a, b) in h.iter().zip(h2.iter()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn corrupt_payloads_decode_to_errors_not_panics() {
        // Truncations and garbage at every prefix length must fail cleanly.
        let spec = IoSpec::new(vec![netsyn_dsl::IoExample::new(
            vec![Value::Int(1)],
            Value::Int(2),
        )]);
        let record = encode_scores_record("k", &spec, &[(Program::from_ids(&[1]).unwrap(), 0.5)]);
        for cut in 0..record.len() {
            let _ = decode_scores_record(&record[..cut]);
        }
        // A program id of 0 (or > 41) is invalid and must be rejected.
        let mut bad = ByteWriter::new();
        bad.put_str("k");
        encode_spec(&mut bad, &spec);
        bad.put_u32(1);
        bad.put_bytes(&[0]);
        bad.put_f64_bits(1.0);
        assert!(decode_scores_record(&bad.into_bytes()).is_err());
    }

    #[test]
    fn header_checks_reject_foreign_files() {
        let scores = encode_app_header(SCORES_KIND, DomainId::List);
        assert!(check_app_header(&scores, SCORES_KIND, DomainId::List).is_ok());
        // The wrong-kind case: a traces header in the scores slot.
        assert!(check_app_header(&scores, TRACES_KIND, DomainId::List).is_err());
        // The cross-domain case: a list-domain file opened for the string
        // domain (and vice versa) is never trusted.
        assert!(check_app_header(&scores, SCORES_KIND, DomainId::Str).is_err());
        let str_scores = encode_app_header(SCORES_KIND, DomainId::Str);
        assert!(check_app_header(&str_scores, SCORES_KIND, DomainId::Str).is_ok());
        assert!(check_app_header(&str_scores, SCORES_KIND, DomainId::List).is_err());
        // A header claiming the right domain name but a different
        // vocabulary fingerprint is not trusted either.
        let mut w = ByteWriter::new();
        w.put_str(SCORES_KIND);
        w.put_u32(CODEC_VERSION);
        w.put_str(DomainId::List.as_str());
        w.put_u64(DomainId::List.vocab_fingerprint() ^ 1);
        assert!(check_app_header(&w.into_bytes(), SCORES_KIND, DomainId::List).is_err());
    }

    #[test]
    fn string_values_round_trip_through_the_codec() {
        let spec = IoSpec::new(vec![netsyn_dsl::IoExample::new(
            vec![Value::Str("hello world".to_string())],
            Value::StrList(vec!["hello".to_string(), String::new()]),
        )]);
        let entries = vec![(Program::from_ids(&[42]).unwrap(), 0.25)];
        let record = encode_scores_record("nn-CF#str", &spec, &entries);
        let (key, spec_back, back) = decode_scores_record(&record).unwrap();
        assert_eq!(key, "nn-CF#str");
        assert_eq!(spec_back, spec);
        assert_eq!(back, entries);
    }
}
