//! Per-function probability maps over the DSL.
//!
//! The FP fitness function (following DeepCoder) predicts, for every DSL
//! function, the probability that it appears in the target program given the
//! input-output examples. The map is used both to score candidate programs
//! and to bias the mutation operator (`Mutation_FP` in Table 2).

use netsyn_dsl::{DomainId, Function, Program};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability (or non-negative weight) per operator of one domain's
/// vocabulary, indexed by the domain-local token index
/// ([`DomainId::token_index`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityMap {
    domain: DomainId,
    probs: Vec<f64>,
}

impl ProbabilityMap {
    /// Creates a list-domain map from 41 per-function probabilities.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != 41` or any entry is negative or non-finite.
    #[must_use]
    pub fn new(probs: Vec<f64>) -> Self {
        ProbabilityMap::new_for(DomainId::List, probs)
    }

    /// Creates a map over `domain` from one probability per vocabulary entry.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len() != domain.vocab_len()` or any entry is negative
    /// or non-finite.
    #[must_use]
    pub fn new_for(domain: DomainId, probs: Vec<f64>) -> Self {
        assert_eq!(
            probs.len(),
            domain.vocab_len(),
            "expected one entry per DSL function"
        );
        assert!(
            probs.iter().all(|&p| p.is_finite() && p >= 0.0),
            "probabilities must be non-negative and finite"
        );
        ProbabilityMap { domain, probs }
    }

    /// The uniform list-domain map assigning 0.5 to every function.
    #[must_use]
    pub fn uniform() -> Self {
        ProbabilityMap::uniform_for(DomainId::List)
    }

    /// The uniform map over `domain` assigning 0.5 to every operator.
    #[must_use]
    pub fn uniform_for(domain: DomainId) -> Self {
        ProbabilityMap {
            domain,
            probs: vec![0.5; domain.vocab_len()],
        }
    }

    /// The list-domain "oracle" map: probability 1.0 for functions present in
    /// `target`, a small floor elsewhere.
    #[must_use]
    pub fn from_target(target: &Program, floor: f64) -> Self {
        ProbabilityMap::from_target_in(DomainId::List, target, floor)
    }

    /// [`ProbabilityMap::from_target`] over an explicit domain; `target`
    /// operators outside the domain's vocabulary are ignored.
    #[must_use]
    pub fn from_target_in(domain: DomainId, target: &Program, floor: f64) -> Self {
        let mut probs = vec![floor; domain.vocab_len()];
        for f in target.functions() {
            if let Some(i) = domain.token_index(*f) {
                probs[i] = 1.0;
            }
        }
        ProbabilityMap { domain, probs }
    }

    /// The domain whose vocabulary this map covers.
    #[must_use]
    pub fn domain(&self) -> DomainId {
        self.domain
    }

    /// Probability assigned to `function` (0.0 for operators outside the
    /// map's domain).
    #[must_use]
    pub fn prob(&self, function: Function) -> f64 {
        self.domain
            .token_index(function)
            .map_or(0.0, |i| self.probs[i])
    }

    /// All probabilities indexed by the domain-local token index.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.probs
    }

    /// FP fitness of a candidate: the sum of the probabilities of its
    /// functions (`f_FP` in the paper).
    #[must_use]
    pub fn score(&self, candidate: &Program) -> f64 {
        candidate.functions().iter().map(|f| self.prob(*f)).sum()
    }

    /// Samples a function with probability proportional to its weight
    /// (Roulette-Wheel over the map). Falls back to a uniform draw when the
    /// total mass is zero.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Function {
        let vocab = self.domain.vocab();
        let total: f64 = self.probs.iter().sum();
        if total <= 0.0 {
            return vocab[rng.gen_range(0..vocab.len())];
        }
        let mut threshold = rng.gen_range(0.0..total);
        for (i, &p) in self.probs.iter().enumerate() {
            if threshold < p {
                return vocab[i];
            }
            threshold -= p;
        }
        vocab[vocab.len() - 1]
    }

    /// Samples a function different from `exclude` (used by the FP-guided
    /// mutation operator, which must change the gene).
    pub fn sample_excluding<R: Rng + ?Sized>(&self, rng: &mut R, exclude: Function) -> Function {
        let vocab = self.domain.vocab();
        let exclude_index = self.domain.token_index(exclude);
        // Zero out the excluded function's mass and sample from the rest.
        let total: f64 = self
            .probs
            .iter()
            .enumerate()
            .filter(|(i, _)| Some(*i) != exclude_index)
            .map(|(_, &p)| p)
            .sum();
        if total <= 0.0 {
            loop {
                let f = vocab[rng.gen_range(0..vocab.len())];
                if f != exclude {
                    return f;
                }
            }
        }
        let mut threshold = rng.gen_range(0.0..total);
        for (i, &p) in self.probs.iter().enumerate() {
            if Some(i) == exclude_index {
                continue;
            }
            if threshold < p {
                return vocab[i];
            }
            threshold -= p;
        }
        // Floating-point fallthrough: return the last non-excluded function.
        *vocab
            .iter()
            .rev()
            .find(|f| **f != exclude)
            .expect("every domain vocabulary has more than one operator")
    }

    /// The `k` functions with the highest probability, in decreasing order.
    #[must_use]
    pub fn top_k(&self, k: usize) -> Vec<Function> {
        let vocab = self.domain.vocab();
        let mut indexed: Vec<(usize, f64)> = self.probs.iter().copied().enumerate().collect();
        // total_cmp: a NaN probability takes a deterministic extreme
        // position (positive NaN first, negative last) instead of leaving
        // the ranking to iteration order.
        indexed.sort_by(|a, b| b.1.total_cmp(&a.1));
        indexed.into_iter().take(k).map(|(i, _)| vocab[i]).collect()
    }
}

impl Default for ProbabilityMap {
    fn default() -> Self {
        ProbabilityMap::uniform()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{IntPredicate, MapOp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ])
    }

    #[test]
    fn uniform_map_scores_by_length() {
        let map = ProbabilityMap::uniform();
        assert_eq!(map.score(&target()), 1.5);
        assert_eq!(map.prob(Function::Head), 0.5);
    }

    #[test]
    fn from_target_puts_mass_on_target_functions() {
        let map = ProbabilityMap::from_target(&target(), 0.01);
        assert_eq!(map.prob(Function::Sort), 1.0);
        assert_eq!(map.prob(Function::Head), 0.01);
        // A candidate sharing more functions with the target scores higher.
        let close = Program::new(vec![Function::Sort, Function::Map(MapOp::Mul2)]);
        let far = Program::new(vec![Function::Head, Function::Last]);
        assert!(map.score(&close) > map.score(&far));
    }

    #[test]
    #[should_panic(expected = "one entry per DSL function")]
    fn new_validates_length() {
        let _ = ProbabilityMap::new(vec![0.5; 3]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn new_validates_sign() {
        let mut probs = vec![0.5; Function::COUNT];
        probs[0] = -0.1;
        let _ = ProbabilityMap::new(probs);
    }

    #[test]
    fn sampling_respects_weights() {
        let mut probs = vec![0.0; Function::COUNT];
        probs[Function::Sort.index()] = 1.0;
        let map = ProbabilityMap::new(probs);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..50 {
            assert_eq!(map.sample(&mut rng), Function::Sort);
        }
    }

    #[test]
    fn sampling_with_zero_mass_is_uniform_fallback() {
        let map = ProbabilityMap::new(vec![0.0; Function::COUNT]);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(map.sample(&mut rng));
        }
        assert!(seen.len() > 10, "fallback should cover many functions");
    }

    #[test]
    fn sample_excluding_never_returns_excluded() {
        let mut probs = vec![0.0; Function::COUNT];
        probs[Function::Sort.index()] = 1.0;
        probs[Function::Reverse.index()] = 0.001;
        let map = ProbabilityMap::new(probs);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..100 {
            let f = map.sample_excluding(&mut rng, Function::Sort);
            assert_ne!(f, Function::Sort);
        }
        // Excluding everything-with-mass still terminates.
        let zero = ProbabilityMap::new(vec![0.0; Function::COUNT]);
        for _ in 0..10 {
            assert_ne!(
                zero.sample_excluding(&mut rng, Function::Head),
                Function::Head
            );
        }
    }

    #[test]
    fn top_k_orders_by_probability() {
        let map = ProbabilityMap::from_target(&target(), 0.0);
        let top = map.top_k(3);
        assert_eq!(top.len(), 3);
        for f in target().functions() {
            assert!(top.contains(f));
        }
    }

    #[test]
    fn statistical_sampling_frequency_matches_weights() {
        let mut probs = vec![0.0; Function::COUNT];
        probs[Function::Head.index()] = 3.0;
        probs[Function::Last.index()] = 1.0;
        let map = ProbabilityMap::new(probs);
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut head = 0;
        let mut last = 0;
        for _ in 0..4000 {
            match map.sample(&mut rng) {
                Function::Head => head += 1,
                Function::Last => last += 1,
                other => panic!("unexpected sample {other}"),
            }
        }
        let ratio = head as f64 / last as f64;
        assert!(ratio > 2.4 && ratio < 3.6, "ratio {ratio} not close to 3");
    }

    #[test]
    fn serde_round_trip() {
        let map = ProbabilityMap::from_target(&target(), 0.05);
        let json = serde_json::to_string(&map).unwrap();
        let back: ProbabilityMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
