//! # netsyn-fitness
//!
//! Fitness functions for genetic-algorithm program synthesis, reproducing the
//! central contribution of "Learning Fitness Functions for Machine
//! Programming" (MLSys 2021):
//!
//! * **Ideal / oracle fitness** ([`OracleFitness`]) — grades candidates with
//!   the exact number of common functions (CF) or the longest common
//!   subsequence (LCS) against the hidden target program;
//! * **Hand-crafted fitness** ([`EditDistanceFitness`]) — the output
//!   edit-distance heuristic the paper argues is brittle;
//! * **Learned fitness (NN-FF)** — an LSTM-based model ([`FitnessNet`]) that
//!   predicts CF / LCS values from the specification and the candidate's
//!   execution trace ([`LearnedFitness`]), or a per-function probability map
//!   from the specification alone ([`LearnedProbabilityModel`],
//!   [`ProbabilityFitness`]);
//! * **Corpus generation and training** ([`dataset`], [`trainer`]) — balanced
//!   training-data generation and training loops producing the confusion
//!   matrices and accuracy curves of Figure 7.
//!
//! All fitness functions implement the common [`FitnessFunction`] trait used
//! by the GA engine and the baselines.
//!
//! ## Batched scoring
//!
//! Ranking thousands of GA candidates per generation is the system's hot
//! path, so the trait also exposes
//! [`FitnessFunction::score_batch`]: score many candidates against one
//! specification in a single call. The default implementation loops over
//! `score`; the neural implementations override it —
//! [`LearnedFitness::score_batch`](FitnessFunction::score_batch) encodes the
//! specification **once** (instead of re-encoding it per candidate, see
//! [`encoding::encode_candidates`]), dedups repeated IO and trace-value
//! token sequences across the batch, and pushes the whole population
//! through [`FitnessNet::predict_batch`], where every LSTM stage steps all
//! sequences together and the head classifies the batch with one GEMM.
//!
//! Batching is a pure performance optimization: every override returns
//! scores **bit-identical** to the per-candidate path (asserted by the
//! `score_batch_equivalence` integration tests for the CF, LCS and FP
//! models), so GA search trajectories are unchanged.
//!
//! The GA engine additionally keeps a per-synthesis **fitness memo** keyed
//! by program: a candidate's score is a pure function of `(program, spec)`,
//! so duplicate offspring (reproduction copies, re-discovered programs) are
//! served from the memo and never re-scored. The memo lives for one
//! `synthesize` call because scores are specification-specific.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
mod edit;
pub mod encoding;
mod learned;
pub mod metrics;
mod model;
mod oracle;
mod probability;
mod traits;
pub mod trainer;

pub use edit::EditDistanceFitness;
pub use encoding::{EncodedExample, EncodedSample, EncodedStep, EncodingConfig};
pub use learned::{LearnedFitness, LearnedProbabilityModel, ProbabilityFitness};
pub use model::{FitnessNet, FitnessNetCache, FitnessNetConfig};
pub use oracle::OracleFitness;
pub use probability::ProbabilityMap;
pub use traits::{ClosenessMetric, FitnessFunction};
pub use trainer::{
    EpochStats, FitnessModelKind, TrainedFitnessModel, TrainerConfig, TrainingReport,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EditDistanceFitness>();
        assert_send_sync::<OracleFitness>();
        assert_send_sync::<ProbabilityMap>();
        assert_send_sync::<FitnessNet>();
        assert_send_sync::<LearnedFitness>();
        assert_send_sync::<ProbabilityFitness>();
        assert_send_sync::<Box<dyn FitnessFunction>>();
    }
}
