//! # netsyn-fitness
//!
//! Fitness functions for genetic-algorithm program synthesis, reproducing the
//! central contribution of "Learning Fitness Functions for Machine
//! Programming" (MLSys 2021):
//!
//! * **Ideal / oracle fitness** ([`OracleFitness`]) — grades candidates with
//!   the exact number of common functions (CF) or the longest common
//!   subsequence (LCS) against the hidden target program;
//! * **Hand-crafted fitness** ([`EditDistanceFitness`]) — the output
//!   edit-distance heuristic the paper argues is brittle;
//! * **Learned fitness (NN-FF)** — an LSTM-based model ([`FitnessNet`]) that
//!   predicts CF / LCS values from the specification and the candidate's
//!   execution trace ([`LearnedFitness`]), or a per-function probability map
//!   from the specification alone ([`LearnedProbabilityModel`],
//!   [`ProbabilityFitness`]);
//! * **Corpus generation and training** ([`dataset`], [`trainer`]) — balanced
//!   training-data generation and training loops producing the confusion
//!   matrices and accuracy curves of Figure 7.
//!
//! All fitness functions implement the common [`FitnessFunction`] trait used
//! by the GA engine and the baselines.
//!
//! ## The zero-copy encoding split
//!
//! A model input has two halves with very different lifetimes inside the GA
//! loop: the *specification* is fixed for a whole synthesis run, while the
//! *candidate traces* change with every scored program. The encoding layer
//! mirrors that split:
//!
//! * [`SpecEncoding`] ([`encoding::encode_spec`]) — the spec's IO-example
//!   token sequences, built **once per synthesis** and shared zero-copy
//!   (`Arc`-backed) by every candidate scored against it. Learned fitness
//!   functions memoize it in a one-slot [`encoding::SpecEncodingCache`], so
//!   repeated `score_batch` calls across generations never re-encode the
//!   spec (`LearnedFitness::spec_encode_count` makes this observable).
//! * [`CandidateEncoding`] ([`encoding::encode_candidate`] /
//!   [`encoding::encode_candidates`]) — the per-candidate execution traces
//!   only. The batch encoder reuses one interpreter `TraceArena` across all
//!   trace runs, so per-statement bookkeeping costs no allocation.
//!
//! ## Batched scoring
//!
//! Ranking thousands of GA candidates per generation is the system's hot
//! path, so the trait also exposes
//! [`FitnessFunction::score_batch`]: score many candidates against one
//! specification in a single call. The default implementation loops over
//! `score`; the neural implementations override it —
//! [`LearnedFitness::score_batch`](FitnessFunction::score_batch) passes the
//! shared [`SpecEncoding`] and the batch of [`CandidateEncoding`]s to
//! [`FitnessNet::predict_batch`], which encodes the spec's sequences once,
//! dedups repeated trace-value token sequences across the batch, and steps
//! every LSTM stage over all sequences together in flat row-major buffers
//! before the head classifies the batch with one GEMM.
//!
//! Batching is a pure performance optimization: every override returns
//! scores **bit-identical** to the per-candidate path (asserted by the
//! `score_batch_equivalence` integration tests for the CF, LCS and FP
//! models), so GA search trajectories are unchanged.
//!
//! ## Score caching
//!
//! A candidate's score is a pure function of `(fitness, program, spec)` —
//! and bit-identical however computed — so scores are cached at two levels:
//! within one `synthesize` call, the GA engine never re-scores a duplicate
//! offspring; across calls, a shared [`FitnessCache`] (spec-keyed, see
//! [`cache`]) lets repeated runs of the same task — the evaluation
//! harness's `K` repetitions, GA restarts, iterative refinement loops —
//! reuse every score computed for that specification. A warm cache never
//! changes a search trajectory; it only skips network passes.
//!
//! ## Trace-value encoding reuse
//!
//! Beneath the score cache sits a second, finer-grained reuse layer: the
//! step encoder's hidden state for each distinct trace-value token sequence
//! is memoized in a [`TraceEncodingCache`]. The encoder is a deterministic,
//! batch-independent function of the tokens, so values already seen in
//! earlier generations — or earlier runs of the same task, when the engine
//! threads a [`FitnessCache::trace_shard`] through
//! [`FitnessFunction::score_batch_cached`] — skip their LSTM sweep outright,
//! bit-identically. [`LearnedFitness`] also owns a private instance memo, so
//! plain `score_batch` callers get the cross-generation reuse for free;
//! shards are keyed by [`FitnessFunction::cache_key`] because the cached
//! states depend on the model's weights (a trainer updating weights must
//! use a fresh cache).
//!
//! ## The durable cache tier
//!
//! Both reuse layers can outlive the process: a cache opened with
//! [`FitnessCache::durable`] loads previously persisted scores and trace
//! encodings at startup (merged first-write-wins, exactly like in-flight
//! publications) and appends new entries back to checksummed record logs
//! — `scores.nsl` and `traces.nsl` under the chosen directory
//! (`NETSYN_CACHE_DIR` in the evaluation harness and examples). Floats
//! round-trip as raw bit patterns, and shard keys embed the model's
//! weight fingerprint on disk exactly as in memory, so a warm-from-disk
//! restart reproduces byte-identical search trajectories and
//! cross-checkpoint aliasing stays impossible.
//!
//! The tier is built to *fail toward cold, never toward wrong*: torn or
//! bit-flipped record suffixes are dropped at the first CRC failure,
//! unreadable or wrong-version/wrong-vocabulary files are quarantined
//! (renamed, never deleted), flush I/O errors degrade the store to
//! memory-only with a warning, and a worker panic no longer poisons the
//! cache locks for later users (scores are first-write-wins idempotent,
//! so recovering the guard is safe). See [`persist`] for the on-disk
//! format specification and the full crash-consistency contract.
//!
//! ## Concurrency invariants (model-checked)
//!
//! The cache tier's cross-thread protocols are exercised under a loom-style
//! schedule-exploring model checker (the workspace `loom` shim; CI job
//! `model-check`, suite `tests/cache_model.rs`). The invariants the suite
//! proves over every bounded interleaving:
//!
//! * **Exactly-once compute under claims** — when several threads race
//!   [`SpecScores::claim`] on one candidate, exactly one observes
//!   [`Claim::Claimed`] and computes; the rest hit the published score or
//!   [`SpecScores::wait`] for it. The claim slot (`InFlight` marker) is
//!   inserted atomically with the claim decision under the stripe lock.
//! * **No leaked claims** — a worker that panics mid-compute abandons its
//!   claims via [`ClaimGuard`]'s drop *before* the unwind leaves the
//!   scoring call; `wait` then returns `None` and another thread re-claims.
//!   No interleaving strands a waiter or loses the slot.
//! * **First-write-wins convergence** — racing
//!   [`TraceEncodingCache::publish_many`] calls on one key converge on a
//!   single canonical `Arc` (both publishers are handed the stored buffer),
//!   so downstream batches share memory and bytes are identical whichever
//!   thread won.
//!
//! Under `--cfg loom` the `Mutex`/`Condvar` behind the striped caches come
//! from the model-checker shim (see [`mod@cache`] and the crate-private
//! `sync` module); normal builds use `std::sync` types with identical
//! behavior, so the production binary is unchanged.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod dataset;
mod edit;
pub mod encoding;
mod learned;
pub mod metrics;
mod model;
mod oracle;
pub mod persist;
mod probability;
mod sync;
pub mod trainer;
mod traits;

pub use cache::{Claim, ClaimGuard, FitnessCache, SpecScores};
pub use edit::EditDistanceFitness;
pub use encoding::{
    CandidateEncoding, EncodedStep, EncodingConfig, SpecEncoding, SpecEncodingCache,
    SpecEncodingMap, TraceEncodingCache,
};
pub use learned::{LearnedFitness, LearnedProbabilityModel, ProbabilityFitness};
pub use model::{FitnessNet, FitnessNetBatchCache, FitnessNetCache, FitnessNetConfig};
pub use oracle::OracleFitness;
pub use persist::{DurableOptions, FlushStats, LoadReport};
pub use probability::ProbabilityMap;
pub use trainer::{
    EpochStats, FitnessModelKind, TrainedFitnessModel, TrainerConfig, TrainingReport,
};
pub use traits::{ClosenessMetric, FitnessFunction};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EditDistanceFitness>();
        assert_send_sync::<OracleFitness>();
        assert_send_sync::<ProbabilityMap>();
        assert_send_sync::<FitnessNet>();
        assert_send_sync::<LearnedFitness>();
        assert_send_sync::<ProbabilityFitness>();
        assert_send_sync::<Box<dyn FitnessFunction>>();
    }
}
