//! # netsyn-fitness
//!
//! Fitness functions for genetic-algorithm program synthesis, reproducing the
//! central contribution of "Learning Fitness Functions for Machine
//! Programming" (MLSys 2021):
//!
//! * **Ideal / oracle fitness** ([`OracleFitness`]) — grades candidates with
//!   the exact number of common functions (CF) or the longest common
//!   subsequence (LCS) against the hidden target program;
//! * **Hand-crafted fitness** ([`EditDistanceFitness`]) — the output
//!   edit-distance heuristic the paper argues is brittle;
//! * **Learned fitness (NN-FF)** — an LSTM-based model ([`FitnessNet`]) that
//!   predicts CF / LCS values from the specification and the candidate's
//!   execution trace ([`LearnedFitness`]), or a per-function probability map
//!   from the specification alone ([`LearnedProbabilityModel`],
//!   [`ProbabilityFitness`]);
//! * **Corpus generation and training** ([`dataset`], [`trainer`]) — balanced
//!   training-data generation and training loops producing the confusion
//!   matrices and accuracy curves of Figure 7.
//!
//! All fitness functions implement the common [`FitnessFunction`] trait used
//! by the GA engine and the baselines.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dataset;
mod edit;
pub mod encoding;
mod learned;
pub mod metrics;
mod model;
mod oracle;
mod probability;
mod traits;
pub mod trainer;

pub use edit::EditDistanceFitness;
pub use encoding::{EncodedExample, EncodedSample, EncodedStep, EncodingConfig};
pub use learned::{LearnedFitness, LearnedProbabilityModel, ProbabilityFitness};
pub use model::{FitnessNet, FitnessNetCache, FitnessNetConfig};
pub use oracle::OracleFitness;
pub use probability::ProbabilityMap;
pub use traits::{ClosenessMetric, FitnessFunction};
pub use trainer::{
    EpochStats, FitnessModelKind, TrainedFitnessModel, TrainerConfig, TrainingReport,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EditDistanceFitness>();
        assert_send_sync::<OracleFitness>();
        assert_send_sync::<ProbabilityMap>();
        assert_send_sync::<FitnessNet>();
        assert_send_sync::<LearnedFitness>();
        assert_send_sync::<ProbabilityFitness>();
        assert_send_sync::<Box<dyn FitnessFunction>>();
    }
}
