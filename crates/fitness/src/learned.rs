//! Fitness functions backed by trained neural models.
//!
//! * [`LearnedFitness`] wraps a trained CF or LCS classifier: the fitness of a
//!   candidate is the *expected* class value under the predicted softmax
//!   distribution, which gives the genetic algorithm a smooth, non-negative
//!   ranking signal while remaining anchored to the paper's integer-valued
//!   ideal fitness.
//! * [`LearnedProbabilityModel`] wraps a trained FP model and produces a
//!   [`ProbabilityMap`] for a specification; [`ProbabilityFitness`] turns such
//!   a map into the `f_FP` fitness (`Σ p_k` over the candidate's functions)
//!   and also exposes it for FP-guided mutation.

use crate::encoding::{
    encode_candidate, encode_candidates, encode_spec, SpecEncodingCache, TraceEncodingCache,
};
use crate::probability::ProbabilityMap;
use crate::trainer::{FitnessModelKind, TrainedFitnessModel};
use crate::traits::FitnessFunction;
use netsyn_dsl::{IoSpec, Program};
use netsyn_nn::activation::{sigmoid, softmax};
use serde::{Deserialize, Serialize};

/// A fitness function backed by a trained CF or LCS classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedFitness {
    model: TrainedFitnessModel,
    name: String,
    /// `name` plus the model's weight fingerprint: shared caches must never
    /// alias two differently-trained models of the same kind (see
    /// [`crate::FitnessFunction::cache_key`]).
    cache_key: String,
    /// Optional probability map attached for FP-guided mutation.
    mutation_map: Option<ProbabilityMap>,
    /// One-slot memo so the specification of a synthesis run is encoded
    /// exactly once across every `score` / `score_batch` call (derived
    /// state: cleared by `Clone`, ignored by `PartialEq` and serde).
    spec_cache: SpecEncodingCache,
    /// Instance-owned trace-value encoding memo: even without an external
    /// [`crate::FitnessCache`] shard, `score_batch` reuses the step-encoder
    /// hidden states of every value seen in earlier generations (derived
    /// state, like `spec_cache`).
    trace_cache: TraceEncodingCache,
}

impl LearnedFitness {
    /// Wraps a trained CF or LCS model.
    ///
    /// # Panics
    ///
    /// Panics if the model is an FP model (use [`LearnedProbabilityModel`]
    /// and [`ProbabilityFitness`] for that).
    #[must_use]
    pub fn new(mut model: TrainedFitnessModel) -> Self {
        assert!(
            model.kind != FitnessModelKind::FunctionProbability,
            "use ProbabilityFitness for FP models"
        );
        let name = format!("nn-{}", model.kind);
        let cache_key = format!("{name}#{:016x}", model.net.weight_fingerprint());
        LearnedFitness {
            model,
            name,
            cache_key,
            mutation_map: None,
            spec_cache: SpecEncodingCache::new(),
            trace_cache: TraceEncodingCache::new(),
        }
    }

    /// Attaches a probability map (usually produced by a
    /// [`LearnedProbabilityModel`]) so that [`FitnessFunction::probability_map`]
    /// can guide the mutation operator.
    #[must_use]
    pub fn with_mutation_map(mut self, map: ProbabilityMap) -> Self {
        self.mutation_map = Some(map);
        self
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &TrainedFitnessModel {
        &self.model
    }

    /// How many times this fitness function actually encoded a
    /// specification. The GA presents one spec per `synthesize` call, so
    /// after a full run this is exactly 1 (the engine's spec-encoded-once
    /// test asserts it).
    #[must_use]
    pub fn spec_encode_count(&self) -> usize {
        self.spec_cache.encode_count()
    }

    /// How many distinct trace values this instance's *own* memo ran
    /// through the step encoder (misses of the instance cache; batches
    /// scored through [`FitnessFunction::score_batch_cached`] count against
    /// the external shard instead).
    #[must_use]
    pub fn trace_encode_count(&self) -> usize {
        self.trace_cache.encode_count()
    }
}

/// The expected class value under the softmax of `logits` — the smooth
/// fitness signal both the single and the batched scoring paths share.
fn expected_class_value(logits: &[f32]) -> f64 {
    let probs = softmax(logits);
    probs
        .iter()
        .enumerate()
        .map(|(class, &p)| class as f64 * f64::from(p))
        .sum()
}

impl FitnessFunction for LearnedFitness {
    fn name(&self) -> &str {
        &self.name
    }

    /// The name alone is shared by every trained model of the same kind, so
    /// the key folds in the weight fingerprint — a shared
    /// [`crate::FitnessCache`] scoring with two CF checkpoints must not
    /// serve one model's scores (or trace-value encodings) to the other.
    fn cache_key(&self) -> String {
        self.cache_key.clone()
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.net.encoding(), spec);
        let encoded = encode_candidate(self.model.net.encoding(), spec, candidate);
        match self.model.net.predict(&spec_encoding, &encoded) {
            Ok(logits) => expected_class_value(&logits),
            Err(_) => 0.0,
        }
    }

    /// Batched scoring: [`FitnessFunction::score_batch_cached`] against the
    /// instance-owned trace memo, so repeated generations of one synthesis
    /// reuse their trace-value encodings even without an external cache.
    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        self.score_batch_cached(candidates, spec, &self.trace_cache)
    }

    /// Batched scoring: the specification encoding is served from the
    /// one-slot memo (encoded exactly once per synthesis) and shared
    /// zero-copy with the network; every candidate's traces run through one
    /// batched forward pass (`FitnessNet::predict_batch_with`, reusing the
    /// trace-value encodings memoized in `traces` across generations and
    /// runs) and each logit row is converted with the same expected-value
    /// readout as [`FitnessFunction::score`] — scores are bit-identical to
    /// the per-candidate path.
    fn score_batch_cached(
        &self,
        candidates: &[Program],
        spec: &IoSpec,
        traces: &TraceEncodingCache,
    ) -> Vec<f64> {
        let spec_encoding = self
            .spec_cache
            .get_or_encode(self.model.net.encoding(), spec);
        let encoded = encode_candidates(self.model.net.encoding(), spec, candidates);
        match self
            .model
            .net
            .predict_batch_with(&spec_encoding, &encoded, traces)
        {
            Ok(rows) => rows
                .iter()
                .map(|logits| expected_class_value(logits))
                .collect(),
            // A batched failure cannot tell which candidate was invalid;
            // fall back to the per-candidate path so error semantics (0.0
            // for the offending candidates only) are preserved.
            Err(_) => candidates
                .iter()
                .map(|candidate| self.score(candidate, spec))
                .collect(),
        }
    }

    fn max_score(&self) -> f64 {
        self.model.program_length as f64
    }

    fn probability_map(&self, _spec: &IoSpec) -> Option<ProbabilityMap> {
        self.mutation_map.clone()
    }
}

/// A trained FP model: predicts a per-function probability map from a
/// specification (no candidate required).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearnedProbabilityModel {
    model: TrainedFitnessModel,
}

impl LearnedProbabilityModel {
    /// Wraps a trained FP model.
    ///
    /// # Panics
    ///
    /// Panics if the model is not an FP model.
    #[must_use]
    pub fn new(model: TrainedFitnessModel) -> Self {
        assert!(
            model.kind == FitnessModelKind::FunctionProbability,
            "LearnedProbabilityModel requires an FP model"
        );
        LearnedProbabilityModel { model }
    }

    /// The wrapped model.
    #[must_use]
    pub fn model(&self) -> &TrainedFitnessModel {
        &self.model
    }

    /// Predicts the probability map for a specification. The map covers the
    /// vocabulary of the domain the model was trained on
    /// (`EncodingConfig::domain`).
    #[must_use]
    pub fn probability_map(&self, spec: &IoSpec) -> ProbabilityMap {
        let domain = self.model.net.encoding().domain;
        let encoded = encode_spec(self.model.net.encoding(), spec);
        match self.model.net.predict_spec(&encoded) {
            Ok(logits) => {
                let probs: Vec<f64> = logits.iter().map(|&z| f64::from(sigmoid(z))).collect();
                ProbabilityMap::new_for(domain, probs)
            }
            Err(_) => ProbabilityMap::uniform_for(domain),
        }
    }
}

/// The `f_FP` fitness function: scores a candidate by the summed predicted
/// probability of its functions under a fixed probability map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProbabilityFitness {
    map: ProbabilityMap,
    program_length: usize,
    name: String,
}

impl ProbabilityFitness {
    /// Creates the fitness from a probability map and the target program
    /// length (used only for `max_score`).
    #[must_use]
    pub fn new(map: ProbabilityMap, program_length: usize) -> Self {
        ProbabilityFitness {
            map,
            program_length,
            name: "nn-FP".to_string(),
        }
    }

    /// The underlying probability map.
    #[must_use]
    pub fn map(&self) -> &ProbabilityMap {
        &self.map
    }
}

impl FitnessFunction for ProbabilityFitness {
    fn name(&self) -> &str {
        &self.name
    }

    fn score(&self, candidate: &Program, _spec: &IoSpec) -> f64 {
        self.map.score(candidate)
    }

    /// Batched scoring: the FP score depends only on the fixed probability
    /// map, so the batch path simply skips the per-call dynamic dispatch.
    fn score_batch(&self, candidates: &[Program], _spec: &IoSpec) -> Vec<f64> {
        candidates
            .iter()
            .map(|candidate| self.map.score(candidate))
            .collect()
    }

    fn max_score(&self) -> f64 {
        self.program_length as f64
    }

    fn probability_map(&self, _spec: &IoSpec) -> Option<ProbabilityMap> {
        Some(self.map.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::{generate_dataset, generate_fp_dataset, BalanceMetric, DatasetConfig};
    use crate::model::FitnessNetConfig;
    use crate::trainer::{train_fitness_model, TrainerConfig};
    use netsyn_dsl::{Function, Generator, GeneratorConfig, IntPredicate, MapOp};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    fn tiny_trainer_config() -> TrainerConfig {
        let mut config = TrainerConfig::small();
        config.net = FitnessNetConfig {
            value_embed_dim: 4,
            encoder_hidden_dim: 6,
            function_embed_dim: 4,
            trace_hidden_dim: 6,
            example_hidden_dim: 8,
            head_hidden_dim: 8,
            output_dim: 1,
        };
        config.epochs = 1;
        config.batch_size = 8;
        config
    }

    fn tiny_dataset_config(length: usize) -> DatasetConfig {
        let mut config = DatasetConfig::for_length(length);
        config.num_target_programs = 6;
        config.examples_per_program = 2;
        config
    }

    fn trained_cf_model(length: usize, seed: u64) -> TrainedFitnessModel {
        let mut r = rng(seed);
        let samples = generate_dataset(
            &tiny_dataset_config(length),
            BalanceMetric::CommonFunctions,
            &mut r,
        )
        .unwrap();
        train_fitness_model(
            FitnessModelKind::CommonFunctions,
            &samples,
            length,
            &tiny_trainer_config(),
            &mut r,
        )
    }

    fn trained_fp_model(length: usize, seed: u64) -> TrainedFitnessModel {
        let mut r = rng(seed);
        let samples = generate_fp_dataset(&tiny_dataset_config(length), &mut r).unwrap();
        train_fitness_model(
            FitnessModelKind::FunctionProbability,
            &samples,
            length,
            &tiny_trainer_config(),
            &mut r,
        )
    }

    #[test]
    fn learned_fitness_scores_are_in_range() {
        let model = trained_cf_model(3, 1);
        let fitness = LearnedFitness::new(model);
        assert_eq!(fitness.name(), "nn-CF");
        assert_eq!(fitness.max_score(), 3.0);
        let mut r = rng(2);
        let generator = Generator::new(GeneratorConfig::for_length(3));
        let task = generator.task(3, &mut r).unwrap();
        let candidate = generator.random_program(&mut r);
        let score = fitness.score(&candidate, &task.spec);
        assert!(score >= 0.0 && score <= fitness.max_score());
        assert!(fitness.probability_map(&task.spec).is_none());
    }

    #[test]
    fn cache_keys_distinguish_checkpoints_with_identical_names() {
        // Two differently-trained CF models share the display name "nn-CF"
        // but score candidates differently; a shared FitnessCache keyed by
        // name alone would serve one model's scores (and trace-value
        // encodings) to the other. The weight fingerprint in the key
        // prevents that, while identical weights keep identical keys.
        let a = LearnedFitness::new(trained_cf_model(3, 1));
        let b = LearnedFitness::new(trained_cf_model(3, 2));
        let a_again = LearnedFitness::new(trained_cf_model(3, 1));
        assert_eq!(a.name(), b.name());
        assert_ne!(a.cache_key(), b.cache_key());
        assert_eq!(a.cache_key(), a_again.cache_key());
        assert!(a.cache_key().starts_with("nn-CF#"));
    }

    #[test]
    fn learned_fitness_with_mutation_map_exposes_it() {
        let model = trained_cf_model(3, 3);
        let map = ProbabilityMap::uniform();
        let fitness = LearnedFitness::new(model).with_mutation_map(map.clone());
        assert_eq!(fitness.probability_map(&IoSpec::default()), Some(map));
    }

    #[test]
    #[should_panic(expected = "ProbabilityFitness")]
    fn learned_fitness_rejects_fp_models() {
        let model = trained_fp_model(3, 4);
        let _ = LearnedFitness::new(model);
    }

    #[test]
    fn probability_model_produces_valid_maps() {
        let model = trained_fp_model(3, 5);
        let prob_model = LearnedProbabilityModel::new(model);
        let mut r = rng(6);
        let generator = Generator::new(GeneratorConfig::for_length(3));
        let task = generator.task(3, &mut r).unwrap();
        let map = prob_model.probability_map(&task.spec);
        assert!(map.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        assert_eq!(map.as_slice().len(), 41);
    }

    #[test]
    #[should_panic(expected = "requires an FP model")]
    fn probability_model_rejects_cf_models() {
        let model = trained_cf_model(3, 7);
        let _ = LearnedProbabilityModel::new(model);
    }

    #[test]
    fn probability_fitness_scores_and_exposes_map() {
        let target = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ]);
        let map = ProbabilityMap::from_target(&target, 0.05);
        let fitness = ProbabilityFitness::new(map.clone(), 3);
        assert_eq!(fitness.name(), "nn-FP");
        assert_eq!(fitness.max_score(), 3.0);
        let spec = IoSpec::default();
        assert!(
            fitness.score(&target, &spec)
                > fitness.score(&Program::new(vec![Function::Head]), &spec)
        );
        assert_eq!(fitness.probability_map(&spec), Some(map.clone()));
        assert_eq!(fitness.map(), &map);
    }
}
