//! Cross-generation, cross-run fitness score caching.
//!
//! A fitness score is a pure function of `(fitness, candidate, spec)` — and
//! the batched scoring contract guarantees it is *bit-identical* however it
//! is computed — so scores can be reused not just across generations of one
//! GA run (the engine's old per-`synthesize` memo) but across **repeated
//! runs of the same task**: the evaluation harness re-runs every task
//! `K` times, and GA restarts on a fixed specification rediscover many of
//! the same candidate programs.
//!
//! [`FitnessCache`] is the shared handle: it maps a `(fitness cache key, spec)`
//! key to a [`SpecScores`] shard holding `Program → f64` entries. The GA
//! engine checks the shard before scoring and inserts after scoring; because
//! cached values equal recomputed values bit-for-bit, a warm cache never
//! changes a search trajectory — it only skips network passes. The same
//! handle carries the per-model trace-value encoding shards
//! ([`FitnessCache::trace_shard`], keyed by fitness key alone — encodings
//! are spec-independent), which the engine threads into every batched
//! scoring call via
//! [`FitnessFunction::score_batch_cached`](crate::FitnessFunction::score_batch_cached).
//!
//! ## Concurrency
//!
//! The whole cache is `Sync` and designed for a real multi-thread pool (the
//! workspace's rayon shim does work stealing, so the evaluation harness's
//! task×run fan-out genuinely runs repetitions of one task concurrently,
//! all sharing one shard):
//!
//! * **Striped locking** — a [`SpecScores`] shard spreads its entries over
//!   [`STRIPE_COUNT`] independently locked stripes keyed by the program's
//!   hash, so concurrent lookups/inserts of different programs rarely
//!   contend. Batch operations ([`SpecScores::claim_many`],
//!   [`SpecScores::publish_many`]) group programs by stripe and take each
//!   stripe lock once. No lock is ever held while scoring.
//! * **In-flight claims** — scoring the same program twice from two threads
//!   is wasted network inference (and makes memo-hit counters
//!   nondeterministic), so a shard tracks *in-flight* programs: a thread
//!   that intends to score first [`claims`](SpecScores::claim_many) the
//!   program. Exactly one thread wins the claim and scores; the others see
//!   [`Claim::Pending`] and [`wait`](SpecScores::wait) for the published
//!   value instead of recomputing it — with one deliberate exception: a
//!   thread that itself holds claims never blocks (see [`resolve_score`])
//!   and recomputes the bit-identical value instead, so the exactly-once
//!   property is "always, except the rare stolen-job-on-a-claimant's-stack
//!   collision", never a hard invariant. Publishing is
//!   **first-write-wins**: a score, once cached, is never overwritten (all
//!   writers would write the bit-identical value anyway).
//! * **Panic safety** — a claimant that dies before publishing would leave
//!   waiters hanging; [`ClaimGuard`] abandons unpublished claims on drop,
//!   waking waiters, who then re-claim and score the program themselves
//!   (see [`resolve_score`]).

use crate::encoding::TraceEncodingCache;
use crate::persist::{
    DurableOptions, DurableStore, FlushStats, LoadReport, ScoreSnapshot, TraceSnapshot,
};
use crate::sync::{lock_recovering, read_recovering, wait_recovering, write_recovering};
use crate::sync::{Condvar, Mutex};
use netsyn_dsl::{IoSpec, Program};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::path::Path;
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independently locked stripes in a [`SpecScores`] shard.
/// A power of two so the stripe index is a mask of the hash.
pub const STRIPE_COUNT: usize = 16;

/// One cached entry: a published score, or a marker that some thread is
/// currently computing it.
#[derive(Debug, Clone, Copy)]
enum Slot {
    Done(f64),
    InFlight,
}

#[derive(Debug, Default)]
struct Stripe {
    slots: Mutex<HashMap<Program, Slot>>,
    /// Signalled whenever a score is published into — or an in-flight claim
    /// is abandoned from — this stripe.
    published: Condvar,
}

/// The result of claiming a program for scoring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Claim {
    /// The score is already cached.
    Hit(f64),
    /// The caller now owns the claim: it must score the program and
    /// [`publish`](SpecScores::publish) (or abandon) it.
    Claimed,
    /// Another thread holds the claim; [`SpecScores::wait`] for the value.
    Pending,
}

/// Scores cached for one `(fitness, spec)` pair, striped for concurrent
/// access (see the module docs).
#[derive(Debug)]
pub struct SpecScores {
    stripes: Vec<Stripe>,
}

impl Default for SpecScores {
    fn default() -> Self {
        SpecScores {
            stripes: (0..STRIPE_COUNT).map(|_| Stripe::default()).collect(),
        }
    }
}

fn stripe_index(program: &Program) -> usize {
    let mut hasher = DefaultHasher::new();
    program.hash(&mut hasher);
    (hasher.finish() as usize) & (STRIPE_COUNT - 1)
}

impl SpecScores {
    fn stripe(&self, program: &Program) -> &Stripe {
        &self.stripes[stripe_index(program)]
    }

    /// The cached score of `candidate`, if published.
    #[must_use]
    pub fn get(&self, candidate: &Program) -> Option<f64> {
        match lock_recovering(&self.stripe(candidate).slots).get(candidate) {
            Some(Slot::Done(score)) => Some(*score),
            _ => None,
        }
    }

    /// Caches one score (first write wins; a published score is never
    /// overwritten, and any thread waiting on an in-flight claim for
    /// `candidate` is woken).
    pub fn insert(&self, candidate: Program, score: f64) {
        let stripe = self.stripe(&candidate);
        let mut slots = lock_recovering(&stripe.slots);
        match slots.get(&candidate) {
            Some(Slot::Done(_)) => {}
            Some(Slot::InFlight) => {
                slots.insert(candidate, Slot::Done(score));
                stripe.published.notify_all();
            }
            None => {
                slots.insert(candidate, Slot::Done(score));
            }
        }
    }

    /// Published scores for a whole batch, taking each stripe lock once.
    #[must_use]
    pub fn get_many(&self, programs: &[Program]) -> Vec<Option<f64>> {
        let mut out = vec![None; programs.len()];
        self.for_each_stripe(Notify::Nobody, programs, |slots, index| {
            if let Some(Slot::Done(score)) = slots.get(&programs[index]) {
                out[index] = Some(*score);
            }
        });
        out
    }

    /// Claims a whole batch for scoring, taking each stripe lock once: for
    /// each program, either its published score ([`Claim::Hit`]), ownership
    /// of the scoring work ([`Claim::Claimed`] — the caller must publish or
    /// abandon, see [`ClaimGuard`]), or [`Claim::Pending`] when another
    /// thread already owns it.
    #[must_use]
    pub fn claim_many(&self, programs: &[Program]) -> Vec<Claim> {
        let mut out = vec![Claim::Pending; programs.len()];
        self.for_each_stripe(Notify::Nobody, programs, |slots, index| {
            out[index] = match slots.get(&programs[index]) {
                Some(Slot::Done(score)) => Claim::Hit(*score),
                Some(Slot::InFlight) => Claim::Pending,
                None => {
                    slots.insert(programs[index].clone(), Slot::InFlight);
                    Claim::Claimed
                }
            };
        });
        out
    }

    /// [`SpecScores::claim_many`] for a single program.
    #[must_use]
    pub fn claim(&self, program: &Program) -> Claim {
        let mut slots = lock_recovering(&self.stripe(program).slots);
        match slots.get(program) {
            Some(Slot::Done(score)) => Claim::Hit(*score),
            Some(Slot::InFlight) => Claim::Pending,
            None => {
                slots.insert(program.clone(), Slot::InFlight);
                Claim::Claimed
            }
        }
    }

    /// Publishes one claimed score (equivalent to [`SpecScores::insert`]).
    pub fn publish(&self, program: Program, score: f64) {
        self.insert(program, score);
    }

    /// Publishes a batch of claimed scores, taking each stripe lock once
    /// and waking every thread waiting on one of them.
    ///
    /// # Panics
    ///
    /// Panics if `scores` is not exactly one value per program. This is a
    /// hard assert (not `debug_assert`): silently truncating would leave
    /// the unmatched programs `InFlight` forever with no owner, permanently
    /// hanging any thread waiting on them — a panic instead trips the
    /// caller's [`ClaimGuard`], which abandons the claims and wakes the
    /// waiters.
    pub fn publish_many(&self, programs: &[Program], scores: &[f64]) {
        assert_eq!(
            programs.len(),
            scores.len(),
            "publish_many requires one score per claimed program"
        );
        self.for_each_stripe(Notify::Waiters, programs, |slots, index| {
            // The common case is flipping this thread's own InFlight claim:
            // update the slot in place (no key clone). First write wins —
            // never replace a published score.
            if let Some(slot) = slots.get_mut(&programs[index]) {
                if matches!(slot, Slot::InFlight) {
                    *slot = Slot::Done(scores[index]);
                }
            } else {
                slots.insert(programs[index].clone(), Slot::Done(scores[index]));
            }
        });
    }

    /// Drops the in-flight claims on `programs` that were never published,
    /// waking waiters so they can re-claim (used on panic, see
    /// [`ClaimGuard`]). Published entries are left untouched.
    pub fn abandon_many(&self, programs: &[Program]) {
        self.for_each_stripe(Notify::Waiters, programs, |slots, index| {
            if let Some(Slot::InFlight) = slots.get(&programs[index]) {
                slots.remove(&programs[index]);
            }
        });
    }

    /// Blocks until the in-flight claim on `program` resolves: `Some(score)`
    /// once published, or `None` if the claim was abandoned (or never
    /// existed) — the caller should then claim and score it itself.
    #[must_use]
    pub fn wait(&self, program: &Program) -> Option<f64> {
        let stripe = self.stripe(program);
        let mut slots = lock_recovering(&stripe.slots);
        loop {
            match slots.get(program) {
                Some(Slot::Done(score)) => return Some(*score),
                Some(Slot::InFlight) => {
                    slots = wait_recovering(&stripe.published, slots);
                }
                None => return None,
            }
        }
    }

    /// Number of *published* scores (in-flight claims are not counted).
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|stripe| {
                lock_recovering(&stripe.slots)
                    .values()
                    .filter(|slot| matches!(slot, Slot::Done(_)))
                    .count()
            })
            .sum()
    }

    /// Whether no scores are published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every published `(program, score)` entry, in a deterministic order
    /// (sorted by the program's function ids) — the snapshot the durable
    /// tier flushes. In-flight claims are not included.
    #[must_use]
    pub fn export(&self) -> Vec<(Program, f64)> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let slots = lock_recovering(&stripe.slots);
            for (program, slot) in slots.iter() {
                if let Slot::Done(score) = slot {
                    out.push((program.clone(), *score));
                }
            }
        }
        out.sort_by_cached_key(|(program, _)| program.ids());
        out
    }

    /// Runs `body` once per program index, grouped so each stripe's lock is
    /// acquired at most once for the whole batch; with [`Notify::Waiters`]
    /// every waiter of each touched stripe is woken afterwards
    /// (publish/abandon paths).
    fn for_each_stripe(
        &self,
        notify: Notify,
        programs: &[Program],
        mut body: impl FnMut(&mut HashMap<Program, Slot>, usize),
    ) {
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); STRIPE_COUNT];
        for (index, program) in programs.iter().enumerate() {
            by_stripe[stripe_index(program)].push(index);
        }
        for (stripe, indices) in self.stripes.iter().zip(by_stripe) {
            if indices.is_empty() {
                continue;
            }
            {
                let mut slots = lock_recovering(&stripe.slots);
                for index in indices {
                    body(&mut slots, index);
                }
            }
            if notify == Notify::Waiters {
                stripe.published.notify_all();
            }
        }
    }
}

/// Whether a batched stripe sweep wakes each touched stripe's waiters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Notify {
    Nobody,
    Waiters,
}

thread_local! {
    /// Number of in-flight claims the current thread holds (armed
    /// [`ClaimGuard`]s). Load-bearing for deadlock freedom: a thread that
    /// holds claims must never *block* waiting on someone else's claim —
    /// on the work-stealing pool, a claimant's scoring call enters the
    /// pool's helping loop, which can execute a stolen sibling attempt on
    /// the same stack; if that attempt blocked on a claim held by a frame
    /// below it, the claimant could never resume to publish. Blocking only
    /// when this counter is zero makes wait-for cycles impossible (every
    /// blocked waiter holds nothing, and claimants always run to
    /// completion), at the cost of an occasional duplicated — bit-identical
    /// — score in exactly the stolen-job collision case.
    static CLAIMS_HELD: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// Panic-safe ownership of a batch of in-flight claims.
///
/// Holds the programs a thread has [`Claimed`](Claim::Claimed); on
/// [`ClaimGuard::publish_scores`] the scores are published and the guard is
/// disarmed. If the guard is dropped without publishing — the scoring call
/// panicked — every still-unpublished claim is abandoned so waiting threads
/// re-claim the programs instead of hanging forever. While armed, the guard
/// marks the current thread as a claim holder (see `CLAIMS_HELD`).
#[must_use]
pub struct ClaimGuard<'a> {
    scores: &'a SpecScores,
    programs: &'a [Program],
    armed: bool,
}

impl<'a> ClaimGuard<'a> {
    /// Guards claims on `programs` (which the caller must have
    /// successfully claimed) until published or dropped.
    pub fn new(scores: &'a SpecScores, programs: &'a [Program]) -> Self {
        CLAIMS_HELD.with(|held| held.set(held.get() + 1));
        ClaimGuard {
            scores,
            programs,
            armed: true,
        }
    }

    /// Publishes one score per guarded program (in order) and disarms.
    pub fn publish_scores(mut self, values: &[f64]) {
        self.scores.publish_many(self.programs, values);
        self.armed = false;
        CLAIMS_HELD.with(|held| held.set(held.get() - 1));
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.scores.abandon_many(self.programs);
            CLAIMS_HELD.with(|held| held.set(held.get() - 1));
        }
    }
}

/// Resolves one program's score through the shard's claim protocol: serve
/// the published value, or win the claim and compute it with `score` (a
/// panic abandons the claim), or — when another thread owns the claim —
/// wait for its published value, re-claiming if the owner abandons.
///
/// At most one thread runs `score` for a given program per shard in every
/// ordinary race. The single exception is deliberate: if the *current
/// thread already holds claims* (it is a stolen pool job running on a
/// claimant's stack), blocking could dead-lock on a claim held by a lower
/// frame of this very stack, so the score is recomputed locally instead —
/// bit-identical by the batched-scoring contract, and first-write-wins
/// publication keeps one canonical entry.
pub fn resolve_score(
    scores: &SpecScores,
    program: &Program,
    score: impl Fn(&Program) -> f64,
) -> f64 {
    loop {
        match scores.claim(program) {
            Claim::Hit(value) => return value,
            Claim::Claimed => {
                let owned = std::slice::from_ref(program);
                let guard = ClaimGuard::new(scores, owned);
                let value = score(program);
                guard.publish_scores(&[value]);
                return value;
            }
            Claim::Pending => {
                if CLAIMS_HELD.with(std::cell::Cell::get) > 0 {
                    // Never block while holding claims (see CLAIMS_HELD):
                    // compute the bit-identical value ourselves and publish
                    // it first-write-wins, leaving the owner's claim alone.
                    let value = score(program);
                    scores.insert(program.clone(), value);
                    return value;
                }
                if let Some(value) = scores.wait(program) {
                    return value;
                }
                // The claimant abandoned (panicked); loop and re-claim.
            }
        }
    }
}

/// Resolves a whole batch through the claim protocol — the shared engine of
/// the GA's `evaluate_population` and the DFS neighborhood's
/// `rank_neighbors` (one implementation, so protocol fixes cannot drift):
/// programs with published scores are served as hits; the programs this
/// call wins are scored with **one** `score_batch` invocation and published
/// (a panic abandons the claims, see [`ClaimGuard`]); programs another
/// thread is scoring are awaited via [`resolve_score`]. Scores land by
/// input index, so the result is independent of scheduling.
///
/// `score_batch` must return one value per input program, in input order,
/// bit-identical to per-program scoring (the workspace-wide contract).
pub fn resolve_batch(
    scores: &SpecScores,
    programs: &[Program],
    score_batch: impl Fn(&[Program]) -> Vec<f64>,
) -> Vec<f64> {
    let mut resolved: Vec<Option<f64>> = vec![None; programs.len()];
    let claims = scores.claim_many(programs);
    let mut to_score: Vec<usize> = Vec::new();
    let mut awaited: Vec<usize> = Vec::new();
    for (index, claim) in claims.into_iter().enumerate() {
        match claim {
            Claim::Hit(value) => resolved[index] = Some(value),
            Claim::Claimed => to_score.push(index),
            Claim::Pending => awaited.push(index),
        }
    }
    if !to_score.is_empty() {
        let batch: Vec<Program> = to_score.iter().map(|&i| programs[i].clone()).collect();
        let guard = ClaimGuard::new(scores, &batch);
        let fresh = score_batch(&batch);
        debug_assert_eq!(fresh.len(), batch.len());
        for (&index, &value) in to_score.iter().zip(fresh.iter()) {
            resolved[index] = Some(value);
        }
        guard.publish_scores(&fresh);
    }
    for index in awaited {
        resolved[index] = Some(resolve_score(scores, &programs[index], |program| {
            score_batch(std::slice::from_ref(program))[0]
        }));
    }
    resolved
        .into_iter()
        .map(|value| value.expect("every program resolved"))
        .collect()
}

/// A shared, spec-keyed cache of fitness scores, living across `synthesize`
/// calls (see the module docs).
///
/// Shards are stored as a two-level map keyed by fitness key, then spec,
/// behind a read-write lock: the hot path (`shard` on an existing entry,
/// hit once per `synthesize`) takes only the read lock and allocates
/// nothing; the write lock is taken — and the key `String` / `IoSpec`
/// cloned — only when a new shard is inserted.
#[derive(Debug, Default)]
pub struct FitnessCache {
    shards: RwLock<HashMap<String, HashMap<IoSpec, Arc<SpecScores>>>>,
    /// Trace-value encoding shards, keyed by fitness key alone: a trace
    /// value's encoding depends on the model's weights but *not* on the
    /// specification, so one shard serves every spec scored by the same
    /// fitness function.
    traces: RwLock<HashMap<String, Arc<TraceEncodingCache>>>,
    /// The durable tier, present only on caches opened with
    /// [`FitnessCache::durable`]. Plain in-memory caches pay nothing.
    store: OnceLock<Arc<DurableStore>>,
}

impl FitnessCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        FitnessCache::default()
    }

    /// Opens a **durable** cache over `dir`: every surviving entry of the
    /// directory's record logs is loaded (warm start), and
    /// [`FitnessCache::flush`] / [`FitnessCache::maybe_periodic_flush`] /
    /// drop append new entries back. Recovery is graceful — damaged
    /// suffixes are dropped, unreadable files are quarantined (renamed,
    /// never deleted), and on any doubt the affected shard starts cold;
    /// see [`crate::persist`] for the full contract.
    ///
    /// # Errors
    ///
    /// Only directory creation can fail; file-level problems degrade to a
    /// cold cache instead of erroring.
    pub fn durable(dir: impl AsRef<Path>) -> std::io::Result<FitnessCache> {
        Self::durable_with(dir, DurableOptions::default())
    }

    /// [`FitnessCache::durable`] with explicit [`DurableOptions`] (flush
    /// interval, fault injection for tests).
    ///
    /// # Errors
    ///
    /// Only directory creation can fail.
    pub fn durable_with(
        dir: impl AsRef<Path>,
        options: DurableOptions,
    ) -> std::io::Result<FitnessCache> {
        let cache = FitnessCache::new();
        let store = DurableStore::open(dir.as_ref(), options, &cache)?;
        let _ = cache.store.set(store);
        Ok(cache)
    }

    /// The directory backing this cache, when durable.
    #[must_use]
    pub fn cache_dir(&self) -> Option<&Path> {
        self.store.get().map(|store| store.dir())
    }

    /// What loading the cache directory found (quarantines, dropped
    /// suffixes, entry counts); `None` for in-memory caches.
    #[must_use]
    pub fn load_report(&self) -> Option<&LoadReport> {
        self.store.get().map(|store| store.report())
    }

    /// Synchronously flush every not-yet-persisted entry to disk
    /// (append + fsync). Returns what was appended; `None` for in-memory
    /// caches. I/O failure degrades the store to memory-only with a
    /// warning — it never panics and never corrupts the log.
    pub fn flush(&self) -> Option<FlushStats> {
        let store = self.store.get()?;
        store.join_flusher();
        let (scores, traces) = self.snapshots();
        Some(store.flush_snapshots(&scores, &traces))
    }

    /// Ticks the periodic-flush clock (the GA engine calls this once per
    /// generation); every `flush_every` ticks the new entries are flushed
    /// on a background thread. A no-op for in-memory caches — callers
    /// never need to know whether durability is on.
    pub fn maybe_periodic_flush(&self) {
        let Some(store) = self.store.get() else {
            return;
        };
        if store.tick() {
            let (scores, traces) = self.snapshots();
            store.flush_async(scores, traces);
        }
    }

    /// Rewrites the backing logs from the full in-memory content (atomic
    /// replace), dropping any accumulated append-only redundancy and
    /// clearing a broken-store condition. `None` for in-memory caches.
    pub fn compact(&self) -> Option<std::io::Result<()>> {
        let store = self.store.get()?;
        store.join_flusher();
        let (scores, traces) = self.snapshots();
        Some(store.compact(&scores, &traces))
    }

    /// Cheap `Arc` snapshots of every shard, for the durable tier.
    fn snapshots(&self) -> (ScoreSnapshot, TraceSnapshot) {
        let mut scores: ScoreSnapshot = Vec::new();
        {
            let shards = read_recovering(&self.shards);
            for (key, specs) in shards.iter() {
                for (spec, shard) in specs.iter() {
                    scores.push((key.clone(), spec.clone(), Arc::clone(shard)));
                }
            }
        }
        let mut traces: Vec<(String, Arc<TraceEncodingCache>)> = Vec::new();
        {
            let map = read_recovering(&self.traces);
            for (key, shard) in map.iter() {
                traces.push((key.clone(), Arc::clone(shard)));
            }
        }
        // Deterministic flush order, so identical runs write identical
        // bytes (IoSpec has no Ord; its derived Debug form shows every
        // example and is injective, which is all an order key needs).
        scores.sort_by_cached_key(|(key, spec, _)| (key.clone(), format!("{spec:?}")));
        traces.sort_by(|a, b| a.0.cmp(&b.0));
        (scores, traces)
    }

    /// The score shard for one `(fitness, spec)` pair, created on first use.
    ///
    /// `fitness_key` must come from
    /// [`FitnessFunction::cache_key`](crate::FitnessFunction::cache_key):
    /// two functions that can score the same `(candidate, spec)` pair
    /// differently must present different keys (the oracle folds its hidden
    /// target into the key for exactly this reason — distinct targets can
    /// induce identical specs).
    #[must_use]
    pub fn shard(&self, fitness_key: &str, spec: &IoSpec) -> Arc<SpecScores> {
        {
            let shards = read_recovering(&self.shards);
            if let Some(shard) = shards.get(fitness_key).and_then(|specs| specs.get(spec)) {
                return Arc::clone(shard);
            }
        }
        let mut shards = write_recovering(&self.shards);
        // Double-check: another thread may have inserted between the locks.
        if let Some(shard) = shards.get(fitness_key).and_then(|specs| specs.get(spec)) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(SpecScores::default());
        shards
            .entry(fitness_key.to_string())
            .or_default()
            .insert(spec.clone(), Arc::clone(&shard));
        shard
    }

    /// The trace-value encoding shard for one fitness function, created on
    /// first use.
    ///
    /// `fitness_key` must come from
    /// [`FitnessFunction::cache_key`](crate::FitnessFunction::cache_key) for
    /// the same reason as [`FitnessCache::shard`]: cached encodings are a
    /// function of the model's step-encoder weights, which the key
    /// identifies. Unlike score shards the trace shard is *not* keyed by
    /// spec — trace-value encodings are specification-independent, so
    /// different tasks scored by one model share their recurring values.
    #[must_use]
    pub fn trace_shard(&self, fitness_key: &str) -> Arc<TraceEncodingCache> {
        {
            let traces = read_recovering(&self.traces);
            if let Some(shard) = traces.get(fitness_key) {
                return Arc::clone(shard);
            }
        }
        let mut traces = write_recovering(&self.traces);
        if let Some(shard) = traces.get(fitness_key) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(TraceEncodingCache::new());
        traces.insert(fitness_key.to_string(), Arc::clone(&shard));
        shard
    }

    /// Number of `(fitness, spec)` shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        read_recovering(&self.shards)
            .values()
            .map(HashMap::len)
            .sum()
    }
}

impl Drop for FitnessCache {
    /// Durable caches flush on drop — panic-safe: a failure to flush (or a
    /// panic unwinding through cache users) never escalates, it only costs
    /// the unflushed delta.
    fn drop(&mut self) {
        if self.store.get().is_none() {
            return;
        }
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = self.flush();
        }));
        if let Some(store) = self.store.get() {
            store.join_flusher();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn spec(seed: i64) -> IoSpec {
        IoSpec::from_program(
            &Program::new(vec![Function::Sort]),
            &[vec![netsyn_dsl::Value::List(vec![seed, 2, 1])]],
        )
    }

    #[test]
    fn shards_are_keyed_by_name_and_spec() {
        let cache = FitnessCache::new();
        let a = cache.shard("nn-CF", &spec(1));
        let b = cache.shard("nn-CF", &spec(1));
        let c = cache.shard("nn-LCS", &spec(1));
        let d = cache.shard("nn-CF", &spec(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.shard_count(), 3);
    }

    #[test]
    fn oracle_keys_distinguish_targets_with_identical_specs() {
        use crate::{ClosenessMetric, FitnessFunction, OracleFitness};
        // Both targets are the identity on lists, so they induce the same
        // specification — but they assign different CF scores. Their cache
        // keys must differ or a shared cache would alias them.
        let two = Program::new(vec![Function::Reverse, Function::Reverse]);
        let four = Program::new(vec![Function::Reverse; 4]);
        let inputs = vec![vec![netsyn_dsl::Value::List(vec![3, 1, 2])]];
        let spec_two = IoSpec::from_program(&two, &inputs);
        let spec_four = IoSpec::from_program(&four, &inputs);
        assert_eq!(spec_two, spec_four);
        let a = OracleFitness::new(two, ClosenessMetric::CommonFunctions);
        let b = OracleFitness::new(four, ClosenessMetric::CommonFunctions);
        assert_eq!(a.name(), b.name());
        assert_ne!(a.cache_key(), b.cache_key());
        let cache = FitnessCache::new();
        assert!(!Arc::ptr_eq(
            &cache.shard(&a.cache_key(), &spec_two),
            &cache.shard(&b.cache_key(), &spec_four)
        ));
    }

    #[test]
    fn shard_hits_do_not_grow_the_cache() {
        let cache = FitnessCache::new();
        let first = cache.shard("nn-CF", &spec(1));
        assert_eq!(cache.shard_count(), 1);
        // Repeated lookups of the same (key, spec) pair are pure hits: the
        // same shard comes back and no new entries (and thus no cloned
        // keys/specs) are created at either map level.
        for _ in 0..100 {
            let hit = cache.shard("nn-CF", &spec(1));
            assert!(Arc::ptr_eq(&first, &hit));
        }
        assert_eq!(cache.shard_count(), 1);
        // A new spec under the same fitness key adds exactly one shard.
        let _ = cache.shard("nn-CF", &spec(2));
        assert_eq!(cache.shard_count(), 2);
    }

    #[test]
    fn trace_shards_are_keyed_by_fitness_alone() {
        let cache = FitnessCache::new();
        let a = cache.trace_shard("nn-CF");
        let b = cache.trace_shard("nn-CF");
        let c = cache.trace_shard("nn-LCS");
        assert!(Arc::ptr_eq(&a, &b), "one shard per fitness key");
        assert!(!Arc::ptr_eq(&a, &c), "models must not share encodings");
        assert!(a.is_empty());
        // Trace shards live beside — not inside — the spec-keyed score
        // shards.
        assert_eq!(cache.shard_count(), 0);
    }

    #[test]
    fn scores_round_trip_through_a_shard() {
        let cache = FitnessCache::new();
        let shard = cache.shard("edit-distance", &spec(3));
        let program = Program::new(vec![Function::Head]);
        assert!(shard.is_empty());
        assert_eq!(shard.get(&program), None);
        shard.insert(program.clone(), 0.25);
        assert_eq!(shard.get(&program), Some(0.25));
        assert_eq!(shard.len(), 1);
        // The same shard is visible through a re-acquired handle.
        assert_eq!(
            cache.shard("edit-distance", &spec(3)).get(&program),
            Some(0.25)
        );
        shard.insert(Program::new(vec![Function::Sum]), 1.5);
        assert_eq!(shard.len(), 2);
    }

    #[test]
    fn published_scores_are_first_write_wins() {
        let scores = SpecScores::default();
        let program = Program::new(vec![Function::Sort]);
        scores.insert(program.clone(), 1.0);
        scores.insert(program.clone(), 2.0);
        assert_eq!(scores.get(&program), Some(1.0));
        scores.publish_many(std::slice::from_ref(&program), &[3.0]);
        assert_eq!(scores.get(&program), Some(1.0));
    }

    #[test]
    fn claim_protocol_round_trip() {
        let scores = SpecScores::default();
        let programs: Vec<Program> = vec![
            Program::new(vec![Function::Head]),
            Program::new(vec![Function::Last]),
            Program::new(vec![Function::Sum]),
        ];
        scores.insert(programs[0].clone(), 0.5);
        let claims = scores.claim_many(&programs);
        assert_eq!(claims[0], Claim::Hit(0.5));
        assert_eq!(claims[1], Claim::Claimed);
        assert_eq!(claims[2], Claim::Claimed);
        // A second claimant sees the in-flight entries as pending.
        assert_eq!(scores.claim(&programs[1]), Claim::Pending);
        // In-flight claims are not published scores.
        assert_eq!(scores.len(), 1);
        assert_eq!(scores.get_many(&programs), vec![Some(0.5), None, None]);
        scores.publish_many(&programs[1..], &[1.5, 2.5]);
        assert_eq!(scores.len(), 3);
        assert_eq!(
            scores.get_many(&programs),
            vec![Some(0.5), Some(1.5), Some(2.5)]
        );
        assert_eq!(scores.wait(&programs[2]), Some(2.5));
    }

    #[test]
    fn abandoned_claims_unblock_waiters() {
        let scores = SpecScores::default();
        let program = Program::new(vec![Function::Reverse]);
        assert_eq!(scores.claim(&program), Claim::Claimed);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| scores.wait(&program));
            // Give the waiter a moment to block, then abandon the claim.
            std::thread::sleep(std::time::Duration::from_millis(20));
            scores.abandon_many(std::slice::from_ref(&program));
            assert_eq!(waiter.join().expect("waiter survives"), None);
        });
        // The program is claimable again.
        assert_eq!(scores.claim(&program), Claim::Claimed);
    }

    #[test]
    fn dropped_claim_guard_abandons_unpublished_claims() {
        let scores = SpecScores::default();
        let programs = vec![
            Program::new(vec![Function::Head]),
            Program::new(vec![Function::Last]),
        ];
        let claims = scores.claim_many(&programs);
        assert!(claims.iter().all(|c| *c == Claim::Claimed));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _guard = ClaimGuard::new(&scores, &programs);
            panic!("scoring failed");
        }));
        assert!(result.is_err());
        // Both claims were abandoned: they can be claimed afresh.
        assert_eq!(scores.claim(&programs[0]), Claim::Claimed);
        assert_eq!(scores.claim(&programs[1]), Claim::Claimed);
    }

    /// Regression test for lock-poisoning fragility: a worker panicking
    /// while holding a stripe lock used to poison the `Mutex` and abort
    /// every later user of the shard. Published scores are first-write-wins
    /// immutable, so recovering the guard is safe — and now mandatory.
    #[test]
    fn panicked_worker_does_not_poison_the_shard_for_later_users() {
        let scores = SpecScores::default();
        let sorted = Program::new(vec![Function::Sort]);
        let head = Program::new(vec![Function::Head]);
        scores.insert(sorted.clone(), 0.75);

        // Poison the stripe that holds `sorted`: panic while holding its
        // lock, the way a dying scoring worker would.
        let stripe = scores.stripe(&sorted);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let _guard = stripe.slots.lock().unwrap();
                panic!("worker dies while holding the stripe lock");
            });
            assert!(worker.join().is_err());
        });
        assert!(stripe.slots.is_poisoned());

        // Every operation on the shard still works: reads see the
        // already-published score, writes and the claim protocol proceed.
        assert_eq!(scores.get(&sorted), Some(0.75));
        assert_eq!(scores.len(), 1);
        scores.insert(sorted.clone(), 9.0);
        assert_eq!(scores.get(&sorted), Some(0.75), "still first-write-wins");
        assert_eq!(resolve_score(&scores, &head, |_| 2.0), 2.0);
        assert_eq!(
            scores.get_many(&[sorted, head]),
            vec![Some(0.75), Some(2.0)]
        );
    }

    /// The same recovery guarantee for the [`FitnessCache`] shard maps:
    /// poisoning the top-level `RwLock` must not abort later lookups.
    #[test]
    fn panicked_worker_does_not_poison_the_cache_maps() {
        let cache = FitnessCache::new();
        let shard = cache.shard("nn-CF", &spec(1));
        shard.insert(Program::new(vec![Function::Sort]), 0.5);
        let _ = cache.trace_shard("nn-CF");

        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let _shards = cache.shards.write().unwrap();
                let _traces = cache.traces.write().unwrap();
                panic!("worker dies while holding both cache locks");
            });
            assert!(worker.join().is_err());
        });
        assert!(cache.shards.is_poisoned());
        assert!(cache.traces.is_poisoned());

        // Existing shards are still served (same Arc), and new shards can
        // still be created through the recovered write lock.
        assert!(Arc::ptr_eq(&shard, &cache.shard("nn-CF", &spec(1))));
        assert_eq!(
            cache
                .shard("nn-CF", &spec(1))
                .get(&Program::new(vec![Function::Sort])),
            Some(0.5)
        );
        let _ = cache.shard("nn-CF", &spec(2));
        assert_eq!(cache.shard_count(), 2);
        let _ = cache.trace_shard("nn-LCS");
    }

    /// The satellite regression test: hammer one shard from N threads that
    /// all try to score the same batch of programs through the claim
    /// protocol. Every program must be scored by exactly one thread, and
    /// every thread must observe the same published values. (Exactly-once
    /// is deterministic here because these are plain threads holding no
    /// other claims while they wait — the `resolve_score` no-block
    /// recompute escape never triggers.)
    #[test]
    fn n_threads_never_score_the_same_program_twice() {
        const THREADS: usize = 8;
        let programs: Vec<Program> = Function::ALL
            .iter()
            .flat_map(|&a| {
                Function::ALL[..4]
                    .iter()
                    .map(move |&b| Program::new(vec![a, b]))
            })
            .collect();
        let scores = SpecScores::default();
        let score_calls: Vec<AtomicUsize> =
            (0..programs.len()).map(|_| AtomicUsize::new(0)).collect();
        let fake_score = |index: usize| (index as f64) * 0.25 + 1.0;
        std::thread::scope(|scope| {
            for thread in 0..THREADS {
                let programs = &programs;
                let scores = &scores;
                let score_calls = &score_calls;
                scope.spawn(move || {
                    // Each thread walks the batch from a different offset so
                    // claims genuinely interleave.
                    let observed: Vec<f64> = (0..programs.len())
                        .map(|i| {
                            let index = (i + thread * 7) % programs.len();
                            resolve_score(scores, &programs[index], |_| {
                                score_calls[index].fetch_add(1, Ordering::SeqCst);
                                fake_score(index)
                            })
                        })
                        .collect();
                    for (i, value) in observed.iter().enumerate() {
                        let index = (i + thread * 7) % programs.len();
                        assert_eq!(*value, fake_score(index));
                    }
                });
            }
        });
        for (index, calls) in score_calls.iter().enumerate() {
            assert_eq!(
                calls.load(Ordering::SeqCst),
                1,
                "program {index} must be scored exactly once across {THREADS} threads"
            );
        }
        assert_eq!(scores.len(), programs.len());
    }
}
