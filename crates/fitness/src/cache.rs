//! Cross-generation, cross-run fitness score caching.
//!
//! A fitness score is a pure function of `(fitness, candidate, spec)` — and
//! the batched scoring contract guarantees it is *bit-identical* however it
//! is computed — so scores can be reused not just across generations of one
//! GA run (the engine's old per-`synthesize` memo) but across **repeated
//! runs of the same task**: the evaluation harness re-runs every task
//! `K` times, and GA restarts on a fixed specification rediscover many of
//! the same candidate programs.
//!
//! [`FitnessCache`] is the shared handle: it maps a `(fitness cache key, spec)`
//! key to a [`SpecScores`] shard holding `Program → f64` entries. The GA
//! engine checks the shard before scoring and inserts after scoring; because
//! cached values equal recomputed values bit-for-bit, a warm cache never
//! changes a search trajectory — it only skips network passes. The same
//! handle carries the per-model trace-value encoding shards
//! ([`FitnessCache::trace_shard`], keyed by fitness key alone — encodings
//! are spec-independent), which the engine threads into every batched
//! scoring call via
//! [`FitnessFunction::score_batch_cached`](crate::FitnessFunction::score_batch_cached).
//!
//! ## Concurrency
//!
//! The cache is `Sync`; shards are guarded by mutexes that are **not** held
//! while scoring, so concurrent runs of the same task may race to score the
//! same program — both compute the identical value and the second insert is
//! a no-op. Note the workspace's rayon shim runs nested parallel calls
//! inline on its single worker pool: concurrent harness attempts that share
//! a shard contend only on short map lookups, never on network inference.

use crate::encoding::TraceEncodingCache;
use netsyn_dsl::{IoSpec, Program};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Scores cached for one `(fitness, spec)` pair.
#[derive(Debug, Default)]
pub struct SpecScores {
    scores: Mutex<HashMap<Program, f64>>,
}

impl SpecScores {
    /// The cached score of `candidate`, if any.
    #[must_use]
    pub fn get(&self, candidate: &Program) -> Option<f64> {
        self.scores
            .lock()
            .expect("fitness cache poisoned")
            .get(candidate)
            .copied()
    }

    /// Caches one score.
    pub fn insert(&self, candidate: Program, score: f64) {
        self.scores
            .lock()
            .expect("fitness cache poisoned")
            .insert(candidate, score);
    }

    /// Runs `body` with the underlying map locked — the GA engine uses this
    /// to serve a whole population from one lock acquisition.
    pub fn with_scores<R>(&self, body: impl FnOnce(&mut HashMap<Program, f64>) -> R) -> R {
        body(&mut self.scores.lock().expect("fitness cache poisoned"))
    }

    /// Number of cached scores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scores.lock().expect("fitness cache poisoned").len()
    }

    /// Whether no scores are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A shared, spec-keyed cache of fitness scores, living across `synthesize`
/// calls (see the module docs).
///
/// Shards are stored as a two-level map keyed by fitness key, then spec, so
/// a lookup borrows both key components — the hot path (`shard` on an
/// existing entry, hit once per `synthesize`) allocates nothing. The key
/// `String` and `IoSpec` are cloned only when a new shard is inserted.
#[derive(Debug, Default)]
pub struct FitnessCache {
    shards: Mutex<HashMap<String, HashMap<IoSpec, Arc<SpecScores>>>>,
    /// Trace-value encoding shards, keyed by fitness key alone: a trace
    /// value's encoding depends on the model's weights but *not* on the
    /// specification, so one shard serves every spec scored by the same
    /// fitness function.
    traces: Mutex<HashMap<String, Arc<TraceEncodingCache>>>,
}

impl FitnessCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        FitnessCache::default()
    }

    /// The score shard for one `(fitness, spec)` pair, created on first use.
    ///
    /// `fitness_key` must come from
    /// [`FitnessFunction::cache_key`](crate::FitnessFunction::cache_key):
    /// two functions that can score the same `(candidate, spec)` pair
    /// differently must present different keys (the oracle folds its hidden
    /// target into the key for exactly this reason — distinct targets can
    /// induce identical specs).
    #[must_use]
    pub fn shard(&self, fitness_key: &str, spec: &IoSpec) -> Arc<SpecScores> {
        let mut shards = self.shards.lock().expect("fitness cache poisoned");
        if let Some(shard) = shards.get(fitness_key).and_then(|specs| specs.get(spec)) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(SpecScores::default());
        shards
            .entry(fitness_key.to_string())
            .or_default()
            .insert(spec.clone(), Arc::clone(&shard));
        shard
    }

    /// The trace-value encoding shard for one fitness function, created on
    /// first use.
    ///
    /// `fitness_key` must come from
    /// [`FitnessFunction::cache_key`](crate::FitnessFunction::cache_key) for
    /// the same reason as [`FitnessCache::shard`]: cached encodings are a
    /// function of the model's step-encoder weights, which the key
    /// identifies. Unlike score shards the trace shard is *not* keyed by
    /// spec — trace-value encodings are specification-independent, so
    /// different tasks scored by one model share their recurring values.
    #[must_use]
    pub fn trace_shard(&self, fitness_key: &str) -> Arc<TraceEncodingCache> {
        let mut traces = self.traces.lock().expect("fitness cache poisoned");
        if let Some(shard) = traces.get(fitness_key) {
            return Arc::clone(shard);
        }
        let shard = Arc::new(TraceEncodingCache::new());
        traces.insert(fitness_key.to_string(), Arc::clone(&shard));
        shard
    }

    /// Number of `(fitness, spec)` shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards
            .lock()
            .expect("fitness cache poisoned")
            .values()
            .map(HashMap::len)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    fn spec(seed: i64) -> IoSpec {
        IoSpec::from_program(
            &Program::new(vec![Function::Sort]),
            &[vec![netsyn_dsl::Value::List(vec![seed, 2, 1])]],
        )
    }

    #[test]
    fn shards_are_keyed_by_name_and_spec() {
        let cache = FitnessCache::new();
        let a = cache.shard("nn-CF", &spec(1));
        let b = cache.shard("nn-CF", &spec(1));
        let c = cache.shard("nn-LCS", &spec(1));
        let d = cache.shard("nn-CF", &spec(2));
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &c));
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.shard_count(), 3);
    }

    #[test]
    fn oracle_keys_distinguish_targets_with_identical_specs() {
        use crate::{ClosenessMetric, FitnessFunction, OracleFitness};
        // Both targets are the identity on lists, so they induce the same
        // specification — but they assign different CF scores. Their cache
        // keys must differ or a shared cache would alias them.
        let two = Program::new(vec![Function::Reverse, Function::Reverse]);
        let four = Program::new(vec![Function::Reverse; 4]);
        let inputs = vec![vec![netsyn_dsl::Value::List(vec![3, 1, 2])]];
        let spec_two = IoSpec::from_program(&two, &inputs);
        let spec_four = IoSpec::from_program(&four, &inputs);
        assert_eq!(spec_two, spec_four);
        let a = OracleFitness::new(two, ClosenessMetric::CommonFunctions);
        let b = OracleFitness::new(four, ClosenessMetric::CommonFunctions);
        assert_eq!(a.name(), b.name());
        assert_ne!(a.cache_key(), b.cache_key());
        let cache = FitnessCache::new();
        assert!(!Arc::ptr_eq(
            &cache.shard(&a.cache_key(), &spec_two),
            &cache.shard(&b.cache_key(), &spec_four)
        ));
    }

    #[test]
    fn shard_hits_do_not_grow_the_cache() {
        let cache = FitnessCache::new();
        let first = cache.shard("nn-CF", &spec(1));
        assert_eq!(cache.shard_count(), 1);
        // Repeated lookups of the same (key, spec) pair are pure hits: the
        // same shard comes back and no new entries (and thus no cloned
        // keys/specs) are created at either map level.
        for _ in 0..100 {
            let hit = cache.shard("nn-CF", &spec(1));
            assert!(Arc::ptr_eq(&first, &hit));
        }
        assert_eq!(cache.shard_count(), 1);
        // A new spec under the same fitness key adds exactly one shard.
        let _ = cache.shard("nn-CF", &spec(2));
        assert_eq!(cache.shard_count(), 2);
    }

    #[test]
    fn trace_shards_are_keyed_by_fitness_alone() {
        let cache = FitnessCache::new();
        let a = cache.trace_shard("nn-CF");
        let b = cache.trace_shard("nn-CF");
        let c = cache.trace_shard("nn-LCS");
        assert!(Arc::ptr_eq(&a, &b), "one shard per fitness key");
        assert!(!Arc::ptr_eq(&a, &c), "models must not share encodings");
        assert!(a.is_empty());
        // Trace shards live beside — not inside — the spec-keyed score
        // shards.
        assert_eq!(cache.shard_count(), 0);
    }

    #[test]
    fn scores_round_trip_through_a_shard() {
        let cache = FitnessCache::new();
        let shard = cache.shard("edit-distance", &spec(3));
        let program = Program::new(vec![Function::Head]);
        assert!(shard.is_empty());
        assert_eq!(shard.get(&program), None);
        shard.insert(program.clone(), 0.25);
        assert_eq!(shard.get(&program), Some(0.25));
        assert_eq!(shard.len(), 1);
        // The same shard is visible through a re-acquired handle.
        assert_eq!(
            cache.shard("edit-distance", &spec(3)).get(&program),
            Some(0.25)
        );
        shard.with_scores(|scores| {
            scores.insert(Program::new(vec![Function::Sum]), 1.5);
        });
        assert_eq!(shard.len(), 2);
    }
}
