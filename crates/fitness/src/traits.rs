//! The fitness-function abstraction shared by the GA engine, NetSyn and the
//! baselines.

use crate::encoding::TraceEncodingCache;
use crate::probability::ProbabilityMap;
use netsyn_dsl::{IoSpec, Program};

/// A fitness function grades how close a candidate program appears to be to
/// the (unknown) target program described by an [`IoSpec`].
///
/// Scores are non-negative and *higher is better*; the genetic algorithm's
/// Roulette-Wheel selection relies on both properties. `max_score` gives the
/// value a perfect candidate would receive, which the engine uses to
/// normalize saturation statistics; it does not have to be a tight bound.
pub trait FitnessFunction: Send + Sync {
    /// Short human-readable name, e.g. `"NN-CF"` or `"edit-distance"`.
    fn name(&self) -> &str;

    /// Scores a candidate program against the specification.
    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64;

    /// Scores many candidates against one specification, returning one score
    /// per candidate in input order.
    ///
    /// The default implementation scores candidates independently, in
    /// parallel on multicore hosts (scores are pure functions of
    /// `(candidate, spec)`, and the results are collected in input order,
    /// so this is deterministic). Implementations backed by neural models
    /// override it to run the whole batch through the network in one pass
    /// (see `LearnedFitness`), which is the hot path of the genetic
    /// algorithm: every override must return exactly the scores the
    /// per-candidate path would return.
    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        use rayon::prelude::*;
        candidates
            .par_iter()
            .map(|candidate| self.score(candidate, spec))
            .collect()
    }

    /// [`FitnessFunction::score_batch`] with a persistent
    /// [`TraceEncodingCache`] shard, enabling encoding reuse across calls.
    ///
    /// The GA engine threads a shard of the shared [`crate::FitnessCache`]
    /// (keyed by [`FitnessFunction::cache_key`], see
    /// [`crate::FitnessCache::trace_shard`]) through every batched scoring
    /// call, so implementations backed by neural models reuse the
    /// trace-value encodings of earlier generations and earlier runs of the
    /// same task. The contract is unchanged: the scores returned must be
    /// bit-identical to [`FitnessFunction::score`], however warm the cache.
    /// The default implementation ignores the cache, which is always
    /// correct.
    fn score_batch_cached(
        &self,
        candidates: &[Program],
        spec: &IoSpec,
        traces: &TraceEncodingCache,
    ) -> Vec<f64> {
        let _ = traces;
        self.score_batch(candidates, spec)
    }

    /// The key under which a shared [`crate::FitnessCache`] stores this
    /// function's scores.
    ///
    /// Two fitness functions that can assign *different* scores to the same
    /// `(candidate, spec)` pair must return different keys, or a shared
    /// cache would serve one function's scores to the other. The default —
    /// the function's name — is correct for every implementation whose
    /// scores depend only on `(candidate, spec)` and the trained model the
    /// name identifies; implementations carrying extra hidden state must
    /// fold it into the key (see `OracleFitness`, whose scores depend on
    /// the hidden target program).
    fn cache_key(&self) -> String {
        self.name().to_string()
    }

    /// The score a perfect candidate would receive.
    fn max_score(&self) -> f64;

    /// An optional probability map over the DSL functions, used to bias the
    /// mutation operator (`Mutation_FP`). Fitness functions that do not
    /// provide one return `None`.
    fn probability_map(&self, _spec: &IoSpec) -> Option<ProbabilityMap> {
        None
    }
}

/// Blanket implementation so boxed fitness functions can be used directly.
impl<F: FitnessFunction + ?Sized> FitnessFunction for Box<F> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        (**self).score(candidate, spec)
    }

    fn score_batch(&self, candidates: &[Program], spec: &IoSpec) -> Vec<f64> {
        (**self).score_batch(candidates, spec)
    }

    fn score_batch_cached(
        &self,
        candidates: &[Program],
        spec: &IoSpec,
        traces: &TraceEncodingCache,
    ) -> Vec<f64> {
        (**self).score_batch_cached(candidates, spec, traces)
    }

    fn cache_key(&self) -> String {
        (**self).cache_key()
    }

    fn max_score(&self) -> f64 {
        (**self).max_score()
    }

    fn probability_map(&self, spec: &IoSpec) -> Option<ProbabilityMap> {
        (**self).probability_map(spec)
    }
}

/// The closeness metric a fitness function is built around.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ClosenessMetric {
    /// Number of common functions between candidate and target (`f_CF`).
    CommonFunctions,
    /// Longest common subsequence of functions (`f_LCS`).
    LongestCommonSubsequence,
}

impl std::fmt::Display for ClosenessMetric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClosenessMetric::CommonFunctions => write!(f, "CF"),
            ClosenessMetric::LongestCommonSubsequence => write!(f, "LCS"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::Function;

    struct ConstantFitness(f64);

    impl FitnessFunction for ConstantFitness {
        fn name(&self) -> &str {
            "constant"
        }

        fn score(&self, _candidate: &Program, _spec: &IoSpec) -> f64 {
            self.0
        }

        fn max_score(&self) -> f64 {
            1.0
        }
    }

    #[test]
    fn boxed_fitness_delegates() {
        let boxed: Box<dyn FitnessFunction> = Box::new(ConstantFitness(0.25));
        let program = Program::new(vec![Function::Sort]);
        let spec = IoSpec::default();
        assert_eq!(boxed.name(), "constant");
        assert_eq!(boxed.score(&program, &spec), 0.25);
        assert_eq!(boxed.max_score(), 1.0);
        assert!(boxed.probability_map(&spec).is_none());
    }

    #[test]
    fn fitness_functions_are_object_safe() {
        fn takes_dyn(_f: &dyn FitnessFunction) {}
        takes_dyn(&ConstantFitness(0.0));
    }

    #[test]
    fn closeness_metric_display() {
        assert_eq!(ClosenessMetric::CommonFunctions.to_string(), "CF");
        assert_eq!(ClosenessMetric::LongestCommonSubsequence.to_string(), "LCS");
    }
}
