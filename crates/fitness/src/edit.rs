//! The hand-crafted output edit-distance fitness — the baseline the paper
//! argues against ("Edit" rows in Tables 3 and 4 and the `f_Edit` curves of
//! Figure 4).

use crate::metrics::output_similarity;
use crate::traits::FitnessFunction;
use netsyn_dsl::{IoSpec, Program};

/// Grades a candidate by how similar its outputs are to the expected outputs,
/// using a normalized Levenshtein similarity averaged over the examples.
///
/// The score is in `[0, 1]`, with 1.0 meaning the candidate reproduces every
/// example output exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EditDistanceFitness;

impl EditDistanceFitness {
    /// Creates the edit-distance fitness function.
    #[must_use]
    pub fn new() -> Self {
        EditDistanceFitness
    }
}

impl FitnessFunction for EditDistanceFitness {
    fn name(&self) -> &str {
        "edit-distance"
    }

    fn score(&self, candidate: &Program, spec: &IoSpec) -> f64 {
        if spec.is_empty() {
            return 0.0;
        }
        let total: f64 = spec
            .iter()
            .map(|ex| {
                candidate
                    .output(&ex.inputs)
                    .map(|out| output_similarity(&out, &ex.output))
                    .unwrap_or(0.0)
            })
            .sum();
        total / spec.len() as f64
    }

    fn max_score(&self) -> f64 {
        1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, IntPredicate, MapOp, Value};

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        let inputs = vec![
            vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
            vec![Value::List(vec![1, -1, 2, -2, 3])],
            vec![Value::List(vec![7, 8, 9])],
        ];
        IoSpec::from_program(&target(), &inputs)
    }

    #[test]
    fn perfect_candidate_scores_one() {
        let fitness = EditDistanceFitness::new();
        assert_eq!(fitness.score(&target(), &spec()), 1.0);
        assert_eq!(fitness.max_score(), 1.0);
        assert_eq!(fitness.name(), "edit-distance");
    }

    #[test]
    fn closer_outputs_score_higher() {
        let fitness = EditDistanceFitness::new();
        let spec = spec();
        // Missing the final REVERSE: output is sorted ascending instead of
        // descending — many elements still match positionally? Not exactly,
        // but the score should be strictly between a perfect and an unrelated
        // candidate.
        let almost = Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
        ]);
        let unrelated = Program::new(vec![Function::Sum]);
        let s_perfect = fitness.score(&target(), &spec);
        let s_almost = fitness.score(&almost, &spec);
        let s_unrelated = fitness.score(&unrelated, &spec);
        assert!(s_perfect > s_almost);
        assert!(s_almost > s_unrelated);
        assert!(s_unrelated >= 0.0);
    }

    #[test]
    fn empty_spec_scores_zero() {
        let fitness = EditDistanceFitness::new();
        assert_eq!(fitness.score(&target(), &IoSpec::default()), 0.0);
    }

    #[test]
    fn empty_candidate_scores_zero() {
        let fitness = EditDistanceFitness::new();
        assert_eq!(fitness.score(&Program::default(), &spec()), 0.0);
    }

    #[test]
    fn score_demonstrates_the_papers_criticism() {
        // The paper's motivation: a single mistaken function can produce an
        // output that looks nothing like the correct one, so edit distance can
        // grade a close-in-program-space candidate very poorly. Flipping the
        // filter predicate keeps 3 of 4 functions correct but changes every
        // output element.
        let fitness = EditDistanceFitness::new();
        let spec = spec();
        let one_mistake = Program::new(vec![
            Function::Filter(IntPredicate::Negative),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ]);
        let score = fitness.score(&one_mistake, &spec);
        assert!(
            score < 0.4,
            "a single wrong function already destroys the edit-distance signal (score {score})"
        );
    }
}
