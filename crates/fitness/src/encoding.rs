//! Feature encoding: turning specifications, candidate programs and
//! execution traces into the token sequences consumed by the neural fitness
//! model.
//!
//! Integers are clamped to a symmetric range and shifted into a dense token
//! vocabulary; a separator token marks the boundary between a program input
//! and its output. Strings encode as their UTF-8 bytes and word lists as the
//! words' bytes joined by the separator token, so every domain's values land
//! in the same dense vocabulary. DSL operators are encoded by their
//! *domain-local* token index ([`netsyn_dsl::DomainId::token_index`]), exactly
//! one token per statement — the encoding travels with the trained model via
//! [`EncodingConfig::domain`], and for the list domain the indices coincide
//! with the historical `Function::index()` numbering, so existing list-domain
//! checkpoints and caches are unaffected.
//!
//! ## Zero-copy split
//!
//! The encoding of a model input is split along what varies in the GA loop:
//!
//! * [`SpecEncoding`] — the specification's IO-example token sequences.
//!   Built **once per synthesis** by [`encode_spec`] and shared zero-copy
//!   (the sequences live behind an `Arc`) across every candidate scored
//!   against that specification.
//! * [`CandidateEncoding`] — the per-candidate execution traces only, built
//!   by [`encode_candidate`] / [`encode_candidates`].
//!
//! `FitnessNet::predict_batch` consumes the two parts separately, so the
//! spec tokens are never cloned into per-candidate samples (and never need
//! to be re-deduplicated out of them).

use crate::sync::lock_recovering;
use crate::sync::Mutex;
use netsyn_dsl::{DomainId, IoExample, IoSpec, Program, TraceArena, Value};
use netsyn_nn::FxHashMap;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Configuration of the token encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodingConfig {
    /// The operator domain whose vocabulary sizes the function-token table.
    /// Statement tokens are domain-local indices into this vocabulary.
    pub domain: DomainId,
    /// Integers are clamped to `[-max_abs_value, max_abs_value]`.
    pub max_abs_value: i64,
    /// Lists are truncated to at most this many tokens.
    pub max_list_tokens: usize,
}

impl EncodingConfig {
    /// Default configuration: the list domain, values in `[-128, 128]`,
    /// lists up to 16 tokens.
    #[must_use]
    pub fn new() -> Self {
        EncodingConfig {
            domain: DomainId::List,
            max_abs_value: 128,
            max_list_tokens: 16,
        }
    }

    /// The default configuration retargeted at another operator domain.
    #[must_use]
    pub fn for_domain(domain: DomainId) -> Self {
        EncodingConfig {
            domain,
            ..EncodingConfig::new()
        }
    }

    /// Size of the function-token vocabulary (one token per operator of the
    /// configured domain).
    #[must_use]
    pub fn function_vocab_size(&self) -> usize {
        self.domain.vocab_len()
    }

    /// Size of the value-token vocabulary (all clamped integers plus the
    /// separator token).
    #[must_use]
    pub fn value_vocab_size(&self) -> usize {
        (2 * self.max_abs_value + 2) as usize
    }

    /// The separator token id.
    #[must_use]
    pub fn separator_token(&self) -> usize {
        (2 * self.max_abs_value + 1) as usize
    }

    /// Encodes a single integer as a token id.
    #[must_use]
    pub fn encode_int(&self, v: i64) -> usize {
        let clamped = v.clamp(-self.max_abs_value, self.max_abs_value);
        (clamped + self.max_abs_value) as usize
    }

    /// Encodes a DSL value as a token sequence (lists are truncated).
    #[must_use]
    pub fn encode_value(&self, value: &Value) -> Vec<usize> {
        let mut tokens = Vec::new();
        self.encode_value_into(value, &mut tokens);
        tokens
    }

    /// Appends the token encoding of `value` to `tokens` without the
    /// intermediate `Vec<i64>` that `Value::to_tokens` would allocate.
    fn encode_value_into(&self, value: &Value, tokens: &mut Vec<usize>) {
        match value {
            Value::Int(v) => {
                // An integer is a one-token sequence; it is still subject to
                // the truncation limit, like every value.
                if self.max_list_tokens > 0 {
                    tokens.push(self.encode_int(*v));
                }
            }
            Value::List(vs) => tokens.extend(
                vs.iter()
                    .take(self.max_list_tokens)
                    .map(|&v| self.encode_int(v)),
            ),
            Value::Str(s) => tokens.extend(
                s.bytes()
                    .take(self.max_list_tokens)
                    .map(|b| self.encode_int(i64::from(b))),
            ),
            Value::StrList(words) => {
                // Words' bytes joined by the separator token, under the same
                // total truncation budget as lists.
                let limit = tokens.len() + self.max_list_tokens;
                for (i, word) in words.iter().enumerate() {
                    if i > 0 && tokens.len() < limit {
                        tokens.push(self.separator_token());
                    }
                    for b in word.bytes() {
                        if tokens.len() >= limit {
                            return;
                        }
                        tokens.push(self.encode_int(i64::from(b)));
                    }
                    if tokens.len() >= limit {
                        return;
                    }
                }
            }
        }
    }

    /// Encodes an input-output example as `input tokens, SEP, output tokens`.
    #[must_use]
    pub fn encode_example(&self, example: &IoExample) -> Vec<usize> {
        let mut tokens = Vec::new();
        for input in &example.inputs {
            self.encode_value_into(input, &mut tokens);
            tokens.push(self.separator_token());
        }
        self.encode_value_into(&example.output, &mut tokens);
        tokens
    }
}

impl Default for EncodingConfig {
    fn default() -> Self {
        EncodingConfig::new()
    }
}

/// One encoded trace step: the statement's function token and the tokens of
/// the value it produced.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncodedStep {
    /// Domain-local token index of the statement's operator
    /// (`0..domain.vocab_len()`; equal to `Function::index()` in the list
    /// domain).
    pub function: usize,
    /// Tokens of the statement's output value.
    pub value_tokens: Vec<usize>,
}

/// The specification half of a model input: one `input, SEP, output` token
/// sequence per IO example, encoded once per synthesis and shared zero-copy
/// (cloning a `SpecEncoding` bumps an `Arc`, it does not copy tokens).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecEncoding {
    io_tokens: Arc<[Vec<usize>]>,
}

impl SpecEncoding {
    /// Number of encoded IO examples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.io_tokens.len()
    }

    /// Whether the specification had no examples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.io_tokens.is_empty()
    }

    /// The encoded token sequences, one per IO example.
    #[must_use]
    pub fn io_tokens(&self) -> &[Vec<usize>] {
        &self.io_tokens
    }
}

/// The candidate half of a model input: the candidate's encoded execution
/// trace on each specification example, and nothing else.
///
/// `traces[i]` pairs with the `i`-th sequence of the [`SpecEncoding`] the
/// candidate was encoded against. An entirely trace-less value (the FP head
/// scores the specification alone; empty programs cannot run) is represented
/// by [`CandidateEncoding::spec_only`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CandidateEncoding {
    traces: Vec<Vec<EncodedStep>>,
}

impl CandidateEncoding {
    /// The encoding of "no candidate": every example trace is empty. Used by
    /// the FP head, which consumes the specification encoding alone.
    #[must_use]
    pub const fn spec_only() -> Self {
        CandidateEncoding { traces: Vec::new() }
    }

    /// The per-example traces (empty for a spec-only encoding).
    #[must_use]
    pub fn traces(&self) -> &[Vec<EncodedStep>] {
        &self.traces
    }

    /// The candidate's trace on example `index`; the empty slice when the
    /// candidate could not run or the encoding is spec-only.
    #[must_use]
    pub fn trace(&self, index: usize) -> &[EncodedStep] {
        self.traces.get(index).map_or(&[], Vec::as_slice)
    }

    /// Total number of encoded steps across all examples.
    #[must_use]
    pub fn step_count(&self) -> usize {
        self.traces.iter().map(Vec::len).sum()
    }
}

/// Encodes a specification's IO examples once, for sharing across every
/// candidate scored against it.
#[must_use]
pub fn encode_spec(config: &EncodingConfig, spec: &IoSpec) -> SpecEncoding {
    let io_tokens: Vec<Vec<usize>> = spec
        .iter()
        .map(|example| config.encode_example(example))
        .collect();
    SpecEncoding {
        io_tokens: io_tokens.into(),
    }
}

/// Encodes one candidate's execution traces against a specification, as
/// consumed by the CF and LCS fitness networks together with the matching
/// [`SpecEncoding`].
///
/// The candidate is run on every example's inputs to obtain the traces; if it
/// cannot run (empty program) the trace is left empty.
#[must_use]
pub fn encode_candidate(
    config: &EncodingConfig,
    spec: &IoSpec,
    candidate: &Program,
) -> CandidateEncoding {
    encode_candidate_with(config, spec, candidate, &mut TraceArena::new())
}

/// Encodes many candidates against the same specification, sharing one
/// interpreter [`TraceArena`] across all trace runs.
///
/// Produces, for each candidate, exactly what [`encode_candidate`] produces.
#[must_use]
pub fn encode_candidates(
    config: &EncodingConfig,
    spec: &IoSpec,
    candidates: &[Program],
) -> Vec<CandidateEncoding> {
    let mut arena = TraceArena::new();
    candidates
        .iter()
        .map(|candidate| encode_candidate_with(config, spec, candidate, &mut arena))
        .collect()
}

fn encode_candidate_with(
    config: &EncodingConfig,
    spec: &IoSpec,
    candidate: &Program,
    arena: &mut TraceArena,
) -> CandidateEncoding {
    let traces = spec
        .iter()
        .map(|example| {
            candidate
                .run_with(&example.inputs, arena)
                .map(|execution| {
                    candidate
                        .functions()
                        .iter()
                        .zip(execution.steps.iter())
                        .map(|(func, value)| EncodedStep {
                            function: config
                                .domain
                                .token_index(*func)
                                .expect("candidate operators belong to the encoding's domain"),
                            value_tokens: config.encode_value(value),
                        })
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();
    CandidateEncoding { traces }
}

/// A one-slot, thread-safe memo of the most recent [`encode_spec`] result.
///
/// Learned fitness functions hold one of these so that the specification of
/// a synthesis run is encoded exactly once, no matter how many generations
/// call `score_batch` with it (the GA presents the same `IoSpec` for the
/// whole run). The counter makes the guarantee testable.
///
/// Cloning produces an *empty* cache, comparison ignores the cache, and
/// serialization stores nothing: the memo is pure derived state.
#[derive(Debug, Default)]
pub struct SpecEncodingCache {
    slot: Mutex<Option<(IoSpec, SpecEncoding)>>,
    encodes: AtomicUsize,
}

impl SpecEncodingCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        SpecEncodingCache::default()
    }

    /// Returns the cached encoding when `spec` matches the cached
    /// specification, encoding (and caching) it otherwise.
    ///
    /// The cache holds one entry, keyed by the full `IoSpec`; callers must
    /// use a fixed `config` per cache (learned fitness functions do — the
    /// config belongs to the trained model).
    pub fn get_or_encode(&self, config: &EncodingConfig, spec: &IoSpec) -> SpecEncoding {
        let mut slot = lock_recovering(&self.slot);
        if let Some((cached_spec, encoding)) = slot.as_ref() {
            if cached_spec == spec {
                return encoding.clone();
            }
        }
        let encoding = encode_spec(config, spec);
        self.encodes.fetch_add(1, Ordering::Relaxed);
        *slot = Some((spec.clone(), encoding.clone()));
        encoding
    }

    /// How many times a specification was actually encoded (cache misses).
    #[must_use]
    pub fn encode_count(&self) -> usize {
        self.encodes.load(Ordering::Relaxed)
    }
}

impl Clone for SpecEncodingCache {
    fn clone(&self) -> Self {
        SpecEncodingCache::default()
    }
}

impl PartialEq for SpecEncodingCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Serialize for SpecEncodingCache {
    fn to_content(&self) -> serde::Content {
        serde::Content::Null
    }
}

impl Deserialize for SpecEncodingCache {
    fn from_content(_content: &serde::Content) -> Result<Self, serde::DeError> {
        Ok(SpecEncodingCache::default())
    }
}

/// A persistent, shareable memo of trace-*value* encodings: the step
/// encoder's final hidden state for each distinct trace-value token
/// sequence.
///
/// The step encoder is a deterministic, batch-independent function of a
/// value's token sequence (the trie-batched LSTM is bit-identical to
/// per-sequence calls), so a hidden state computed in one `score_batch`
/// call can be served to every later call that sees the same value — across
/// generations of one GA run, and across the K repeated runs of a task when
/// a shard of the shared [`crate::FitnessCache`] is threaded through
/// [`crate::FitnessFunction::score_batch_cached`]. Serving a hit is
/// bit-identical to recomputing, so a warm cache never changes a search
/// trajectory.
///
/// A cache must only ever be consulted by **one** model: entries depend on
/// the step-encoder weights ([`crate::FitnessCache::trace_shard`] keys
/// shards by `FitnessFunction::cache_key` for exactly this reason, and a
/// trainer updating weights must start a fresh cache). Like
/// [`SpecEncodingCache`], the memo is pure derived state: `Clone` starts
/// cold, `PartialEq` ignores it, serialization stores nothing.
///
/// ## Concurrency
///
/// Entries are spread over independently locked stripes keyed by the token
/// sequence's hash, so concurrent batched scoring calls (the evaluation
/// harness's task×run fan-out on the work-stealing pool) contend only when
/// they touch the same stripe at the same instant — never for the duration
/// of a whole batch, and never while the step encoder runs. Publishing is
/// first-write-wins: the first hidden state stored for a token sequence is
/// the one every later batch reads (all writers would store bit-identical
/// values; keeping one makes the shared `Arc` handles stable), so racing
/// encoders waste at most one redundant forward, they never disagree.
#[derive(Debug)]
pub struct TraceEncodingCache {
    stripes: Vec<Mutex<TraceSlots>>,
    encodes: AtomicUsize,
}

/// Number of independently locked stripes (a power of two, so the stripe
/// index is a mask of the key hash).
const TRACE_STRIPES: usize = 16;

/// One stripe's storage: trace-value token sequence → step-encoder final
/// hidden state (shared zero-copy with every batch that reads it).
pub(crate) type TraceSlots = FxHashMap<Box<[usize]>, Arc<[f32]>>;

impl Default for TraceEncodingCache {
    fn default() -> Self {
        TraceEncodingCache {
            stripes: (0..TRACE_STRIPES)
                .map(|_| Mutex::new(TraceSlots::default()))
                .collect(),
            encodes: AtomicUsize::new(0),
        }
    }
}

impl TraceEncodingCache {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        TraceEncodingCache::default()
    }

    fn stripe_of(tokens: &[usize]) -> usize {
        use std::hash::{Hash, Hasher};
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        tokens.hash(&mut hasher);
        (hasher.finish() as usize) & (TRACE_STRIPES - 1)
    }

    /// Number of distinct trace-value token sequences cached.
    #[must_use]
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|stripe| lock_recovering(stripe).len())
            .sum()
    }

    /// Whether no encodings are cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many trace values were actually run through the step encoder
    /// (cache misses) — the testable reuse guarantee.
    #[must_use]
    pub fn encode_count(&self) -> usize {
        self.encodes.load(Ordering::Relaxed)
    }

    /// Cached hidden states for a whole batch of token sequences, taking
    /// each stripe lock at most once. Slot `i` of the result corresponds to
    /// `keys[i]`.
    ///
    /// Public so the loom model suite can drive the striped first-write-wins
    /// protocol directly; production callers go through the batch encoder.
    pub fn get_many(&self, keys: &[&[usize]]) -> Vec<Option<Arc<[f32]>>> {
        let mut out = vec![None; keys.len()];
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); TRACE_STRIPES];
        for (index, key) in keys.iter().enumerate() {
            by_stripe[Self::stripe_of(key)].push(index);
        }
        for (stripe, indices) in self.stripes.iter().zip(by_stripe) {
            if indices.is_empty() {
                continue;
            }
            let slots = lock_recovering(stripe);
            for index in indices {
                out[index] = slots.get(keys[index]).map(Arc::clone);
            }
        }
        out
    }

    /// Publishes freshly computed hidden states, first-write-wins, taking
    /// each stripe lock at most once. Returns the *canonical* hidden state
    /// per key — the stored one if another thread published first — in
    /// input order, so callers always consume the shared buffer.
    ///
    /// Public so the loom model suite can drive the striped first-write-wins
    /// protocol directly; production callers go through the batch encoder.
    pub fn publish_many(&self, entries: Vec<(&[usize], Arc<[f32]>)>) -> Vec<Arc<[f32]>> {
        let mut out: Vec<Option<Arc<[f32]>>> = vec![None; entries.len()];
        let mut by_stripe: Vec<Vec<usize>> = vec![Vec::new(); TRACE_STRIPES];
        for (index, (key, _)) in entries.iter().enumerate() {
            by_stripe[Self::stripe_of(key)].push(index);
        }
        for (stripe, indices) in self.stripes.iter().zip(by_stripe) {
            if indices.is_empty() {
                continue;
            }
            let mut slots = lock_recovering(stripe);
            for index in indices {
                let (key, hidden) = &entries[index];
                let canonical = slots
                    .entry((*key).into())
                    .or_insert_with(|| Arc::clone(hidden));
                out[index] = Some(Arc::clone(canonical));
            }
        }
        out.into_iter()
            .map(|slot| slot.expect("every entry published"))
            .collect()
    }

    /// Records `n` step-encoder runs (cache misses).
    pub(crate) fn record_encodes(&self, n: usize) {
        self.encodes.fetch_add(n, Ordering::Relaxed);
    }
}

/// One durable trace-cache entry: a trace-value token sequence and the step
/// encoder's final hidden state for it.
pub(crate) type TraceEntry = (Box<[usize]>, Arc<[f32]>);

impl TraceEncodingCache {
    /// Every cached `(tokens, hidden state)` entry, in a deterministic
    /// order — the snapshot the durable tier flushes.
    pub(crate) fn export(&self) -> Vec<TraceEntry> {
        let mut out = Vec::new();
        for stripe in &self.stripes {
            let slots = lock_recovering(stripe);
            out.extend(
                slots
                    .iter()
                    .map(|(tokens, hidden)| (tokens.clone(), Arc::clone(hidden))),
            );
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

impl Clone for TraceEncodingCache {
    fn clone(&self) -> Self {
        TraceEncodingCache::default()
    }
}

impl PartialEq for TraceEncodingCache {
    fn eq(&self, _other: &Self) -> bool {
        true
    }
}

impl Serialize for TraceEncodingCache {
    fn to_content(&self) -> serde::Content {
        serde::Content::Null
    }
}

impl Deserialize for TraceEncodingCache {
    fn from_content(_content: &serde::Content) -> Result<Self, serde::DeError> {
        Ok(TraceEncodingCache::default())
    }
}

/// A many-slot spec-encoding memo keyed by the full [`IoSpec`], with the
/// same counting guarantee as the one-slot [`SpecEncodingCache`].
///
/// The trainer's epoch loops sweep *interleaved* samples from many
/// specifications (the train/validation split shuffles them), so the
/// one-slot memo would thrash; this map encodes each distinct specification
/// exactly once per training run instead of once per sample per epoch.
#[derive(Debug, Default)]
pub struct SpecEncodingMap {
    slots: Mutex<HashMap<IoSpec, SpecEncoding>>,
    encodes: AtomicUsize,
}

impl SpecEncodingMap {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        SpecEncodingMap::default()
    }

    /// Returns the cached encoding of `spec`, encoding (and caching) it on
    /// first sight. Callers must use a fixed `config` per map (the trainer
    /// does — the config belongs to the training run).
    pub fn get_or_encode(&self, config: &EncodingConfig, spec: &IoSpec) -> SpecEncoding {
        let mut slots = lock_recovering(&self.slots);
        if let Some(encoding) = slots.get(spec) {
            return encoding.clone();
        }
        let encoding = encode_spec(config, spec);
        self.encodes.fetch_add(1, Ordering::Relaxed);
        slots.insert(spec.clone(), encoding.clone());
        encoding
    }

    /// How many distinct specifications were actually encoded (misses).
    #[must_use]
    pub fn encode_count(&self) -> usize {
        self.encodes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsyn_dsl::{Function, IntPredicate, MapOp};

    fn config() -> EncodingConfig {
        EncodingConfig::new()
    }

    fn target() -> Program {
        Program::new(vec![
            Function::Filter(IntPredicate::Positive),
            Function::Map(MapOp::Mul2),
            Function::Sort,
            Function::Reverse,
        ])
    }

    fn spec() -> IoSpec {
        IoSpec::from_program(
            &target(),
            &[
                vec![Value::List(vec![-2, 10, 3, -4, 5, 2])],
                vec![Value::List(vec![1, 2, 3])],
            ],
        )
    }

    #[test]
    fn int_encoding_clamps_and_shifts() {
        let c = config();
        assert_eq!(c.encode_int(0), 128);
        assert_eq!(c.encode_int(-128), 0);
        assert_eq!(c.encode_int(128), 256);
        assert_eq!(c.encode_int(1_000_000), 256);
        assert_eq!(c.encode_int(-1_000_000), 0);
        assert_eq!(c.separator_token(), 257);
        assert_eq!(c.value_vocab_size(), 258);
        // Every encoded token fits the vocabulary.
        for v in [-200, -128, -1, 0, 1, 127, 128, 200] {
            assert!(c.encode_int(v) < c.value_vocab_size());
        }
    }

    #[test]
    fn value_encoding_truncates_long_lists() {
        let mut c = config();
        c.max_list_tokens = 4;
        let long = Value::List((0..20).collect());
        assert_eq!(c.encode_value(&long).len(), 4);
        assert_eq!(c.encode_value(&Value::Int(5)), vec![133]);
    }

    #[test]
    fn example_encoding_contains_separator() {
        let c = config();
        let example = IoExample::new(vec![Value::List(vec![1, 2])], Value::Int(3));
        let tokens = c.encode_example(&example);
        assert_eq!(tokens, vec![129, 130, c.separator_token(), 131]);
    }

    #[test]
    fn encode_candidate_produces_one_step_per_statement() {
        let c = config();
        let spec_encoding = encode_spec(&c, &spec());
        let candidate = encode_candidate(&c, &spec(), &target());
        assert_eq!(spec_encoding.len(), 2);
        assert!(!spec_encoding.is_empty());
        assert_eq!(candidate.traces().len(), 2);
        assert_eq!(candidate.step_count(), 8);
        for example in 0..spec_encoding.len() {
            assert_eq!(candidate.trace(example).len(), 4);
            assert!(candidate
                .trace(example)
                .iter()
                .all(|s| s.function < c.function_vocab_size()));
            assert!(!spec_encoding.io_tokens()[example].is_empty());
        }
        // The first step of the first example is FILTER(>0) and its trace
        // value is the filtered list [10, 3, 5, 2].
        let first = &candidate.trace(0)[0];
        assert_eq!(
            first.function,
            Function::Filter(IntPredicate::Positive).index()
        );
        assert_eq!(first.value_tokens, vec![138, 131, 133, 130]);
    }

    #[test]
    fn encode_candidates_matches_per_candidate_encoding() {
        let c = config();
        let candidates = [
            target(),
            Program::new(vec![Function::Head]),
            Program::default(),
        ];
        let batch = encode_candidates(&c, &spec(), &candidates);
        assert_eq!(batch.len(), candidates.len());
        for (candidate, encoding) in candidates.iter().zip(batch.iter()) {
            assert_eq!(encoding, &encode_candidate(&c, &spec(), candidate));
        }
        assert!(encode_candidates(&c, &spec(), &[]).is_empty());
    }

    #[test]
    fn spec_encoding_clones_share_storage() {
        let c = config();
        let encoding = encode_spec(&c, &spec());
        let clone = encoding.clone();
        assert_eq!(encoding, clone);
        // Zero-copy: both handles point at the same token storage.
        assert!(std::ptr::eq(
            encoding.io_tokens().as_ptr(),
            clone.io_tokens().as_ptr()
        ));
    }

    #[test]
    fn spec_only_candidate_has_no_steps() {
        let spec_only = CandidateEncoding::spec_only();
        assert!(spec_only.traces().is_empty());
        assert_eq!(spec_only.step_count(), 0);
        assert!(spec_only.trace(0).is_empty());
        assert!(spec_only.trace(7).is_empty());
    }

    #[test]
    fn empty_candidate_yields_empty_traces() {
        let c = config();
        let encoding = encode_candidate(&c, &spec(), &Program::default());
        assert!(encoding.traces().iter().all(Vec::is_empty));
        assert_eq!(encoding.step_count(), 0);
    }

    #[test]
    fn spec_cache_encodes_each_spec_once() {
        let c = config();
        let cache = SpecEncodingCache::new();
        assert_eq!(cache.encode_count(), 0);
        let first = cache.get_or_encode(&c, &spec());
        let second = cache.get_or_encode(&c, &spec());
        assert_eq!(first, second);
        assert_eq!(cache.encode_count(), 1);
        // A different spec misses; returning to the first misses again (the
        // cache holds one slot — the GA uses one spec per synthesis).
        let other = IoSpec::from_program(&target(), &[vec![Value::List(vec![7, 7])]]);
        let _ = cache.get_or_encode(&c, &other);
        assert_eq!(cache.encode_count(), 2);
        assert_eq!(cache.get_or_encode(&c, &spec()), first);
        assert_eq!(cache.encode_count(), 3);
        // Clones start cold; equality ignores the cache.
        let clone = cache.clone();
        assert_eq!(clone.encode_count(), 0);
        assert_eq!(clone, cache);
    }

    #[test]
    fn trace_cache_counts_misses_and_serves_hits() {
        let cache = TraceEncodingCache::new();
        assert!(cache.is_empty());
        assert_eq!(cache.encode_count(), 0);
        let tokens: Vec<usize> = vec![1, 2, 3];
        let hidden: Arc<[f32]> = vec![0.5, -0.5].into();
        assert_eq!(cache.get_many(&[&tokens[..]]), vec![None]);
        let stored = cache.publish_many(vec![(&tokens[..], Arc::clone(&hidden))]);
        assert!(Arc::ptr_eq(&stored[0], &hidden));
        cache.record_encodes(1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.encode_count(), 1);
        // A hit returns the very same buffer.
        let hit = cache.get_many(&[&[1usize, 2, 3][..]]);
        assert!(Arc::ptr_eq(hit[0].as_ref().expect("cached"), &hidden));
        // Publishing again is first-write-wins: the original buffer is the
        // canonical one handed back to the racing publisher.
        let racer: Arc<[f32]> = vec![0.5, -0.5].into();
        let canonical = cache.publish_many(vec![(&tokens[..], racer)]);
        assert!(Arc::ptr_eq(&canonical[0], &hidden));
        assert_eq!(cache.len(), 1);
        // Clones start cold; equality and serialization ignore the state.
        let clone = cache.clone();
        assert!(clone.is_empty());
        assert_eq!(clone.encode_count(), 0);
        assert_eq!(clone, cache);
        let json = serde_json::to_string(&cache).unwrap();
        let back: TraceEncodingCache = serde_json::from_str(&json).unwrap();
        assert!(back.is_empty());
    }

    /// Poison-recovery regression for the trace cache: encodings are
    /// first-write-wins immutable, so a panicked worker must not take the
    /// stripe down with it.
    #[test]
    fn panicked_worker_does_not_poison_the_trace_cache() {
        let cache = TraceEncodingCache::new();
        let tokens: Vec<usize> = vec![4, 5, 6];
        let hidden: Arc<[f32]> = vec![1.0, 2.0].into();
        let _ = cache.publish_many(vec![(&tokens[..], Arc::clone(&hidden))]);

        let stripe = &cache.stripes[TraceEncodingCache::stripe_of(&tokens)];
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let _guard = stripe.lock().unwrap();
                panic!("worker dies while holding the trace stripe lock");
            });
            assert!(worker.join().is_err());
        });
        assert!(stripe.is_poisoned());

        // Reads, writes and exports all recover the guard and proceed.
        let hit = cache.get_many(&[&tokens[..]]);
        assert!(Arc::ptr_eq(hit[0].as_ref().expect("still cached"), &hidden));
        let fresh: Vec<usize> = vec![7, 8];
        let _ = cache.publish_many(vec![(&fresh[..], vec![3.0f32].into())]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.export().len(), 2);
    }

    #[test]
    fn spec_map_encodes_each_distinct_spec_once() {
        let c = config();
        let map = SpecEncodingMap::new();
        let other = IoSpec::from_program(&target(), &[vec![Value::List(vec![7, 7])]]);
        let first = map.get_or_encode(&c, &spec());
        // Interleaved lookups (the trainer's shuffled epoch order) stay hits.
        for _ in 0..5 {
            assert_eq!(map.get_or_encode(&c, &spec()), first);
            let _ = map.get_or_encode(&c, &other);
        }
        assert_eq!(map.encode_count(), 2);
        assert_eq!(map.get_or_encode(&c, &spec()), encode_spec(&c, &spec()));
    }

    #[test]
    fn all_function_indices_fit_the_function_vocab() {
        let list = EncodingConfig::new();
        assert_eq!(list.domain, DomainId::List);
        assert_eq!(list.function_vocab_size(), 41);
        for f in Function::ALL {
            assert_eq!(DomainId::List.token_index(f), Some(f.index()));
        }
        let string = EncodingConfig::for_domain(DomainId::Str);
        assert_eq!(string.function_vocab_size(), 18);
        for (i, f) in DomainId::Str.vocab().iter().enumerate() {
            assert_eq!(DomainId::Str.token_index(*f), Some(i));
        }
    }

    #[test]
    fn string_values_encode_as_bytes_with_word_separators() {
        let c = config();
        // "ab" → byte tokens shifted by max_abs_value.
        let ab = c.encode_value(&Value::Str("ab".to_string()));
        assert_eq!(ab, vec![c.encode_int(97), c.encode_int(98)]);
        assert!(ab.iter().all(|&t| t < c.value_vocab_size()));
        // Word lists join with the separator token.
        let words = c.encode_value(&Value::StrList(vec!["ab".into(), "c".into()]));
        assert_eq!(
            words,
            vec![
                c.encode_int(97),
                c.encode_int(98),
                c.separator_token(),
                c.encode_int(99)
            ]
        );
        // Truncation budget applies across the whole word list.
        let mut tight = c;
        tight.max_list_tokens = 3;
        let truncated = tight.encode_value(&Value::StrList(vec!["ab".into(), "cd".into()]));
        assert_eq!(truncated.len(), 3);
        let long_str = tight.encode_value(&Value::Str("abcdefgh".to_string()));
        assert_eq!(long_str.len(), 3);
    }

    #[test]
    fn string_domain_candidates_encode_with_domain_local_tokens() {
        let c = EncodingConfig::for_domain(DomainId::Str);
        let target = Program::new(vec![Function::StrUpper, Function::StrReverse]);
        let spec = IoSpec::from_program(&target, &[vec![Value::Str("hello world".into())]]);
        let candidate = encode_candidate(&c, &spec, &target);
        assert_eq!(candidate.traces().len(), 1);
        let steps = candidate.trace(0);
        assert_eq!(steps.len(), 2);
        assert_eq!(
            steps[0].function,
            DomainId::Str.token_index(Function::StrUpper).unwrap()
        );
        assert!(steps.iter().all(|s| s.function < c.function_vocab_size()));
        assert!(steps.iter().all(|s| !s.value_tokens.is_empty()));
    }
}
